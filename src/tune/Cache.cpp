//===- Cache.cpp - Persistent tuning cache --------------------------------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "tune/Cache.h"

#include "ir/Printer.h"
#include "ocl/FaultInject.h"
#include "support/FileLock.h"
#include "support/Json.h"
#include "support/Retry.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <unistd.h>

using namespace lift;
using namespace lift::tune;

uint64_t tune::fnv1a64(const std::string &S) {
  uint64_t H = 1469598103934665603ull;
  for (unsigned char C : S) {
    H ^= C;
    H *= 1099511628211ull;
  }
  return H;
}

std::string tune::tuneCacheKey(const Workload &W, const TuneConfig &C) {
  uint64_t H = fnv1a64(ir::printProgram(W.Program) + "|" + C.key());
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(H));
  return Buf;
}

std::string tune::tuneCachePath(const Workload &W, const TuneConfig &C) {
  return C.CacheDir + "/" + W.Name + "-" + tuneCacheKey(W, C) + ".json";
}

//===----------------------------------------------------------------------===//
// JSON encoding of tune entries (the reader/writer machinery itself lives
// in support/Json.h, shared with the liftd service protocol)
//===----------------------------------------------------------------------===//

namespace {

using json::numStr;
using JValue = json::Value;

void writeEscaped(std::string &Out, const std::string &S) {
  json::appendQuoted(Out, S);
}

void writeDerivation(std::string &Out, const Derivation &D) {
  Out += "{\"fuse\": ";
  Out += D.Fuse ? "true" : "false";
  Out += ", \"strategy\": ";
  writeEscaped(Out, mapStrategyName(D.Strategy));
  Out += ", \"chunk\": " + std::to_string(D.Chunk);
  Out += ", \"global\": [" + std::to_string(D.Global[0]) + ", " +
         std::to_string(D.Global[1]) + ", " + std::to_string(D.Global[2]) +
         "]";
  Out += ", \"local\": [" + std::to_string(D.Local[0]) + ", " +
         std::to_string(D.Local[1]) + ", " + std::to_string(D.Local[2]) +
         "]}";
}

bool readInt3(const JValue *V, std::array<int64_t, 3> &Out) {
  if (!V || V->K != JValue::Arr || V->A.size() != 3)
    return false;
  for (size_t I = 0; I != 3; ++I) {
    if (V->A[I].K != JValue::Num)
      return false;
    Out[I] = static_cast<int64_t>(V->A[I].N);
  }
  return true;
}

bool readDerivation(const JValue &V, Derivation &D) {
  if (V.K != JValue::Obj)
    return false;
  const JValue *Fuse = V.field("fuse");
  const JValue *Strat = V.field("strategy");
  const JValue *Chunk = V.field("chunk");
  if (!Fuse || Fuse->K != JValue::Bool || !Strat ||
      Strat->K != JValue::Str || !Chunk || Chunk->K != JValue::Num)
    return false;
  D.Fuse = Fuse->B;
  if (Strat->S == "glb")
    D.Strategy = MapStrategy::Glb;
  else if (Strat->S == "wrg-lcl")
    D.Strategy = MapStrategy::WrgLcl;
  else if (Strat->S == "seq")
    D.Strategy = MapStrategy::Seq;
  else
    return false;
  D.Chunk = static_cast<int64_t>(Chunk->N);
  return readInt3(V.field("global"), D.Global) &&
         readInt3(V.field("local"), D.Local);
}

bool statusFromName(const std::string &S, CandidateStatus &Out) {
  for (CandidateStatus St :
       {CandidateStatus::Ok, CandidateStatus::RejectedLowering,
        CandidateStatus::RejectedVerify, CandidateStatus::RejectedCompile,
        CandidateStatus::RejectedExec, CandidateStatus::RejectedMismatch})
    if (S == candidateStatusName(St)) {
      Out = St;
      return true;
    }
  return false;
}

} // namespace

bool tune::loadCachedResult(const Workload &W, const TuneConfig &C,
                            TuneResult &R, DiagnosticEngine *Engine) {
  if (C.CacheDir.empty())
    return false;
  const std::string Path = tuneCachePath(W, C);
  std::ifstream In(Path);
  if (!In)
    return false;
  // An injected read fault models a spurious I/O error: the entry is a
  // plain miss (the file stays in place — it is not corrupt).
  if (ocl::fault::shouldFail(ocl::fault::Site::CacheRead))
    return false;
  std::ostringstream SS;
  SS << In.rdbuf();
  std::string Text = SS.str();

  // A corrupt entry is renamed aside so it cannot shadow the fresh store
  // a re-tune will perform; a stale entry (key mismatch below) stays in
  // place as a silent miss.
  auto Quarantine = [&](const std::string &Why) {
    const std::string Aside = Path + ".corrupt";
    ::rename(Path.c_str(), Aside.c_str());
    if (Engine)
      Engine->warning(DiagCode::CacheEntryQuarantined,
                      DiagLocation::inContext("tune:" + W.Name),
                      "tune cache entry '" + Path + "' is corrupt (" + Why +
                          "); quarantined to '" + Aside +
                          "' and treated as a miss");
    else
      std::fprintf(stderr,
                   "lift: warning: tune cache entry '%s' is corrupt (%s); "
                   "quarantined and treated as a miss\n",
                   Path.c_str(), Why.c_str());
    return false;
  };

  JValue Root;
  if (!json::parse(Text, Root) || Root.K != JValue::Obj)
    return Quarantine("malformed or truncated JSON");
  // Schema gate: entries written before the schema field existed are the
  // implicit v1 shape, which v2 reads unchanged (v2 only adds fields); an
  // entry from a *newer* writer is a silent miss, not corruption.
  if (const JValue *Schema = Root.field("schema"))
    if (Schema->K != JValue::Str || Schema->S != "lift-tune-v2")
      return false;
  const JValue *Key = Root.field("key");
  if (!Key || Key->K != JValue::Str)
    return Quarantine("missing entry key");
  if (Key->S != tuneCacheKey(W, C))
    return false;
  const JValue *Name = Root.field("workload");
  const JValue *DefCost = Root.field("default_cost");
  const JValue *Enumerated = Root.field("candidates_enumerated");
  const JValue *Traj = Root.field("trajectory");
  if (!Name || Name->K != JValue::Str || Name->S != W.Name || !DefCost ||
      DefCost->K != JValue::Num || !Enumerated ||
      Enumerated->K != JValue::Num || !Traj || Traj->K != JValue::Arr)
    return Quarantine("unexpected entry shape");

  TuneResult Out;
  Out.Workload = Name->S;
  Out.DefaultCost = DefCost->N;
  Out.CandidatesEnumerated = static_cast<unsigned>(Enumerated->N);
  Out.CandidatesEvaluated = 0; // nothing executed on a hit
  Out.CacheHit = true;

  if (const JValue *Best = Root.field("best")) {
    const JValue *BCost = Best->field("cost");
    Derivation D;
    if (!BCost || BCost->K != JValue::Num || !readDerivation(*Best, D))
      return Quarantine("unexpected best-candidate shape");
    Out.HasBest = true;
    Out.Best = D;
    Out.BestCost = BCost->N;
  }

  for (const JValue &E : Traj->A) {
    if (E.K != JValue::Obj)
      return Quarantine("unexpected trajectory shape");
    CandidateOutcome O;
    const JValue *Status = E.field("status");
    const JValue *Cost = E.field("cost");
    const JValue *Detail = E.field("detail");
    if (!Status || Status->K != JValue::Str ||
        !statusFromName(Status->S, O.Status) || !readDerivation(E, O.D))
      return Quarantine("unexpected trajectory shape");
    if (Cost && Cost->K == JValue::Num)
      O.Cost = Cost->N;
    if (Detail && Detail->K == JValue::Str)
      O.Detail = Detail->S;
    Out.Trajectory.push_back(std::move(O));
  }

  R = std::move(Out);
  return true;
}

bool tune::storeCachedResult(const Workload &W, const TuneConfig &C,
                             const TuneResult &R, DiagnosticEngine *Engine) {
  if (C.CacheDir.empty())
    return false;
  std::error_code EC;
  std::filesystem::create_directories(C.CacheDir, EC);
  if (EC)
    return false;

  std::string J = "{\n";
  J += "  \"schema\": \"lift-tune-v2\"";
  J += ",\n  \"key\": ";
  writeEscaped(J, tuneCacheKey(W, C));
  J += ",\n  \"workload\": ";
  writeEscaped(J, W.Name);
  J += ",\n  \"objective\": ";
  writeEscaped(J, tuneObjectiveName(C.Objective));
  J += ",\n  \"config\": ";
  writeEscaped(J, C.key());
  J += ",\n  \"default_cost\": " + numStr(R.DefaultCost);
  J += ",\n  \"candidates_enumerated\": " +
       std::to_string(R.CandidatesEnumerated);
  J += ",\n  \"candidates_evaluated\": " +
       std::to_string(R.CandidatesEvaluated);
  if (R.HasBest) {
    J += ",\n  \"best\": ";
    std::string B;
    writeDerivation(B, R.Best);
    // Splice the cost into the derivation object.
    B.back() = ',';
    B += " \"cost\": " + numStr(R.BestCost) + "}";
    J += B;
  }
  J += ",\n  \"trajectory\": [";
  for (size_t I = 0; I != R.Trajectory.size(); ++I) {
    const CandidateOutcome &O = R.Trajectory[I];
    std::string E;
    writeDerivation(E, O.D);
    E.back() = ',';
    E += " \"status\": ";
    writeEscaped(E, candidateStatusName(O.Status));
    E += ", \"cost\": " + numStr(O.Cost);
    E += ", \"detail\": ";
    writeEscaped(E, O.Detail);
    E += ", \"trace\": ";
    writeEscaped(E, O.D.trace());
    E += "}";
    J += (I ? ",\n    " : "\n    ") + E;
  }
  J += "\n  ]\n}\n";

  // Write-temp-then-rename so a crashed or faulted writer never leaves a
  // torn entry behind; transient failures (including the injected
  // CacheWrite fault) retry under the deterministic backoff policy. The
  // advisory lock single-flights concurrent *processes* writing the same
  // key (fork-two-writers); rename keeps even an unguarded race safe.
  const std::string Path = tuneCachePath(W, C);
  const std::string Tmp = Path + ".tmp." + std::to_string(::getpid());
  support::FileLock Lock = support::FileLock::acquire(Path + ".lock");
  try {
    retry::runWithRetry(retry::Policy::fromEnv(), "tune cache write", [&] {
      if (ocl::fault::shouldFail(ocl::fault::Site::CacheWrite))
        throwDiag(DiagCode::CacheWriteFailed,
                  DiagLocation::inContext("tune:" + W.Name),
                  "injected fault: persisting the tune cache entry failed");
      {
        std::ofstream Out(Tmp, std::ios::trunc);
        Out << J;
        if (!Out) {
          ::remove(Tmp.c_str());
          throwDiag(DiagCode::CacheWriteFailed,
                    DiagLocation::inContext("tune:" + W.Name),
                    "could not write the tune cache entry to '" + Tmp + "'");
        }
      }
      if (::rename(Tmp.c_str(), Path.c_str()) != 0) {
        ::remove(Tmp.c_str());
        throwDiag(DiagCode::CacheWriteFailed,
                  DiagLocation::inContext("tune:" + W.Name),
                  "could not move the tune cache entry into place at '" +
                      Path + "'");
      }
    });
  } catch (const DiagnosticError &E) {
    if (Engine)
      Engine->warning(DiagCode::CacheWriteFailed,
                      DiagLocation::inContext("tune:" + W.Name),
                      "tune cache entry not persisted (" + E.Diag.Message +
                          "); the next invocation will re-tune");
    else
      std::fprintf(stderr,
                   "lift: warning: tune cache entry for '%s' not "
                   "persisted; the next invocation will re-tune\n",
                   W.Name.c_str());
    return false;
  }
  return true;
}

std::optional<int64_t> tune::cachedBestWrgChunk(const Workload &W,
                                                const TuneConfig &C) {
  TuneResult R;
  if (!loadCachedResult(W, C, R))
    return std::nullopt;
  bool Found = false;
  double BestCost = 0;
  int64_t BestChunk = 0;
  for (const CandidateOutcome &O : R.Trajectory) {
    if (O.Status != CandidateStatus::Ok ||
        O.D.Strategy != MapStrategy::WrgLcl)
      continue;
    if (!Found || O.Cost < BestCost) {
      Found = true;
      BestCost = O.Cost;
      BestChunk = O.D.Chunk;
    }
  }
  if (!Found)
    return std::nullopt;
  return BestChunk;
}
