//===- Cache.h - Persistent tuning cache -------------------------*- C++ -*-===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Persistent auto-tuning cache: one JSON file per (workload, IR hash,
/// search config) under TuneConfig::CacheDir (default `.lift-tune/`).
/// A warm cache makes a repeated invocation return the stored result
/// without executing any candidate. The file format is documented in
/// docs/TUNING.md; entries whose embedded key no longer matches the
/// program or configuration are treated as misses, so stale entries are
/// harmless.
///
//===----------------------------------------------------------------------===//

#ifndef LIFT_TUNE_CACHE_H
#define LIFT_TUNE_CACHE_H

#include "tune/Tuner.h"

#include <cstdint>
#include <optional>
#include <string>

namespace lift {
namespace tune {

/// FNV-1a 64-bit hash (cache file naming and entry validation).
uint64_t fnv1a64(const std::string &S);

/// The cache key of (\p W, \p C): hex FNV-1a of the printed IR plus the
/// config serialization.
std::string tuneCacheKey(const Workload &W, const TuneConfig &C);

/// Full path of the cache file for (\p W, \p C).
std::string tuneCachePath(const Workload &W, const TuneConfig &C);

/// Loads a cached result. Returns false (leaving \p R untouched) when the
/// file is missing, unreadable, malformed, or keyed differently. A
/// malformed or truncated entry is quarantined — renamed to
/// `<file>.corrupt` with an E0608 warning into \p Engine (stderr when
/// null) — so it cannot shadow future stores; a stale entry (key
/// mismatch) stays in place as a silent miss.
bool loadCachedResult(const Workload &W, const TuneConfig &C, TuneResult &R,
                      DiagnosticEngine *Engine = nullptr);

/// Stores \p R, creating the cache directory if needed. The entry is
/// written to a per-pid temporary and atomically renamed into place, so a
/// crashed writer never leaves a torn file; transient write failures are
/// retried under the deterministic backoff policy (support/Retry.h).
/// Best-effort: returns false (after an E0609 warning) on I/O failure.
bool storeCachedResult(const Workload &W, const TuneConfig &C,
                       const TuneResult &R,
                       DiagnosticEngine *Engine = nullptr);

/// Consults the cache for the cheapest successfully-evaluated
/// mapWrg(mapLcl) candidate of (\p W, \p C) and returns its chunk size.
/// Empty when there is no cache entry or no such candidate — callers fall
/// back to their historical constant (bench/lowering_compare.cpp).
std::optional<int64_t> cachedBestWrgChunk(const Workload &W,
                                          const TuneConfig &C);

} // namespace tune
} // namespace lift

#endif // LIFT_TUNE_CACHE_H
