//===- SearchSpace.cpp - Lowering-derivation search space -----------------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "tune/SearchSpace.h"

#include "ir/DSL.h"
#include "ir/TypeInference.h"
#include "passes/Verify.h"
#include "rewrite/Rules.h"
#include "support/Casting.h"

#include <algorithm>
#include <set>

using namespace lift;
using namespace lift::ir;
using namespace lift::tune;

const char *tune::mapStrategyName(MapStrategy S) {
  switch (S) {
  case MapStrategy::Glb:
    return "glb";
  case MapStrategy::WrgLcl:
    return "wrg-lcl";
  case MapStrategy::Seq:
    return "seq";
  }
  return "?";
}

std::string Derivation::key() const {
  std::string K = "fuse=";
  K += Fuse ? '1' : '0';
  K += " strategy=";
  K += mapStrategyName(Strategy);
  K += " chunk=" + std::to_string(Chunk);
  K += " g=" + std::to_string(Global[0]) + "x" + std::to_string(Global[1]) +
       "x" + std::to_string(Global[2]);
  K += " l=" + std::to_string(Local[0]) + "x" + std::to_string(Local[1]) +
       "x" + std::to_string(Local[2]);
  return K;
}

std::string Derivation::trace() const {
  std::string T;
  if (Fuse)
    T += "map-fusion*; ";
  switch (Strategy) {
  case MapStrategy::Glb:
    if (Chunk > 0)
      T += "split-join-introduction(" + std::to_string(Chunk) + "); ";
    T += "map-to-mapGlb(0); ";
    break;
  case MapStrategy::WrgLcl:
    T += "map-to-wrg-lcl(" + std::to_string(Chunk) + ", 0); ";
    break;
  case MapStrategy::Seq:
    if (Chunk > 0)
      T += "split-join-introduction(" + std::to_string(Chunk) + "); ";
    break;
  }
  T += "map-to-mapSeq*; ";
  if (Fuse)
    T += "reduce-map-fusion*; ";
  T += "split-join-elimination*";
  T += " @ global=" + std::to_string(Global[0]) +
       " local=" + std::to_string(Local[0]);
  return T;
}

Derivation tune::defaultDerivation(const Workload &W) {
  Derivation D;
  D.Fuse = true;
  D.Strategy = MapStrategy::Glb;
  D.Chunk = 0;
  D.Global = W.BaseGlobal;
  D.Local = W.BaseLocal;
  return D;
}

namespace {

/// Largest divisor of \p G that is <= \p Cap (at least 1): the
/// deterministic local-size choice for a given global size.
int64_t largestDivisorLE(int64_t G, int64_t Cap) {
  int64_t Best = 1;
  for (int64_t L = 1; L <= G && L <= Cap; ++L)
    if (G % L == 0)
      Best = L;
  return Best;
}

} // namespace

std::vector<Derivation>
tune::enumerateDerivations(const Workload &W,
                           const std::vector<int64_t> &ChunkPool) {
  std::vector<Derivation> Out;
  std::set<std::string> Seen;
  auto push = [&](Derivation D) {
    if (D.Global[0] < 1 || D.Local[0] < 1 || D.Global[0] % D.Local[0] != 0)
      return;
    if (Seen.insert(D.key()).second)
      Out.push_back(std::move(D));
  };

  // The default derivation is always candidate #0: the searcher's result
  // can never be worse than the default lowering.
  push(defaultDerivation(W));

  const int64_t N = W.OuterN > 0 ? W.OuterN : 1;

  // Thread-count pool for a mapGlb-style candidate whose outer dimension
  // has T iterations: the base (untuned) size, the exact fit, and two
  // strided variants.
  auto globalOptions = [&](int64_t T) {
    std::vector<int64_t> Gs;
    for (int64_t G : {W.BaseGlobal[0], T, T / 2, T / 4})
      if (G >= 1 && G <= N &&
          std::find(Gs.begin(), Gs.end(), G) == Gs.end())
        Gs.push_back(G);
    return Gs;
  };

  for (bool Fuse : {true, false}) {
    // mapGlb candidates, optionally tiled by a pre-split.
    std::vector<int64_t> Chunks = {0};
    for (int64_t C : ChunkPool)
      if (C > 1 && C < N && N % C == 0)
        Chunks.push_back(C);
    for (int64_t C : Chunks) {
      const int64_t T = C > 0 ? N / C : N;
      for (int64_t G : globalOptions(T)) {
        Derivation D;
        D.Fuse = Fuse;
        D.Strategy = MapStrategy::Glb;
        D.Chunk = C;
        D.Global = {G, 1, 1};
        D.Local = {largestDivisorLE(G, W.BaseLocal[0]), 1, 1};
        push(D);
      }
    }

    // mapWrg(mapLcl) candidates: one work-group per chunk.
    for (int64_t C : ChunkPool) {
      if (C < 1 || C > N || N % C != 0)
        continue;
      Derivation D;
      D.Fuse = Fuse;
      D.Strategy = MapStrategy::WrgLcl;
      D.Chunk = C;
      D.Global = {N, 1, 1};
      D.Local = {C, 1, 1};
      push(D);
    }

    // Fully sequential candidate (a single work-item).
    Derivation D;
    D.Fuse = Fuse;
    D.Strategy = MapStrategy::Seq;
    D.Global = {1, 1, 1};
    D.Local = {1, 1, 1};
    push(D);
  }

  return Out;
}

Expected<LambdaPtr> tune::applyDerivation(const LambdaPtr &Program,
                                          const Derivation &D,
                                          DiagnosticEngine &Engine) {
  using namespace lift::rewrite;

  LambdaPtr Clone =
      cast<Lambda>(cloneFunDecl(std::static_pointer_cast<FunDecl>(Program)));
  ExprPtr Body = Clone->getBody();

  if (D.Fuse)
    Body = applyEverywhere(mapFusion(), Body);

  switch (D.Strategy) {
  case MapStrategy::Glb: {
    if (D.Chunk > 0) {
      Expected<ExprPtr> Split = applyOnceChecked(
          splitJoinIntroduction(arith::cst(D.Chunk)), Body, Engine);
      if (!Split)
        return {};
      Body = std::move(*Split);
    }
    Expected<ExprPtr> Mapped = applyOnceChecked(mapToMapGlb(0), Body, Engine);
    if (!Mapped)
      return {};
    Body = std::move(*Mapped);
    break;
  }
  case MapStrategy::WrgLcl: {
    Expected<ExprPtr> Mapped =
        applyOnceChecked(mapToWrgLcl(arith::cst(D.Chunk), 0), Body, Engine);
    if (!Mapped)
      return {};
    Body = std::move(*Mapped);
    break;
  }
  case MapStrategy::Seq:
    if (D.Chunk > 0) {
      Expected<ExprPtr> Split = applyOnceChecked(
          splitJoinIntroduction(arith::cst(D.Chunk)), Body, Engine);
      if (!Split)
        return {};
      Body = std::move(*Split);
    }
    break;
  }

  Body = applyEverywhere(mapToMapSeq(), Body);
  if (D.Fuse)
    Body = applyEverywhere(reduceMapFusion(), Body);
  Body = applyEverywhere(splitJoinElimination(), Body);

  LambdaPtr Result = dsl::lambda(Clone->getParams(), Body);

  // Candidate gate: type re-inference plus the IR verifier. Illegal
  // derivations (e.g. parallel maps nested the wrong way) fail here with
  // structured diagnostics instead of reaching the compiler.
  try {
    inferProgramTypes(Result);
  } catch (const DiagnosticError &E) {
    Diagnostic Diag = E.Diag;
    Engine.report(Diag);
    return {};
  }
  if (!passes::verifyChecked(Result, Engine, "tune-candidate"))
    return {};
  return Result;
}
