//===- SearchSpace.h - Lowering-derivation search space ----------*- C++ -*-===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The space of lowering derivations the auto-tuner explores. A candidate
/// is a *derivation*: a short, named sequence of `rewrite::Rule`
/// applications (fusion on/off, a mapping choice for the outermost map,
/// an optional split with a chunk size from a configurable pool) plus the
/// NDRange the kernel is specialized for. Applying a derivation re-runs
/// type inference and the IR verifier, so only well-formed candidates ever
/// reach the compiler. The default derivation reproduces
/// `rewrite::lowerProgram(P, /*UseWorkGroups=*/false)` exactly, which
/// anchors the tuner's "never worse than the default lowering" guarantee.
///
//===----------------------------------------------------------------------===//

#ifndef LIFT_TUNE_SEARCHSPACE_H
#define LIFT_TUNE_SEARCHSPACE_H

#include "ir/IR.h"
#include "support/Diagnostics.h"
#include "tune/Workloads.h"

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace lift {
namespace tune {

/// How the outermost high-level map is mapped onto the thread hierarchy.
enum class MapStrategy { Glb, WrgLcl, Seq };

const char *mapStrategyName(MapStrategy S);

/// One candidate lowering: which rewrite rules to apply, with which
/// parameters, and the NDRange to specialize the kernel for.
struct Derivation {
  /// Run map-fusion / reduce-map-fusion to a fixpoint first (the
  /// intermediate-array elimination of the default pipeline).
  bool Fuse = true;
  MapStrategy Strategy = MapStrategy::Glb;
  /// For WrgLcl: the split chunk (work-group size). For Glb/Seq: an
  /// optional split-join introduction ahead of the mapping step (0 =
  /// none), tiling the outer loop.
  int64_t Chunk = 0;
  std::array<int64_t, 3> Global = {1, 1, 1};
  std::array<int64_t, 3> Local = {1, 1, 1};

  /// Stable identity string ("fuse=1 strategy=glb chunk=0 g=256 l=32");
  /// used for deduplication, cache entries and deterministic ordering.
  std::string key() const;

  /// The derivation as a readable rule-application sequence, e.g.
  /// "map-fusion*; map-to-mapGlb(0); map-to-mapSeq*; ...".
  std::string trace() const;
};

/// The derivation that reproduces `rewrite::lowerProgram(P, false)` at the
/// workload's base NDRange.
Derivation defaultDerivation(const Workload &W);

/// Enumerates the candidate derivations for \p W: mapping choices x fusion
/// on/off x chunk sizes from \p ChunkPool (filtered to divisors of the
/// outer dimension) x a small pool of NDRanges. Deterministic; the default
/// derivation is always the first entry.
std::vector<Derivation> enumerateDerivations(const Workload &W,
                                             const std::vector<int64_t> &ChunkPool);

/// Applies \p D to the high-level \p Program: clone, rewrite per the
/// derivation, re-infer types and re-run passes::verify. Returns failure
/// (diagnostics in \p Engine) when a rule matches nowhere (E0405), when
/// type re-inference fails, or when the verifier rejects the candidate —
/// e.g. illegally nested parallel maps.
Expected<ir::LambdaPtr> applyDerivation(const ir::LambdaPtr &Program,
                                        const Derivation &D,
                                        DiagnosticEngine &Engine);

} // namespace tune
} // namespace lift

#endif // LIFT_TUNE_SEARCHSPACE_H
