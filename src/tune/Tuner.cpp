//===- Tuner.cpp - Cost-guided lowering search ----------------------------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "tune/Tuner.h"

#include "codegen/Compiler.h"
#include "native/Native.h"
#include "ocl/ThreadPool.h"
#include "tune/Cache.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <set>

using namespace lift;
using namespace lift::tune;

const char *tune::candidateStatusName(CandidateStatus S) {
  switch (S) {
  case CandidateStatus::Ok:
    return "ok";
  case CandidateStatus::RejectedLowering:
    return "rejected-lowering";
  case CandidateStatus::RejectedVerify:
    return "rejected-verify";
  case CandidateStatus::RejectedCompile:
    return "rejected-compile";
  case CandidateStatus::RejectedExec:
    return "rejected-exec";
  case CandidateStatus::RejectedMismatch:
    return "rejected-mismatch";
  }
  return "?";
}

const char *tune::tuneObjectiveName(TuneObjective O) {
  return O == TuneObjective::Native ? "native" : "cost";
}

std::string TuneConfig::key() const {
  std::string K = "seed=" + std::to_string(Seed);
  K += " exhaustive=" + std::to_string(ExhaustiveThreshold);
  K += " max-evals=" + std::to_string(MaxEvaluations);
  K += " beam=" + std::to_string(BeamWidth);
  K += " pool=";
  for (size_t I = 0; I != ChunkPool.size(); ++I)
    K += (I ? "," : "") + std::to_string(ChunkPool[I]);
  K += " limits=" + std::to_string(CandidateLimits.MaxSteps) + "/" +
       std::to_string(CandidateLimits.TimeoutMs) + "/" +
       std::to_string(CandidateLimits.MaxMemoryBytes);
  auto W = [](double V) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%g", V);
    return std::string(Buf);
  };
  K += " weights=" + W(Weights.Global) + "," + W(Weights.Local) + "," +
       W(Weights.Private) + "," + W(Weights.Arith) + "," +
       W(Weights.DivMod) + "," + W(Weights.Math) + "," + W(Weights.Call) +
       "," + W(Weights.Barrier) + "," + W(Weights.LoopIter);
  // Non-default objectives extend the key; the default omits them so
  // every pre-existing cost-objective cache entry keeps its key.
  if (Objective != TuneObjective::Cost)
    K += std::string(" objective=") + tuneObjectiveName(Objective) +
         " native-repeats=" + std::to_string(NativeRepeats);
  return K;
}

namespace {

/// xorshift64* — the deterministic sampler for the above-threshold path.
struct Prng {
  uint64_t State;
  explicit Prng(uint64_t Seed) : State(Seed * 2654435761u + 1) {}
  uint64_t next() {
    State ^= State << 13;
    State ^= State >> 7;
    State ^= State << 17;
    return State;
  }
};

/// First diagnostic code id recorded in \p E ("E0405"), or a fallback.
std::string firstCode(const DiagnosticEngine &E, const char *Fallback) {
  if (E.diagnostics().empty())
    return Fallback;
  return diagCodeId(E.diagnostics().front().Code);
}

bool hasCode(const DiagnosticEngine &E, DiagCode C) {
  for (const Diagnostic &D : E.diagnostics())
    if (D.Code == C)
      return true;
  return false;
}

/// Lowers, verifies, compiles and executes one candidate. Never throws:
/// every input-triggered failure becomes a Rejected* outcome. Launches run
/// single-threaded (Threads = 1) because evaluation itself is dispatched
/// on the process-wide pool — the pool is not reentrant.
CandidateOutcome evaluateCandidate(const Workload &W, const Derivation &D,
                                   const TuneConfig &C,
                                   const std::vector<float> *RefOut,
                                   std::vector<float> *OutFlat = nullptr) {
  CandidateOutcome O;
  O.D = D;
  DiagnosticEngine E;
  try {
    Expected<ir::LambdaPtr> Lowered = applyDerivation(W.Program, D, E);
    if (!Lowered) {
      O.Status = hasCode(E, DiagCode::RewriteNoLowering)
                     ? CandidateStatus::RejectedLowering
                     : CandidateStatus::RejectedVerify;
      O.Detail = firstCode(E, "derivation failed");
      return O;
    }

    codegen::CompilerOptions Opts;
    Opts.GlobalSize = D.Global;
    Opts.LocalSize = D.Local;
    Opts.Threads = 1;
    Opts.KernelName = "TUNE_" + W.Name;
    Expected<codegen::CompiledKernel> K =
        codegen::compileChecked(*Lowered, Opts, E);
    if (!K) {
      O.Status = CandidateStatus::RejectedCompile;
      O.Detail = firstCode(E, "compile failed");
      return O;
    }

    std::vector<ocl::Buffer> Buffers;
    Buffers.reserve(W.Inputs.size() + 1);
    for (const std::vector<float> &In : W.Inputs)
      Buffers.push_back(ocl::Buffer::ofFloats(In));
    Buffers.push_back(ocl::Buffer::zeros(W.OutCount));
    std::vector<ocl::Buffer *> Bound;
    for (ocl::Buffer &B : Buffers)
      Bound.push_back(&B);

    ocl::LaunchConfig Cfg;
    Cfg.Global = D.Global;
    Cfg.Local = D.Local;
    Cfg.Threads = 1;
    Cfg.Limits = C.CandidateLimits;
    Expected<ocl::LaunchResult> Res =
        ocl::launchChecked(*K, Bound, W.Sizes, Cfg, E);
    if (!Res) {
      O.Status = CandidateStatus::RejectedExec;
      O.Detail = firstCode(E, "launch failed");
      return O;
    }

    std::vector<float> Flat = Buffers.back().toFlatFloats();
    if (RefOut) {
      if (Flat.size() != RefOut->size() ||
          (Flat.size() &&
           std::memcmp(Flat.data(), RefOut->data(),
                       Flat.size() * sizeof(float)) != 0)) {
        O.Status = CandidateStatus::RejectedMismatch;
        O.Detail = "output differs from reference lowering";
        return O;
      }
    }
    if (OutFlat)
      *OutFlat = std::move(Flat);

    O.Status = CandidateStatus::Ok;
    O.Cost = Res->Cost.cost(C.Weights);

    if (C.Objective == TuneObjective::Native) {
      // Score with measured wall-clock instead: the simulator launch
      // above remains the correctness gate (bit-identity against the
      // reference), the native fast-mode launch supplies the time. A
      // candidate the native backend cannot build or run (no toolchain,
      // out-of-subset construct) is rejected, never silently scored in
      // cost units. Buffers are reused across repeats — the readback
      // overwrites the output in place, inputs are read-only.
      const unsigned Repeats = std::max(1u, C.NativeRepeats);
      std::vector<double> Times;
      Times.reserve(Repeats);
      for (unsigned Rep = 0; Rep != Repeats; ++Rep) {
        DiagnosticEngine NE;
        Expected<native::NativeLaunchResult> NR = native::launchNativeChecked(
            *K, Bound, W.Sizes, Cfg, NE, native::NativeMode::Fast);
        if (!NR) {
          O.Status = CandidateStatus::RejectedExec;
          O.Detail = firstCode(NE, "native launch failed");
          return O;
        }
        Times.push_back(NR->WallMs);
      }
      std::sort(Times.begin(), Times.end());
      O.Cost = Times[Times.size() / 2];
    }
  } catch (const DiagnosticError &Err) {
    O.Status = CandidateStatus::RejectedExec;
    O.Detail = diagCodeId(Err.Diag.Code);
  } catch (const std::exception &Ex) {
    O.Status = CandidateStatus::RejectedExec;
    O.Detail = Ex.what();
  }
  return O;
}

/// Picks the candidate indices to evaluate when the space is above the
/// exhaustive threshold: the default lowering, a seeded random sample, and
/// (after the first wave is scored by the caller) a greedy neighbourhood
/// around the incumbent. Selection is pure — it depends only on the seed
/// and the enumeration, never on evaluation timing.
std::vector<size_t> sampleIndices(size_t SpaceSize, const TuneConfig &C) {
  size_t Budget = C.MaxEvaluations ? C.MaxEvaluations : SpaceSize / 2;
  Budget = std::max<size_t>(Budget, 2);
  Budget = std::min(Budget, SpaceSize);

  std::set<size_t> Chosen;
  Chosen.insert(0); // the default derivation is always scored
  Prng R(C.Seed);
  // Leave BeamWidth slots for the greedy refinement wave.
  size_t FirstWave = Budget > C.BeamWidth ? Budget - C.BeamWidth : Budget;
  while (Chosen.size() < FirstWave)
    Chosen.insert(static_cast<size_t>(R.next() % SpaceSize));
  return {Chosen.begin(), Chosen.end()};
}

/// Evaluates the given candidate indices concurrently on the process-wide
/// worker pool. Results are stored by candidate index, so the outcome is
/// identical at every worker count.
void evaluateWave(const Workload &W, const std::vector<Derivation> &Space,
                  const std::vector<size_t> &Indices, const TuneConfig &C,
                  const std::vector<float> &RefOut,
                  std::map<size_t, CandidateOutcome> &Results) {
  std::vector<CandidateOutcome> Wave(Indices.size());
  std::atomic<size_t> NextItem{0};
  auto Body = [&](unsigned) {
    for (;;) {
      size_t I = NextItem.fetch_add(1);
      if (I >= Indices.size())
        break;
      Wave[I] = evaluateCandidate(W, Space[Indices[I]], C, &RefOut);
    }
  };
  unsigned Workers = ocl::resolveThreadCount(C.Threads);
  Workers = static_cast<unsigned>(
      std::min<size_t>(Workers, std::max<size_t>(Indices.size(), 1)));
  if (Workers <= 1)
    Body(0);
  else
    ocl::ThreadPool::global().run(Workers, Body);
  for (size_t I = 0; I != Indices.size(); ++I)
    Results[Indices[I]] = std::move(Wave[I]);
}

/// Index of the cheapest Ok outcome (ties break toward the lower
/// enumeration index); SIZE_MAX when nothing succeeded.
size_t bestIndex(const std::map<size_t, CandidateOutcome> &Results) {
  size_t Best = SIZE_MAX;
  double BestCost = 0;
  for (const auto &[I, O] : Results) {
    if (O.Status != CandidateStatus::Ok)
      continue;
    if (Best == SIZE_MAX || O.Cost < BestCost) {
      Best = I;
      BestCost = O.Cost;
    }
  }
  return Best;
}

} // namespace

Expected<TuneResult> tune::tuneWorkload(const Workload &W,
                                        const TuneConfig &C,
                                        DiagnosticEngine &Engine) {
  TuneResult R;
  R.Workload = W.Name;

  if (C.UseCache && loadCachedResult(W, C, R, &Engine))
    return R;
  R = TuneResult();
  R.Workload = W.Name;

  // Reference: the default lowerProgram derivation at the base NDRange.
  // Its failure is the only failure tuneWorkload propagates — candidates
  // merely get rejected.
  std::vector<float> RefOut;
  CandidateOutcome Ref =
      evaluateCandidate(W, defaultDerivation(W), C, nullptr, &RefOut);
  if (Ref.Status != CandidateStatus::Ok) {
    Engine.error(DiagCode::RewriteNoLowering,
                 DiagLocation::inContext("tune:" + W.Name),
                 "default lowering failed (" +
                     std::string(candidateStatusName(Ref.Status)) + ": " +
                     Ref.Detail + "); nothing to tune against");
    return {};
  }
  R.DefaultCost = Ref.Cost;

  std::vector<Derivation> Space = enumerateDerivations(W, C.ChunkPool);
  R.CandidatesEnumerated = static_cast<unsigned>(Space.size());

  std::map<size_t, CandidateOutcome> Results;
  if (Space.size() <= C.ExhaustiveThreshold) {
    std::vector<size_t> All(Space.size());
    for (size_t I = 0; I != All.size(); ++I)
      All[I] = I;
    evaluateWave(W, Space, All, C, RefOut, Results);
  } else {
    // Wave 1: default + seeded random sample.
    evaluateWave(W, Space, sampleIndices(Space.size(), C), C, RefOut,
                 Results);
    // Wave 2: greedy refinement — unevaluated neighbours of the incumbent
    // (same strategy and fusion flag), in enumeration order.
    size_t Incumbent = bestIndex(Results);
    if (Incumbent != SIZE_MAX && C.BeamWidth > 0) {
      const Derivation &B = Space[Incumbent];
      std::vector<size_t> Neighbours;
      for (size_t I = 0; I != Space.size(); ++I) {
        if (Results.count(I))
          continue;
        if (Space[I].Strategy == B.Strategy && Space[I].Fuse == B.Fuse) {
          Neighbours.push_back(I);
          if (Neighbours.size() == C.BeamWidth)
            break;
        }
      }
      if (!Neighbours.empty())
        evaluateWave(W, Space, Neighbours, C, RefOut, Results);
    }
  }

  R.CandidatesEvaluated = static_cast<unsigned>(Results.size());
  for (const auto &[I, O] : Results)
    R.Trajectory.push_back(O);

  // Under the native objective the reference evaluation above and the
  // candidate wave time the default derivation independently; anchor
  // DefaultCost to the in-wave measurement (candidate #0 is always the
  // default derivation) so best-vs-default comparisons are between
  // scores from the same wave, not across two noisy timings.
  if (C.Objective == TuneObjective::Native) {
    auto It = Results.find(0);
    if (It != Results.end() && It->second.Status == CandidateStatus::Ok)
      R.DefaultCost = It->second.Cost;
  }

  size_t Best = bestIndex(Results);
  if (Best != SIZE_MAX) {
    R.HasBest = true;
    R.Best = Space[Best];
    R.BestCost = Results[Best].Cost;
  }

  if (C.UseCache)
    storeCachedResult(W, C, R, &Engine);
  return R;
}
