//===- Tuner.h - Cost-guided lowering search ---------------------*- C++ -*-===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The cost-guided searcher over the lowering space of SearchSpace.h:
/// candidates are compiled and scored with the simulated runtime's cost
/// model, evaluated concurrently on the process-wide ocl::ThreadPool (each
/// candidate launch runs single-threaded under its own ExecLimits, so a
/// pathological derivation is cut off rather than hanging the search).
/// Below TuneConfig::ExhaustiveThreshold every candidate is evaluated;
/// above it a seeded random sample plus a greedy neighbourhood refinement
/// keeps the budget bounded. Results are deterministic for a fixed seed at
/// every evaluation thread count, and cached persistently (Cache.h) keyed
/// on the program's IR hash and the search configuration.
///
//===----------------------------------------------------------------------===//

#ifndef LIFT_TUNE_TUNER_H
#define LIFT_TUNE_TUNER_H

#include "ocl/Runtime.h"
#include "support/Diagnostics.h"
#include "tune/SearchSpace.h"
#include "tune/Workloads.h"

#include <cstdint>
#include <string>
#include <vector>

namespace lift {
namespace tune {

/// What candidate scoring optimizes.
enum class TuneObjective {
  /// Simulated cost-model units (the default): fully deterministic,
  /// needs no toolchain, identical across machines.
  Cost,
  /// Measured native wall-clock: every candidate still executes on the
  /// simulator and must stay bit-identical to the reference, but its
  /// score is the median of TuneConfig::NativeRepeats single-threaded
  /// fast-mode native launches. Machine-dependent by design; cache
  /// entries carry the objective so cost- and time-tuned results never
  /// mix.
  Native,
};

const char *tuneObjectiveName(TuneObjective O);

/// Search configuration. Everything that affects the search *result* is
/// part of the cache key; the evaluation thread count deliberately is not
/// (results are thread-count invariant).
struct TuneConfig {
  /// Seed for the sampling phase above the exhaustive threshold.
  uint64_t Seed = 1;
  /// Evaluation workers (candidates in flight). 0 = auto (LIFT_THREADS,
  /// else hardware concurrency); 1 = serial.
  int Threads = 0;
  /// Search spaces up to this many candidates are evaluated exhaustively.
  unsigned ExhaustiveThreshold = 96;
  /// Evaluation budget above the threshold (0 = half the space).
  unsigned MaxEvaluations = 24;
  /// Size of the greedy refinement neighbourhood sample.
  unsigned BeamWidth = 4;
  /// Split / work-group chunk sizes offered to the enumerator.
  std::vector<int64_t> ChunkPool = {4, 8, 16, 32, 64, 128};
  /// Per-candidate execution bounds; pathological candidates are cancelled
  /// (E0510/E0511) and rejected instead of hanging the search.
  ocl::ExecLimits CandidateLimits;
  /// Cost-model weights used for scoring.
  ocl::CostWeights Weights;
  /// Persistent cache directory; empty disables caching entirely.
  std::string CacheDir = ".lift-tune";
  bool UseCache = true;
  /// What candidate scoring optimizes. The Native objective requires a
  /// usable toolchain (native::toolchainCompiler()); candidates outside
  /// the native subset are rejected rather than scored inconsistently.
  TuneObjective Objective = TuneObjective::Cost;
  /// Timed launches per candidate under the Native objective; the score
  /// is their median, damping scheduler noise.
  unsigned NativeRepeats = 3;

  TuneConfig() {
    CandidateLimits.MaxSteps = 20000000;
    CandidateLimits.TimeoutMs = 10000;
  }

  /// Stable serialization of every result-affecting field (cache key
  /// component).
  std::string key() const;
};

enum class CandidateStatus {
  Ok,               ///< Verified, compiled, executed, bit-identical.
  RejectedLowering, ///< A rule in the derivation matched nowhere (E0405).
  RejectedVerify,   ///< Type re-inference or passes::Verify rejected it.
  RejectedCompile,  ///< codegen::compileChecked failed.
  RejectedExec,     ///< Launch failed (including exceeded ExecLimits).
  RejectedMismatch, ///< Executed but differed from the reference output.
};

const char *candidateStatusName(CandidateStatus S);

struct CandidateOutcome {
  Derivation D;
  CandidateStatus Status = CandidateStatus::RejectedExec;
  /// Candidate score (valid when Status == Ok): simulated cost under
  /// TuneConfig::Weights for the Cost objective, median native wall-clock
  /// milliseconds for the Native objective.
  double Cost = 0;
  /// First diagnostic code id ("E0405") or short reason on rejection.
  std::string Detail;
};

struct TuneResult {
  std::string Workload;
  /// Cost of the default `lowerProgram` lowering at the base NDRange.
  double DefaultCost = 0;
  bool HasBest = false;
  Derivation Best;
  double BestCost = 0;
  unsigned CandidatesEnumerated = 0;
  /// Candidates actually executed this invocation (0 on a cache hit).
  unsigned CandidatesEvaluated = 0;
  bool CacheHit = false;
  /// Evaluated candidates in canonical enumeration order.
  std::vector<CandidateOutcome> Trajectory;
};

/// Tunes one workload: computes the reference (default-lowering) output,
/// enumerates and evaluates candidates, returns the best verified,
/// bit-identical lowering. Returns failure (diagnostics in \p Engine) only
/// when the *default* lowering itself cannot be built or executed.
Expected<TuneResult> tuneWorkload(const Workload &W, const TuneConfig &C,
                                  DiagnosticEngine &Engine);

} // namespace tune
} // namespace lift

#endif // LIFT_TUNE_TUNER_H
