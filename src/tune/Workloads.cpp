//===- Workloads.cpp - High-level tuning workloads ------------------------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "tune/Workloads.h"

#include "ir/DSL.h"
#include "ir/Prelude.h"

using namespace lift;
using namespace lift::ir;
using namespace lift::ir::dsl;
using namespace lift::tune;

namespace {

/// Deterministic pseudo-random inputs in [0, 1) — same xorshift family as
/// the benchmark suite, so workload data never depends on library state.
std::vector<float> randomFloats(size_t Count, uint64_t Seed) {
  std::vector<float> R(Count);
  uint64_t S = Seed * 2654435761u + 1;
  for (float &V : R) {
    S ^= S << 13;
    S ^= S >> 7;
    S ^= S << 17;
    V = static_cast<float>((S >> 11) % 1000) / 1000.f;
  }
  return R;
}

ParamPtr floatArray(const std::string &Name, int64_t N) {
  return param(Name, arrayOf(float32(), arith::cst(N)));
}

ParamPtr floatMatrix(const std::string &Name, int64_t Rows, int64_t Cols) {
  return param(Name, arrayOf(arrayOf(float32(), arith::cst(Cols)),
                             arith::cst(Rows)));
}

/// map(idF) over the [float]1 result of a reduction: the high-level
/// spelling of the copy-to-output stage (the suite's toGlobal(mapSeq(idF))
/// before mapping decisions are taken).
ExprPtr copyOut(ExprPtr Reduced) {
  return call(map(prelude::idFloatFun()), {std::move(Reduced)});
}

/// n-body pattern: every body interacts with every other body and the
/// contributions are summed. O(N^2) with an inner map feeding a reduction.
Workload makeNBody() {
  const int64_t N = 128;
  FunDeclPtr Inter =
      userFun("interact", {"p", "q"}, {float32(), float32()}, float32(),
              "return p * q + 0.5f * q;");
  ParamPtr P = floatArray("bodies", N);
  LambdaPtr Prog = lambda(
      {P},
      pipe(ExprPtr(P), map(fun([&](ExprPtr Pi) {
             return copyOut(call(
                 reduceSeq(prelude::addFun()),
                 {litFloat(0.f), call(map(fun([&](ExprPtr Qj) {
                                        return call(Inter, {Pi, Qj});
                                      })),
                                      {ExprPtr(P)})}));
           })),
           join()));

  Workload W;
  W.Name = "nbody";
  W.Program = Prog;
  W.Inputs = {randomFloats(static_cast<size_t>(N), 3)};
  W.OutCount = static_cast<size_t>(N);
  W.BaseGlobal = {32, 1, 1};
  W.BaseLocal = {8, 1, 1};
  W.OuterN = N;
  return W;
}

/// AMD-style n-body variant: the interaction is folded straight into the
/// reduction operator (no inner map to fuse).
Workload makeNBodyAmd() {
  const int64_t N = 96;
  FunDeclPtr Acc = userFun("accDist", {"acc", "p", "q"},
                           {float32(), float32(), float32()}, float32(),
                           "float d = p - q; return acc + d * d;");
  ParamPtr P = floatArray("bodies", N);
  LambdaPtr Prog = lambda(
      {P}, pipe(ExprPtr(P), map(fun([&](ExprPtr Pi) {
              return copyOut(
                  call(reduceSeq(fun2([&](ExprPtr A, ExprPtr Qj) {
                         return call(Acc, {A, Pi, Qj});
                       })),
                       {litFloat(0.f), ExprPtr(P)}));
            })),
            join()));

  Workload W;
  W.Name = "nbody-amd";
  W.Program = Prog;
  W.Inputs = {randomFloats(static_cast<size_t>(N), 5)};
  W.OutCount = static_cast<size_t>(N);
  W.BaseGlobal = {48, 1, 1};
  W.BaseLocal = {8, 1, 1};
  W.OuterN = N;
  return W;
}

/// Molecular dynamics pattern: per-particle sum of squared distances to a
/// fixed neighbour set.
Workload makeMD() {
  const int64_t N = 128, K = 64;
  FunDeclPtr Acc = userFun("ljAcc", {"acc", "p", "q"},
                           {float32(), float32(), float32()}, float32(),
                           "float d = p - q; return acc + d * d + 0.05f;");
  ParamPtr P = floatArray("particles", N);
  ParamPtr Q = floatArray("neighbours", K);
  LambdaPtr Prog = lambda(
      {P, Q}, pipe(ExprPtr(P), map(fun([&](ExprPtr Pi) {
                 return copyOut(
                     call(reduceSeq(fun2([&](ExprPtr A, ExprPtr Qj) {
                            return call(Acc, {A, Pi, Qj});
                          })),
                          {litFloat(0.f), ExprPtr(Q)}));
               })),
               join()));

  Workload W;
  W.Name = "md";
  W.Program = Prog;
  W.Inputs = {randomFloats(static_cast<size_t>(N), 7),
              randomFloats(static_cast<size_t>(K), 9)};
  W.OutCount = static_cast<size_t>(N);
  W.BaseGlobal = {64, 1, 1};
  W.BaseLocal = {16, 1, 1};
  W.OuterN = N;
  return W;
}

/// k-means assignment pattern: distance to every cluster, minimum via a
/// reduction over a mapped distance array.
Workload makeKMeans() {
  const int64_t N = 256, C = 8;
  FunDeclPtr D2 = userFun("d2", {"p", "c"}, {float32(), float32()},
                          float32(), "float d = p - c; return d * d;");
  FunDeclPtr KMin = userFun("kmin", {"a", "b"}, {float32(), float32()},
                            float32(), "return b < a ? b : a;");
  ParamPtr P = floatArray("points", N);
  ParamPtr Cs = floatArray("clusters", C);
  LambdaPtr Prog = lambda(
      {P, Cs},
      pipe(ExprPtr(P), map(fun([&](ExprPtr Pi) {
             return copyOut(call(
                 reduceSeq(KMin),
                 {lit("3.4e38f", float32()),
                  call(map(fun([&](ExprPtr Cj) { return call(D2, {Pi, Cj}); })),
                       {ExprPtr(Cs)})}));
           })),
           join()));

  Workload W;
  W.Name = "kmeans";
  W.Program = Prog;
  W.Inputs = {randomFloats(static_cast<size_t>(N), 11),
              randomFloats(static_cast<size_t>(C), 13)};
  W.OutCount = static_cast<size_t>(N);
  W.BaseGlobal = {64, 1, 1};
  W.BaseLocal = {16, 1, 1};
  W.OuterN = N;
  return W;
}

/// Nearest-neighbour pattern: element-wise distance to a fixed query.
Workload makeNN() {
  const int64_t N = 512;
  FunDeclPtr Dist =
      userFun("dist", {"p"}, {float32()}, float32(),
              "float dx = p - 0.5f; return sqrt(dx * dx + 0.25f);");
  ParamPtr P = floatArray("points", N);
  LambdaPtr Prog = lambda({P}, call(map(Dist), {ExprPtr(P)}));

  Workload W;
  W.Name = "nn";
  W.Program = Prog;
  W.Inputs = {randomFloats(static_cast<size_t>(N), 17)};
  W.OutCount = static_cast<size_t>(N);
  W.BaseGlobal = {512, 1, 1};
  W.BaseLocal = {32, 1, 1};
  W.OuterN = N;
  return W;
}

/// MRI-Q pattern: element-wise trigonometric kernel.
Workload makeMriQ() {
  const int64_t N = 256;
  FunDeclPtr Phase = userFun("phase", {"x"}, {float32()}, float32(),
                             "return cos(x) + x * sin(x);");
  ParamPtr P = floatArray("samples", N);
  LambdaPtr Prog = lambda({P}, call(map(Phase), {ExprPtr(P)}));

  Workload W;
  W.Name = "mriq";
  W.Program = Prog;
  W.Inputs = {randomFloats(static_cast<size_t>(N), 19)};
  W.OutCount = static_cast<size_t>(N);
  W.BaseGlobal = {256, 1, 1};
  W.BaseLocal = {32, 1, 1};
  W.OuterN = N;
  return W;
}

/// 1D 3-point stencil over sliding windows.
Workload makeConvolution() {
  const int64_t N = 1026; // 1024 windows of size 3, step 1
  FunDeclPtr AccW = userFun("accW", {"acc", "e"}, {float32(), float32()},
                            float32(), "return acc + 0.3333f * e;");
  ParamPtr In = floatArray("signal", N);
  LambdaPtr Prog = lambda(
      {In}, pipe(ExprPtr(In), slide(3, 1), map(fun([&](ExprPtr Win) {
               return copyOut(
                   call(reduceSeq(AccW), {litFloat(0.f), Win}));
             })),
             join()));

  Workload W;
  W.Name = "convolution";
  W.Program = Prog;
  W.Inputs = {randomFloats(static_cast<size_t>(N), 23)};
  W.OutCount = 1024;
  W.BaseGlobal = {256, 1, 1};
  W.BaseLocal = {32, 1, 1};
  W.OuterN = 1024;
  return W;
}

/// atax pattern (A^T A x), simplified to a per-row dot product with a
/// squared accumulation stage.
Workload makeAtax() {
  const int64_t M = 64, K = 64;
  ParamPtr A = floatMatrix("A", M, K);
  ParamPtr X = floatArray("x", K);
  LambdaPtr Prog = lambda(
      {A, X},
      pipe(ExprPtr(A), map(fun([&](ExprPtr Row) {
             return call(
                 map(prelude::squareFun()),
                 {call(reduceSeq(prelude::addFun()),
                       {litFloat(0.f),
                        call(map(prelude::multFun2Tuple()),
                             {call(zip(), {Row, ExprPtr(X)})})})});
           })),
           join()));

  Workload W;
  W.Name = "atax";
  W.Program = Prog;
  W.Inputs = {randomFloats(static_cast<size_t>(M * K), 29),
              randomFloats(static_cast<size_t>(K), 31)};
  W.OutCount = static_cast<size_t>(M);
  W.BaseGlobal = {64, 1, 1};
  W.BaseLocal = {16, 1, 1};
  W.OuterN = M;
  return W;
}

/// Dense matrix-vector multiplication: per-row dot product.
Workload makeGemv() {
  const int64_t M = 256, K = 64;
  ParamPtr A = floatMatrix("A", M, K);
  ParamPtr X = floatArray("x", K);
  LambdaPtr Prog = lambda(
      {A, X},
      pipe(ExprPtr(A), map(fun([&](ExprPtr Row) {
             return copyOut(
                 call(reduceSeq(prelude::addFun()),
                      {litFloat(0.f),
                       call(map(prelude::multFun2Tuple()),
                            {call(zip(), {Row, ExprPtr(X)})})}));
           })),
           join()));

  Workload W;
  W.Name = "gemv";
  W.Program = Prog;
  W.Inputs = {randomFloats(static_cast<size_t>(M * K), 37),
              randomFloats(static_cast<size_t>(K), 41)};
  W.OutCount = static_cast<size_t>(M);
  W.BaseGlobal = {64, 1, 1};
  W.BaseLocal = {16, 1, 1};
  W.OuterN = M;
  return W;
}

/// gesummv pattern: y = A x + B x, two dot products per output row.
Workload makeGesummv() {
  const int64_t M = 64, K = 48;
  FunDeclPtr AddPair =
      userFun("addPair", {"p"}, {tupleOf({float32(), float32()})}, float32(),
              "return p._0 + p._1;");
  ParamPtr A = floatMatrix("A", M, K);
  ParamPtr B = floatMatrix("B", M, K);
  ParamPtr X = floatArray("x", K);
  auto Dot = [&](ExprPtr Row) {
    return call(reduceSeq(prelude::multAndSumUpFun()),
                {litFloat(0.f), call(zip(), {std::move(Row), ExprPtr(X)})});
  };
  LambdaPtr Prog = lambda(
      {A, B, X},
      pipe(call(zip(), {ExprPtr(A), ExprPtr(B)}), map(fun([&](ExprPtr AB) {
             ExprPtr DotA = Dot(call(get(0), {AB}));
             ExprPtr DotB = Dot(call(get(1), {AB}));
             return call(map(AddPair),
                         {call(zip(), {std::move(DotA), std::move(DotB)})});
           })),
           join()));

  Workload W;
  W.Name = "gesummv";
  W.Program = Prog;
  W.Inputs = {randomFloats(static_cast<size_t>(M * K), 43),
              randomFloats(static_cast<size_t>(M * K), 47),
              randomFloats(static_cast<size_t>(K), 53)};
  W.OutCount = static_cast<size_t>(M);
  W.BaseGlobal = {32, 1, 1};
  W.BaseLocal = {8, 1, 1};
  W.OuterN = M;
  return W;
}

/// Dense matrix multiplication with the second matrix stored transposed:
/// nested high-level maps over rows x columns.
Workload makeMM() {
  const int64_t M = 32, N = 32, K = 32;
  ParamPtr A = floatMatrix("A", M, K);
  ParamPtr Bt = floatMatrix("Bt", N, K);
  LambdaPtr Prog = lambda(
      {A, Bt},
      pipe(ExprPtr(A), map(fun([&](ExprPtr Row) {
             return pipe(ExprPtr(Bt), map(fun([&](ExprPtr Col) {
                           return copyOut(call(
                               reduceSeq(prelude::multAndSumUpFun()),
                               {litFloat(0.f),
                                call(zip(), {Row, Col})}));
                         })),
                         join());
           }))));

  Workload W;
  W.Name = "mm";
  W.Program = Prog;
  W.Inputs = {randomFloats(static_cast<size_t>(M * K), 59),
              randomFloats(static_cast<size_t>(N * K), 61)};
  W.OutCount = static_cast<size_t>(M * N);
  W.BaseGlobal = {8, 1, 1};
  W.BaseLocal = {4, 1, 1};
  W.OuterN = M;
  return W;
}

/// AMD-style matrix multiplication variant: explicit multiply map feeding
/// an add reduction (fusable), smaller tiles.
Workload makeMMAmd() {
  const int64_t M = 24, N = 24, K = 24;
  ParamPtr A = floatMatrix("A", M, K);
  ParamPtr Bt = floatMatrix("Bt", N, K);
  LambdaPtr Prog = lambda(
      {A, Bt},
      pipe(ExprPtr(A), map(fun([&](ExprPtr Row) {
             return pipe(ExprPtr(Bt), map(fun([&](ExprPtr Col) {
                           return copyOut(call(
                               reduceSeq(prelude::addFun()),
                               {litFloat(0.f),
                                call(map(prelude::multFun2Tuple()),
                                     {call(zip(), {Row, Col})})}));
                         })),
                         join());
           }))));

  Workload W;
  W.Name = "mm-amd";
  W.Program = Prog;
  W.Inputs = {randomFloats(static_cast<size_t>(M * K), 67),
              randomFloats(static_cast<size_t>(N * K), 71)};
  W.OutCount = static_cast<size_t>(M * N);
  W.BaseGlobal = {24, 1, 1};
  W.BaseLocal = {4, 1, 1};
  W.OuterN = M;
  return W;
}

} // namespace

std::vector<Workload> tune::allWorkloads() {
  return {makeNBody(),  makeNBodyAmd(), makeMD(),   makeKMeans(),
          makeNN(),     makeMriQ(),     makeConvolution(), makeAtax(),
          makeGemv(),   makeGesummv(),  makeMM(),   makeMMAmd()};
}

Workload tune::loweringCompareWorkload() {
  const int64_t N = 4096;
  FunDeclPtr Scale = userFun("scale", {"x"}, {float32()}, float32(),
                             "return 3.0f * x;");
  FunDeclPtr Offset = userFun("offset", {"x"}, {float32()}, float32(),
                              "return x + 1.0f;");
  ParamPtr X = floatArray("x", N);
  LambdaPtr Prog =
      lambda({X}, pipe(ExprPtr(X), map(Scale), map(Offset)));

  std::vector<float> In(static_cast<size_t>(N));
  for (int64_t I = 0; I != N; ++I)
    In[static_cast<size_t>(I)] = static_cast<float>(I % 17) / 4.f;

  Workload W;
  W.Name = "lowering-compare";
  W.Program = Prog;
  W.Inputs = {In};
  W.OutCount = static_cast<size_t>(N);
  W.BaseGlobal = {512, 1, 1};
  W.BaseLocal = {64, 1, 1};
  W.OuterN = N;
  return W;
}

const Workload *tune::findWorkload(const std::vector<Workload> &Set,
                                   const std::string &Name) {
  for (const Workload &W : Set)
    if (W.Name == Name)
      return &W;
  return nullptr;
}
