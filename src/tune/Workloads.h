//===- Workloads.h - High-level tuning workloads -----------------*- C++ -*-===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tuner searches the lowering space of *high-level* programs (plain
/// `map`, no mapping decisions taken). The benchmark suite's cases are
/// already lowered, so this module provides portable high-level
/// formulations of the same twelve computational patterns (n-body, MD,
/// k-means, nn, mri-q, convolution, atax, gemv, gesummv, mm and the AMD
/// variants), each with deterministic inputs and a deliberately
/// one-size-fits-all base NDRange standing in for the untuned launch
/// configuration a user would pick.
///
//===----------------------------------------------------------------------===//

#ifndef LIFT_TUNE_WORKLOADS_H
#define LIFT_TUNE_WORKLOADS_H

#include "ir/IR.h"

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace lift {
namespace tune {

/// A tunable workload: a high-level program plus everything needed to
/// execute candidates (inputs, output extent, base NDRange).
struct Workload {
  std::string Name;
  /// High-level program: plain `map` everywhere, constant sizes.
  ir::LambdaPtr Program;
  /// One flat float vector per program buffer parameter, in order.
  std::vector<std::vector<float>> Inputs;
  /// Element count of the output buffer (simulated Values).
  size_t OutCount = 0;
  /// Integer size bindings (empty: the workloads use constant sizes).
  std::map<std::string, int64_t> Sizes;
  /// The untuned launch configuration the default lowering runs at.
  std::array<int64_t, 3> BaseGlobal = {64, 1, 1};
  std::array<int64_t, 3> BaseLocal = {16, 1, 1};
  /// Length of the outermost map (the tunable parallel dimension).
  int64_t OuterN = 0;
};

/// The twelve tuning workloads, in a fixed order.
std::vector<Workload> allWorkloads();

/// The high-level program of bench/lowering_compare.cpp (map(multiply) .
/// map(add) over [float]4096), exposed here so the bench can consult the
/// tuning cache for its work-group chunk size.
Workload loweringCompareWorkload();

/// Finds a workload by name in allWorkloads() + loweringCompareWorkload().
/// Returns nullptr-like empty Program when unknown.
const Workload *findWorkload(const std::vector<Workload> &Set,
                             const std::string &Name);

} // namespace tune
} // namespace lift

#endif // LIFT_TUNE_WORKLOADS_H
