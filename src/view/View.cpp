//===- View.cpp - Array access views ----------------------------------------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "view/View.h"

#include "support/Casting.h"
#include "support/Diagnostics.h"
#include "support/Error.h"

using namespace lift;
using namespace lift::view;

ViewNode::~ViewNode() = default;

namespace {

/// Walks a view chain top-to-bottom maintaining the array-index stack and
/// the tuple-component stack of Figure 5.
class ViewConsumer {
  std::vector<arith::Expr> ArrayStack;
  std::vector<unsigned> TupleStack;
  unsigned VectorWidth = 1;
  /// Continuations for MapPureView: the saved outer index and the view to
  /// resume with when the inner chain reaches its HoleView.
  std::vector<std::pair<arith::Expr, const ViewNode *>> Resume;

public:
  Access run(const View &Start) {
    const ViewNode *Cur = Start.get();
    while (true) {
      switch (Cur->getKind()) {
      case ViewKind::ArrayAccess: {
        const auto *V = cast<ArrayAccessView>(Cur);
        ArrayStack.push_back(V->getIndex());
        Cur = V->getPrev().get();
        break;
      }
      case ViewKind::Split: {
        const auto *V = cast<SplitView>(Cur);
        arith::Expr Outer = pop();
        arith::Expr Inner = pop();
        ArrayStack.push_back(
            arith::add(arith::mul(Outer, V->getFactor()), Inner));
        Cur = V->getPrev().get();
        break;
      }
      case ViewKind::Join: {
        const auto *V = cast<JoinView>(Cur);
        arith::Expr K = pop();
        // Push inner first so the outer index ends on top.
        ArrayStack.push_back(arith::mod(K, V->getInnerSize()));
        ArrayStack.push_back(arith::intDiv(K, V->getInnerSize()));
        Cur = V->getPrev().get();
        break;
      }
      case ViewKind::Zip: {
        const auto *V = cast<ZipView>(Cur);
        if (TupleStack.empty())
          throwDiag(DiagCode::CodegenView, DiagLocation(), "view consumption: zip without a tuple access");
        unsigned Component = TupleStack.back();
        TupleStack.pop_back();
        if (Component >= V->getChildren().size())
          throwDiag(DiagCode::CodegenView, DiagLocation(), "view consumption: tuple component out of range");
        Cur = V->getChildren()[Component].get();
        break;
      }
      case ViewKind::TupleAccess: {
        const auto *V = cast<TupleAccessView>(Cur);
        TupleStack.push_back(V->getIndex());
        Cur = V->getPrev().get();
        break;
      }
      case ViewKind::Gather: {
        const auto *V = cast<GatherView>(Cur);
        arith::Expr Outer = pop();
        ArrayStack.push_back(V->remap(Outer));
        Cur = V->getPrev().get();
        break;
      }
      case ViewKind::Slide: {
        const auto *V = cast<SlideView>(Cur);
        arith::Expr Window = pop();
        arith::Expr Element = pop();
        ArrayStack.push_back(
            arith::add(arith::mul(Window, V->getStep()), Element));
        Cur = V->getPrev().get();
        break;
      }
      case ViewKind::Transpose: {
        const auto *V = cast<TransposeView>(Cur);
        arith::Expr Outer = pop();
        arith::Expr Inner = pop();
        // Swap: the previous view sees [Inner][Outer].
        ArrayStack.push_back(Outer);
        ArrayStack.push_back(Inner);
        Cur = V->getPrev().get();
        break;
      }
      case ViewKind::GatherIndices: {
        const auto *V = cast<GatherIndicesView>(Cur);
        arith::Expr Outer = pop();
        // Consume the index array's view at position Outer to obtain the
        // address of the runtime index, then wrap it in a Lookup.
        View IdxAt =
            std::make_shared<ArrayAccessView>(Outer, V->getIdxView());
        Access IdxAccess = consumeView(IdxAt);
        const StoragePtr &Table = IdxAccess.Store;
        ArrayStack.push_back(arith::lookup(Table->Id, Table->Var->Name,
                                           IdxAccess.Index));
        Cur = V->getPrev().get();
        break;
      }
      case ViewKind::AsVector: {
        const auto *V = cast<AsVectorView>(Cur);
        arith::Expr Outer = pop();
        ArrayStack.push_back(
            arith::mul(Outer, arith::cst(V->getWidth())));
        VectorWidth = V->getWidth();
        Cur = V->getPrev().get();
        break;
      }
      case ViewKind::AsScalar: {
        const auto *V = cast<AsScalarView>(Cur);
        // Scalar-flat storage: the index passes through unchanged.
        VectorWidth = 1;
        Cur = V->getPrev().get();
        break;
      }
      case ViewKind::MapPure: {
        const auto *V = cast<MapPureView>(Cur);
        // Hold the outer index aside while the inner chain transforms the
        // element-level indices; restored at the HoleView.
        Resume.emplace_back(pop(), V->getPrev().get());
        Cur = V->getInnerChain().get();
        break;
      }
      case ViewKind::Hole: {
        if (Resume.empty())
          throwDiag(DiagCode::CodegenView, DiagLocation(), "view consumption: hole without enclosing map view");
        auto [Outer, Next] = Resume.back();
        Resume.pop_back();
        ArrayStack.push_back(Outer);
        Cur = Next;
        break;
      }
      case ViewKind::Memory: {
        const auto *V = cast<MemoryView>(Cur);
        Access Result;
        Result.Store = V->getStorage();
        Result.VectorWidth = VectorWidth;
        Result.Components.assign(TupleStack.rbegin(), TupleStack.rend());
        if (V->getStorage()->isScalar()) {
          Result.Index = nullptr;
          return Result;
        }
        // Linearize the remaining indices against the declared dims,
        // outermost dimension first (on top of the stack).
        const auto &Dims = V->getDims();
        if (ArrayStack.size() < Dims.size())
          throwDiag(DiagCode::CodegenView, DiagLocation(), "view consumption: not enough indices for memory view");
        arith::Expr Flat = pop();
        for (size_t I = 1, E = Dims.size(); I != E; ++I)
          Flat = arith::add(arith::mul(Flat, Dims[I]), pop());
        Result.Index = Flat;
        return Result;
      }
      }
    }
  }

private:
  arith::Expr pop() {
    if (ArrayStack.empty())
      throwDiag(DiagCode::CodegenView, DiagLocation(), "view consumption: array index stack underflow");
    arith::Expr E = ArrayStack.back();
    ArrayStack.pop_back();
    return E;
  }
};

} // namespace

Access view::consumeView(const View &V) { return ViewConsumer().run(V); }
