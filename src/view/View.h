//===- View.h - Array access views ------------------------------*- C++ -*-===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Views record how data-layout patterns (split, join, zip, gather, slide,
/// transpose, ...) influence array accesses without materializing
/// intermediate arrays (section 5.3 of the paper, Figure 5). A view is a
/// chain from the most recent access operation down to a memory view; it is
/// consumed top-to-bottom with an array-index stack and a tuple-component
/// stack to produce a flat array index expression.
///
/// The same node semantics serve input views (reads, built bottom-up while
/// the code generator descends into arguments) and output views (writes,
/// built from the layout patterns *surrounding* a producer, with the
/// inverse constructors: a join on the output path becomes a SplitView,
/// a scatter becomes a GatherView, and so on).
///
//===----------------------------------------------------------------------===//

#ifndef LIFT_VIEW_VIEW_H
#define LIFT_VIEW_VIEW_H

#include "arith/ArithExpr.h"
#include "cast/CAst.h"

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace lift {
namespace view {

//===----------------------------------------------------------------------===//
// Storage
//===----------------------------------------------------------------------===//

/// A piece of memory a view can terminate in: a global kernel argument, a
/// local or private array declared in the kernel, or a private scalar
/// register (the result of a sequential reduction).
struct Storage {
  unsigned Id = 0;
  c::CVarPtr Var;          ///< The C variable naming the storage.
  c::CAddrSpace AS = c::CAddrSpace::Global;
  c::CTypePtr ElemType;    ///< Element type of the array (or scalar type).
  arith::Expr NumElements; ///< Total element count; null for scalars.

  /// True if this is a plain scalar variable rather than an array.
  bool isScalar() const { return NumElements == nullptr; }
};

using StoragePtr = std::shared_ptr<Storage>;

//===----------------------------------------------------------------------===//
// View nodes
//===----------------------------------------------------------------------===//

class ViewNode;
using View = std::shared_ptr<const ViewNode>;

enum class ViewKind {
  Memory,
  ArrayAccess,
  Split,
  Join,
  Zip,
  TupleAccess,
  Gather,
  Slide,
  Transpose,
  GatherIndices,
  AsVector,
  AsScalar,
  MapPure,
  Hole,
};

class ViewNode {
  const ViewKind Kind;

protected:
  explicit ViewNode(ViewKind K) : Kind(K) {}

public:
  virtual ~ViewNode();

  ViewKind getKind() const { return Kind; }
};

/// Terminal view: the memory of \p Store, with the given array dimension
/// sizes (outermost first) used to linearize the remaining index stack.
class MemoryView : public ViewNode {
  StoragePtr Store;
  std::vector<arith::Expr> Dims;

public:
  MemoryView(StoragePtr Store, std::vector<arith::Expr> Dims)
      : ViewNode(ViewKind::Memory), Store(std::move(Store)),
        Dims(std::move(Dims)) {}

  const StoragePtr &getStorage() const { return Store; }
  const std::vector<arith::Expr> &getDims() const { return Dims; }

  static bool classof(const ViewNode *V) {
    return V->getKind() == ViewKind::Memory;
  }
};

/// Indexing one array dimension with a (loop) index expression.
class ArrayAccessView : public ViewNode {
  arith::Expr Index;
  View Prev;

public:
  ArrayAccessView(arith::Expr Index, View Prev)
      : ViewNode(ViewKind::ArrayAccess), Index(std::move(Index)),
        Prev(std::move(Prev)) {}

  const arith::Expr &getIndex() const { return Index; }
  const View &getPrev() const { return Prev; }

  static bool classof(const ViewNode *V) {
    return V->getKind() == ViewKind::ArrayAccess;
  }
};

/// Linearizes two indices: [outer][inner] -> outer * Factor + inner.
class SplitView : public ViewNode {
  arith::Expr Factor;
  View Prev;

public:
  SplitView(arith::Expr Factor, View Prev)
      : ViewNode(ViewKind::Split), Factor(std::move(Factor)),
        Prev(std::move(Prev)) {}

  const arith::Expr &getFactor() const { return Factor; }
  const View &getPrev() const { return Prev; }

  static bool classof(const ViewNode *V) {
    return V->getKind() == ViewKind::Split;
  }
};

/// Delinearizes one index: k -> [k / InnerSize][k mod InnerSize].
class JoinView : public ViewNode {
  arith::Expr InnerSize;
  View Prev;

public:
  JoinView(arith::Expr InnerSize, View Prev)
      : ViewNode(ViewKind::Join), InnerSize(std::move(InnerSize)),
        Prev(std::move(Prev)) {}

  const arith::Expr &getInnerSize() const { return InnerSize; }
  const View &getPrev() const { return Prev; }

  static bool classof(const ViewNode *V) {
    return V->getKind() == ViewKind::Join;
  }
};

/// Branches into one of several zipped arrays, selected by the tuple stack.
class ZipView : public ViewNode {
  std::vector<View> Children;

public:
  explicit ZipView(std::vector<View> Children)
      : ViewNode(ViewKind::Zip), Children(std::move(Children)) {}

  const std::vector<View> &getChildren() const { return Children; }

  static bool classof(const ViewNode *V) {
    return V->getKind() == ViewKind::Zip;
  }
};

/// Selects tuple component \p Index (pushes onto the tuple stack).
class TupleAccessView : public ViewNode {
  unsigned Index;
  View Prev;

public:
  TupleAccessView(unsigned Index, View Prev)
      : ViewNode(ViewKind::TupleAccess), Index(Index), Prev(std::move(Prev)) {}

  unsigned getIndex() const { return Index; }
  const View &getPrev() const { return Prev; }

  static bool classof(const ViewNode *V) {
    return V->getKind() == ViewKind::TupleAccess;
  }
};

/// Remaps the outer index with an index function (gather on reads; a
/// scatter on the output path also becomes a GatherView).
class GatherView : public ViewNode {
  std::function<arith::Expr(const arith::Expr &)> ReMap;
  View Prev;

public:
  GatherView(std::function<arith::Expr(const arith::Expr &)> ReMap, View Prev)
      : ViewNode(ViewKind::Gather), ReMap(std::move(ReMap)),
        Prev(std::move(Prev)) {}

  arith::Expr remap(const arith::Expr &I) const { return ReMap(I); }
  const View &getPrev() const { return Prev; }

  static bool classof(const ViewNode *V) {
    return V->getKind() == ViewKind::Gather;
  }
};

/// Overlapping windows: [window][element] -> window * Step + element.
class SlideView : public ViewNode {
  arith::Expr Step;
  View Prev;

public:
  SlideView(arith::Expr Step, View Prev)
      : ViewNode(ViewKind::Slide), Step(std::move(Step)),
        Prev(std::move(Prev)) {}

  const arith::Expr &getStep() const { return Step; }
  const View &getPrev() const { return Prev; }

  static bool classof(const ViewNode *V) {
    return V->getKind() == ViewKind::Slide;
  }
};

/// Swaps the two outermost indices.
class TransposeView : public ViewNode {
  View Prev;

public:
  explicit TransposeView(View Prev)
      : ViewNode(ViewKind::Transpose), Prev(std::move(Prev)) {}

  const View &getPrev() const { return Prev; }

  static bool classof(const ViewNode *V) {
    return V->getKind() == ViewKind::Transpose;
  }
};

/// Data-dependent remap: the outer index i becomes the runtime value
/// IdxArray[i] (an arith Lookup node reading TableStorage).
class GatherIndicesView : public ViewNode {
  View IdxView;          ///< View of the index array.
  StoragePtr TableStore; ///< Storage holding the index array (for Lookup).
  View Prev;             ///< View of the data array.

public:
  GatherIndicesView(View IdxView, StoragePtr TableStore, View Prev)
      : ViewNode(ViewKind::GatherIndices), IdxView(std::move(IdxView)),
        TableStore(std::move(TableStore)), Prev(std::move(Prev)) {}

  const View &getIdxView() const { return IdxView; }
  const StoragePtr &getTableStorage() const { return TableStore; }
  const View &getPrev() const { return Prev; }

  static bool classof(const ViewNode *V) {
    return V->getKind() == ViewKind::GatherIndices;
  }
};

/// Vector element access over scalar storage: index i covers scalars
/// [i*Width, i*Width + Width).
class AsVectorView : public ViewNode {
  unsigned Width;
  View Prev;

public:
  AsVectorView(unsigned Width, View Prev)
      : ViewNode(ViewKind::AsVector), Width(Width), Prev(std::move(Prev)) {}

  unsigned getWidth() const { return Width; }
  const View &getPrev() const { return Prev; }

  static bool classof(const ViewNode *V) {
    return V->getKind() == ViewKind::AsVector;
  }
};

/// Scalar element access over vector-written storage (flat scalar index).
class AsScalarView : public ViewNode {
  unsigned Width;
  View Prev;

public:
  AsScalarView(unsigned Width, View Prev)
      : ViewNode(ViewKind::AsScalar), Width(Width), Prev(std::move(Prev)) {}

  unsigned getWidth() const { return Width; }
  const View &getPrev() const { return Prev; }

  static bool classof(const ViewNode *V) {
    return V->getKind() == ViewKind::AsScalar;
  }
};

/// The view of a map over a *pure* (layout-only) function, e.g.
/// map(transpose) or map(slide(3,1)): the outer index is held aside while
/// the inner chain — which ends in a HoleView — transforms the remaining
/// indices, then the outer index is restored and consumption continues
/// with Prev.
class MapPureView : public ViewNode {
  View InnerChain; ///< Pure transformation chain terminated by a HoleView.
  View Prev;

public:
  MapPureView(View InnerChain, View Prev)
      : ViewNode(ViewKind::MapPure), InnerChain(std::move(InnerChain)),
        Prev(std::move(Prev)) {}

  const View &getInnerChain() const { return InnerChain; }
  const View &getPrev() const { return Prev; }

  static bool classof(const ViewNode *V) {
    return V->getKind() == ViewKind::MapPure;
  }
};

/// Terminates the inner chain of a MapPureView.
class HoleView : public ViewNode {
public:
  HoleView() : ViewNode(ViewKind::Hole) {}

  static bool classof(const ViewNode *V) {
    return V->getKind() == ViewKind::Hole;
  }
};

//===----------------------------------------------------------------------===//
// Consumption (Figure 5, right-hand side)
//===----------------------------------------------------------------------===//

/// The result of consuming a view: which storage to access, at which flat
/// element index, and with which vector width (1 = scalar access).
struct Access {
  StoragePtr Store;
  arith::Expr Index; ///< Flat index in scalar elements; null for scalars.
  unsigned VectorWidth = 1;
  /// Tuple components left over at the memory view: the access selects
  /// these struct members of the stored element (outermost access first).
  std::vector<unsigned> Components;
};

/// Consumes \p V with the array/tuple stack algorithm and returns the
/// memory access it denotes. Aborts on malformed views (e.g. a dangling
/// tuple access without a zip).
Access consumeView(const View &V);

} // namespace view
} // namespace lift

#endif // LIFT_VIEW_VIEW_H
