//===- ArithDiffFuzzTest.cpp - Differential fuzzing of arith semantics --------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Differentially tests the three implementations of integer arithmetic
/// that must agree for generated kernels to be correct: symbolic
/// evaluation (arith::evaluate), the simplifier (evaluate after
/// simplified()), and the simulated device executing the expression as
/// printed into OpenCL C. Random expressions include negative constants,
/// negative-valued variables and negative divisors — the inputs on which
/// floor and truncated division semantics disagree.
///
//===----------------------------------------------------------------------===//

#include "arith/ArithExpr.h"
#include "arith/Eval.h"
#include "arith/Printer.h"
#include "cparse/CParser.h"
#include "ocl/Runtime.h"

#include <gtest/gtest.h>

using namespace lift;
using namespace lift::arith;

namespace {

/// Deterministic small PRNG.
class Prng {
  uint64_t State;

public:
  explicit Prng(uint64_t Seed) : State(Seed * 2654435761u + 17) {}
  uint64_t next() {
    State ^= State << 13;
    State ^= State >> 7;
    State ^= State << 17;
    return State;
  }
  int64_t range(int64_t Lo, int64_t Hi) { // inclusive
    return Lo +
           static_cast<int64_t>(next() % static_cast<uint64_t>(Hi - Lo + 1));
  }
};

/// Builds a random expression over variables a, b (may be negative) and c
/// (positive). Divisors are nonzero: a constant of either sign or the
/// positive variable, so runtime division by zero is impossible while
/// negative-divisor folds still get exercised.
Expr randomExpr(Prng &Rng, const std::vector<Expr> &Vars, int Depth) {
  if (Depth == 0 || Rng.range(0, 3) == 0) {
    if (Rng.range(0, 1) == 0)
      return cst(Rng.range(-9, 9));
    return Vars[Rng.next() % Vars.size()];
  }
  auto Divisor = [&]() -> Expr {
    switch (Rng.range(0, 3)) {
    case 0:
      return cst(-Rng.range(1, 9));
    case 1:
      return Vars.back(); // the positive variable
    default:
      return cst(Rng.range(1, 9));
    }
  };
  switch (Rng.range(0, 4)) {
  case 0:
    return add(randomExpr(Rng, Vars, Depth - 1),
               randomExpr(Rng, Vars, Depth - 1));
  case 1:
    return sub(randomExpr(Rng, Vars, Depth - 1),
               randomExpr(Rng, Vars, Depth - 1));
  case 2:
    return mul(randomExpr(Rng, Vars, Depth - 1),
               randomExpr(Rng, Vars, Depth - 1));
  case 3:
    return intDiv(randomExpr(Rng, Vars, Depth - 1), Divisor());
  default:
    return mod(randomExpr(Rng, Vars, Depth - 1), Divisor());
  }
}

class ArithDiffFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(ArithDiffFuzzTest, EvalSimplifierAndInterpreterAgree) {
  Prng Rng(static_cast<uint64_t>(GetParam()) * 48271 + 11);
  std::vector<Expr> Vars = {var("a", cst(-50), cst(50)),
                            var("b", cst(-50), cst(50)),
                            var("c", cst(1), cst(9))};

  Expr Raw;
  {
    SimplifyGuard Guard(false);
    Raw = randomExpr(Rng, Vars, 4);
  }
  Expr Simple = simplified(Raw);

  for (int Trial = 0; Trial < 8; ++Trial) {
    std::vector<int64_t> Values = {Rng.range(-50, 50), Rng.range(-50, 50),
                                   Rng.range(1, 9)};
    EvalContext Ctx;
    Ctx.VarValue = [&](const VarNode &V) -> int64_t {
      for (size_t I = 0; I != Vars.size(); ++I)
        if (V.getId() == static_cast<const VarNode *>(Vars[I].get())->getId())
          return Values[I];
      ADD_FAILURE() << "unbound variable " << V.getName();
      return 0;
    };
    int64_t Direct = evaluate(Raw, Ctx);

    // The simplified expression must mean the same thing.
    EXPECT_EQ(Direct, evaluate(Simple, Ctx))
        << "raw: " << toString(Raw) << "\nsimplified: " << toString(Simple)
        << "\na=" << Values[0] << " b=" << Values[1] << " c=" << Values[2];

    // The simulated device executing the printed C expression must too.
    std::string Src = "kernel void f(global int *out, int a, int b, int c) "
                      "{ out[0] = " +
                      toString(Raw) + "; }";
    cparse::ParseContext PC;
    auto K = ocl::wrapModule(cparse::parseModule(Src, PC));
    ocl::Buffer Out = ocl::Buffer::ofInts({0});
    ocl::LaunchConfig Cfg; // a single work-item
    ocl::launch(K, {&Out}, {{"a", Values[0]}, {"b", Values[1]},
                            {"c", Values[2]}},
                Cfg);
    EXPECT_EQ(Direct, Out.at(0).asInt())
        << "expr: " << toString(Raw) << "\na=" << Values[0]
        << " b=" << Values[1] << " c=" << Values[2];
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArithDiffFuzzTest, ::testing::Range(0, 120));

} // namespace
