//===- ArithExprTest.cpp - Unit tests for symbolic arithmetic -------------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests the simplification rules (1)-(6) from section 5.3 of the paper and
/// the canonicalization behaviour of the arithmetic factories.
///
//===----------------------------------------------------------------------===//

#include "arith/ArithExpr.h"
#include "arith/Bounds.h"
#include "arith/Eval.h"
#include "arith/Printer.h"

#include <gtest/gtest.h>

#include <limits>

using namespace lift::arith;

namespace {

/// Convenience fixture providing the variables of the paper's running
/// examples: sizes N, M and ids with ranges derived from them.
class ArithTest : public ::testing::Test {
protected:
  std::shared_ptr<const VarNode> N = sizeVar("N");
  std::shared_ptr<const VarNode> M = sizeVar("M");
  // wg_id in [0, M-1], l_id in [0, N-1] as in the transpose example.
  std::shared_ptr<const VarNode> WgId = var("wg_id", cst(0), sub(M, cst(1)));
  std::shared_ptr<const VarNode> LId = var("l_id", cst(0), sub(N, cst(1)));
};

TEST_F(ArithTest, ConstantFolding) {
  EXPECT_TRUE(equals(add(cst(2), cst(3)), cst(5)));
  EXPECT_TRUE(equals(mul(cst(2), cst(3)), cst(6)));
  EXPECT_TRUE(equals(sub(cst(2), cst(3)), cst(-1)));
  EXPECT_TRUE(equals(intDiv(cst(7), cst(2)), cst(3)));
  EXPECT_TRUE(equals(mod(cst(7), cst(2)), cst(1)));
  EXPECT_TRUE(equals(pow(cst(3), 3), cst(27)));
}

TEST_F(ArithTest, AdditionIdentities) {
  EXPECT_TRUE(equals(add(N, cst(0)), N));
  EXPECT_TRUE(equals(sub(N, N), cst(0)));
  EXPECT_TRUE(equals(add(N, N), mul(cst(2), N)));
  // Like-term collection: 2N + 3N = 5N.
  EXPECT_TRUE(
      equals(add(mul(cst(2), N), mul(cst(3), N)), mul(cst(5), N)));
}

TEST_F(ArithTest, MultiplicationIdentities) {
  EXPECT_TRUE(equals(mul(N, cst(1)), N));
  EXPECT_TRUE(equals(mul(N, cst(0)), cst(0)));
  EXPECT_TRUE(equals(mul(N, N), pow(N, 2)));
  // Commutativity via canonical ordering.
  EXPECT_TRUE(equals(mul(N, M), mul(M, N)));
}

TEST_F(ArithTest, Rule1DivSmallerThanDivisor) {
  // l_id / N = 0 since l_id in [0, N-1].
  EXPECT_TRUE(equals(intDiv(LId, N), cst(0)));
  // 3 / 7 = 0.
  EXPECT_TRUE(equals(intDiv(cst(3), cst(7)), cst(0)));
  // N / M is not simplifiable.
  EXPECT_EQ(intDiv(N, M)->getKind(), ExprKind::IntDiv);
}

TEST_F(ArithTest, Rule2SumDivision) {
  // (wg_id * M + l_id') / M = wg_id  when l_id' < M.
  auto L2 = var("l2", cst(0), sub(M, cst(1)));
  Expr E = intDiv(add(mul(WgId, M), L2), M);
  EXPECT_TRUE(equals(E, WgId));
  // (x*y + z)/y = x + z/y in general.
  Expr X = sizeVar("x"), Y = sizeVar("y"), Z = sizeVar("z");
  Expr General = intDiv(add(mul(X, Y), Z), Y);
  EXPECT_TRUE(equals(General, add(X, intDiv(Z, Y))));
}

TEST_F(ArithTest, Rule3ModSmallerThanDivisor) {
  EXPECT_TRUE(equals(mod(LId, N), LId));
  EXPECT_TRUE(equals(mod(cst(3), cst(7)), cst(3)));
  EXPECT_EQ(mod(N, M)->getKind(), ExprKind::Mod);
}

TEST_F(ArithTest, Rule4DivModRecomposition) {
  // (x/y)*y + x mod y = x.
  Expr X = sizeVar("x"), Y = sizeVar("y");
  Expr E = add(mul(intDiv(X, Y), Y), mod(X, Y));
  EXPECT_TRUE(equals(E, X));
}

TEST_F(ArithTest, Rule4WithConstantDivisor) {
  // (x/4)*4 + x mod 4 = x — the constant divisor folds into the
  // coefficient of the division term.
  Expr X = sizeVar("x");
  Expr E = add(mul(intDiv(X, cst(4)), cst(4)), mod(X, cst(4)));
  EXPECT_TRUE(equals(E, X));
  // Scaled: 3*(x/4)*4 + 3*(x mod 4) = 3*x.
  Expr E3 = add(mul(cst(3), mul(intDiv(X, cst(4)), cst(4))),
                mul(cst(3), mod(X, cst(4))));
  EXPECT_TRUE(equals(E3, mul(cst(3), X)));
}

TEST_F(ArithTest, Rule5ProductMod) {
  EXPECT_TRUE(equals(mod(mul(WgId, M), M), cst(0)));
  EXPECT_TRUE(equals(mod(mul(cst(4), N), N), cst(0)));
  EXPECT_TRUE(equals(mod(mul(cst(6), N), cst(3)), cst(0)));
}

TEST_F(ArithTest, Rule6SumModDistribution) {
  // (wg_id*M + l2) mod M = l2 when l2 < M.
  auto L2 = var("l2", cst(0), sub(M, cst(1)));
  EXPECT_TRUE(equals(mod(add(mul(WgId, M), L2), M), L2));
}

TEST_F(ArithTest, Figure6TransposeIndex) {
  // The running example of Figure 6: with flat = wg_id*M + l2 (l2 < M),
  //   ((flat/M + (flat mod M)*N) / N) * N + (flat/M + (flat mod M)*N) mod N
  // simplifies to l2*N + wg_id.
  auto L2 = var("l2", cst(0), sub(M, cst(1)));
  Expr Flat = add(mul(WgId, M), L2);
  Expr Gathered = add(intDiv(Flat, M), mul(mod(Flat, M), N));
  Expr Index = add(mul(intDiv(Gathered, N), N), mod(Gathered, N));
  EXPECT_TRUE(equals(Index, add(mul(N, L2), WgId)));
  EXPECT_EQ(countDivMod(Index), 0u);
}

TEST_F(ArithTest, DivisionByOneAndModByOne) {
  EXPECT_TRUE(equals(intDiv(N, cst(1)), N));
  EXPECT_TRUE(equals(mod(N, cst(1)), cst(0)));
}

TEST_F(ArithTest, ExactDivision) {
  EXPECT_TRUE(equals(intDiv(mul(N, M), M), N));
  EXPECT_TRUE(equals(intDiv(mul(cst(4), N), cst(2)), mul(cst(2), N)));
  EXPECT_TRUE(equals(intDiv(pow(N, 2), N), N));
}

TEST_F(ArithTest, NestedDivision) {
  // (x/a)/b = x/(a*b).
  Expr X = sizeVar("x");
  EXPECT_TRUE(
      equals(intDiv(intDiv(X, cst(2)), cst(4)), intDiv(X, cst(8))));
}

TEST_F(ArithTest, ModModSameDivisor) {
  Expr E = mod(mod(N, M), M);
  EXPECT_TRUE(equals(E, mod(N, M)));
}

TEST_F(ArithTest, TruncatedConstantFolding) {
  // Division and modulo fold with C's truncate-toward-zero semantics, so
  // constant folds agree with what the printed `/` and `%` compute.
  EXPECT_TRUE(equals(intDiv(cst(-7), cst(2)), cst(-3)));
  EXPECT_TRUE(equals(intDiv(cst(7), cst(-2)), cst(-3)));
  EXPECT_TRUE(equals(intDiv(cst(-7), cst(-2)), cst(3)));
  EXPECT_TRUE(equals(mod(cst(-7), cst(2)), cst(-1)));
  EXPECT_TRUE(equals(mod(cst(7), cst(-2)), cst(1)));
  EXPECT_TRUE(equals(mod(cst(-7), cst(-2)), cst(-1)));
  // Truncated (x/y)*y + x%y = x holds for negatives too.
  EXPECT_TRUE(equals(add(mul(intDiv(cst(-7), cst(2)), cst(2)),
                         mod(cst(-7), cst(2))),
                     cst(-7)));
}

TEST_F(ArithTest, SumSplitNeedsNonNegativeTerms) {
  // (4t - 2)/4 must NOT rewrite to t + (-2)/4 = t: at t = 1 the value is
  // trunc(2/4) = 0, not 1. The sum-split rule only fires when every term
  // of the sum is provably non-negative.
  auto T = var("t", cst(-10), cst(10));
  Expr E = intDiv(sub(mul(cst(4), T), cst(2)), cst(4));
  EvalContext Ctx;
  Ctx.VarValue = [](const VarNode &) -> int64_t { return 1; };
  EXPECT_EQ(evaluate(E, Ctx), 0);
}

TEST_F(ArithTest, SumDropNeedsNonNegativeTerms) {
  // (4t - 2) mod 4 must NOT rewrite to (-2) mod 4 = -2: at t = 1 the value
  // is 2 mod 4 = 2.
  auto T = var("t", cst(-10), cst(10));
  Expr E = mod(sub(mul(cst(4), T), cst(2)), cst(4));
  EvalContext Ctx;
  Ctx.VarValue = [](const VarNode &) -> int64_t { return 1; };
  EXPECT_EQ(evaluate(E, Ctx), 2);
}

TEST_F(ArithTest, NegativeEvaluation) {
  auto T = var("t", cst(-100), cst(100));
  EvalContext Ctx;
  Ctx.VarValue = [](const VarNode &) -> int64_t { return -7; };
  SimplifyGuard Guard(false);
  EXPECT_EQ(evaluate(intDiv(Expr(T), cst(2)), Ctx), -3);
  EXPECT_EQ(evaluate(mod(Expr(T), cst(2)), Ctx), -1);
  EXPECT_EQ(evaluate(intDiv(Expr(T), cst(-2)), Ctx), 3);
  EXPECT_EQ(evaluate(mod(Expr(T), cst(-2)), Ctx), -1);
}

TEST_F(ArithTest, BoundsWithNegativeOperands) {
  auto T = var("t", cst(-5), cst(5));
  // trunc(-5/2) = -2 (floor would claim -3).
  EXPECT_EQ(constLowerBound(intDiv(Expr(T), cst(2))), -2);
  EXPECT_EQ(constUpperBound(intDiv(Expr(T), cst(2))), 2);
  // Truncated remainder takes the dividend's sign: t % 4 in [-3, 3].
  EXPECT_EQ(constLowerBound(mod(Expr(T), cst(4))), -3);
  EXPECT_EQ(constUpperBound(mod(Expr(T), cst(4))), 3);
  // A claim of non-negativity for t % 4 would be unsound.
  EXPECT_FALSE(provablyNonNegative(mod(Expr(T), cst(4))));
  // Non-negative dividends keep the tight [0, min(d-1, hi)] interval.
  auto U = var("u", cst(0), cst(2));
  EXPECT_EQ(constLowerBound(mod(Expr(U), cst(4))), 0);
  EXPECT_EQ(constUpperBound(mod(Expr(U), cst(4))), 2);
}

TEST_F(ArithTest, CeilDiv) {
  EXPECT_TRUE(equals(ceilDiv(cst(7), cst(2)), cst(4)));
  EXPECT_TRUE(equals(ceilDiv(cst(8), cst(2)), cst(4)));
}

TEST_F(ArithTest, SimplifyGuardDisablesSimplification) {
  SimplifyGuard Guard(false);
  Expr E = add(cst(2), cst(3));
  EXPECT_EQ(E->getKind(), ExprKind::Sum);
  Expr D = intDiv(LId, N);
  EXPECT_EQ(D->getKind(), ExprKind::IntDiv);
  // simplified() rebuilds through the simplifying factories regardless.
  EXPECT_TRUE(equals(simplified(E), cst(5)));
  EXPECT_TRUE(equals(simplified(D), cst(0)));
}

TEST_F(ArithTest, BoundsAnalysis) {
  EXPECT_EQ(constLowerBound(N), 1);
  EXPECT_FALSE(constUpperBound(N).has_value());
  auto I = var("i", cst(0), cst(63));
  EXPECT_EQ(constLowerBound(I), 0);
  EXPECT_EQ(constUpperBound(I), 63);
  EXPECT_EQ(constUpperBound(intDiv(I, cst(2))), 31);
  EXPECT_EQ(constUpperBound(mod(N, cst(8))), 7);
  EXPECT_EQ(constUpperBound(add(mul(I, cst(2)), cst(1))), 127);
}

TEST_F(ArithTest, Proofs) {
  auto I = var("i", cst(0), cst(63));
  EXPECT_TRUE(provablyLessThan(I, cst(64)));
  EXPECT_FALSE(provablyLessThan(I, cst(63)));
  EXPECT_TRUE(provablyLessEqual(I, cst(63)));
  // Symbolic: l_id < N requires eliminating l_id at its upper bound N-1.
  EXPECT_TRUE(provablyLessThan(LId, N));
  EXPECT_FALSE(provablyLessThan(LId, M));
  EXPECT_TRUE(provablyNonNegative(mul(LId, WgId)));
  EXPECT_TRUE(provablyPositive(N));
  // x mod y < y even with unbounded y.
  EXPECT_TRUE(provablyLessThan(mod(N, M), M));
  EXPECT_TRUE(provablyEqual(add(N, N), mul(cst(2), N)));
}

TEST_F(ArithTest, Substitution) {
  Expr E = add(mul(LId, cst(2)), N);
  Expr S = substitute(E, {{LId, cst(5)}, {Expr(N), cst(100)}});
  EXPECT_TRUE(equals(S, cst(110)));
}

TEST_F(ArithTest, Evaluation) {
  EvalContext Ctx;
  Ctx.VarValue = [&](const VarNode &V) -> int64_t {
    if (V.getId() == N->getId())
      return 16;
    if (V.getId() == LId->getId())
      return 5;
    return 0;
  };
  Expr E = add(mul(LId, N), intDiv(LId, cst(2)));
  EXPECT_EQ(evaluate(E, Ctx), 5 * 16 + 2);
}

TEST_F(ArithTest, PrinterBasics) {
  EXPECT_EQ(toString(add(mul(LId, N), WgId)), "wg_id + N * l_id");
  EXPECT_EQ(toString(intDiv(add(N, M), cst(2))), "(N + M) / 2");
  EXPECT_EQ(toString(mod(N, M)), "N % M");
  EXPECT_EQ(toString(pow(N, 2)), "N * N");
}

TEST_F(ArithTest, PrinterResolver) {
  std::string S = toString(Expr(LId), [](const VarNode &V) {
    return V.getName() == "l_id" ? "get_local_id(0)" : "";
  });
  EXPECT_EQ(S, "get_local_id(0)");
}

TEST_F(ArithTest, LookupIsOpaque) {
  Expr L = lookup(7, "neigh", add(LId, cst(1)));
  EXPECT_EQ(L->getKind(), ExprKind::Lookup);
  EXPECT_EQ(toString(L), "neigh[1 + l_id]");
  EvalContext Ctx;
  Ctx.VarValue = [&](const VarNode &) -> int64_t { return 2; };
  Ctx.LookupValue = [](unsigned Table, int64_t Index) -> int64_t {
    return Table * 100 + Index;
  };
  EXPECT_EQ(evaluate(L, Ctx), 703);
}

TEST_F(ArithTest, NodeCounting) {
  Expr E = add(mul(LId, N), mod(WgId, cst(4)));
  EXPECT_EQ(countDivMod(E), 1u);
  EXPECT_GE(countNodes(E), 5u);
}

//===----------------------------------------------------------------------===//
// Property tests: simplification preserves semantics.
//===----------------------------------------------------------------------===//

/// Deterministic small PRNG for reproducible property tests.
class Prng {
  uint64_t State;

public:
  explicit Prng(uint64_t Seed) : State(Seed) {}
  uint64_t next() {
    State ^= State << 13;
    State ^= State >> 7;
    State ^= State << 17;
    return State;
  }
  int64_t range(int64_t Lo, int64_t Hi) {
    return Lo + static_cast<int64_t>(next() % (Hi - Lo + 1));
  }
};

/// Builds a random expression over the given variables. Divisors are always
/// built positive (variable + 1 or positive constant) to stay in the
/// supported domain.
Expr randomExpr(Prng &Rng, const std::vector<Expr> &Vars, int Depth) {
  if (Depth == 0 || Rng.range(0, 3) == 0) {
    if (Rng.range(0, 1) == 0)
      return cst(Rng.range(0, 12));
    return Vars[Rng.next() % Vars.size()];
  }
  switch (Rng.range(0, 4)) {
  case 0:
    return add(randomExpr(Rng, Vars, Depth - 1),
               randomExpr(Rng, Vars, Depth - 1));
  case 1:
    return sub(randomExpr(Rng, Vars, Depth - 1),
               randomExpr(Rng, Vars, Depth - 1));
  case 2:
    return mul(randomExpr(Rng, Vars, Depth - 1),
               randomExpr(Rng, Vars, Depth - 1));
  case 3: {
    // Divisors must be provably positive: a positive constant or var + 1.
    Expr Den = Rng.range(0, 1) == 0
                   ? cst(Rng.range(1, 9))
                   : add(Vars[Rng.next() % Vars.size()], cst(1));
    return intDiv(randomExpr(Rng, Vars, Depth - 1), Den);
  }
  default: {
    Expr Den = Rng.range(0, 1) == 0
                   ? cst(Rng.range(1, 9))
                   : add(Vars[Rng.next() % Vars.size()], cst(1));
    return mod(randomExpr(Rng, Vars, Depth - 1), Den);
  }
  }
}

class ArithPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ArithPropertyTest, SimplificationPreservesValue) {
  Prng Rng(static_cast<uint64_t>(GetParam()) * 7919 + 13);
  std::vector<Expr> Vars = {var("a", cst(0), cst(100)),
                            var("b", cst(0), cst(100)),
                            var("c", cst(1), cst(64))};

  // Build the expression raw, then simplify, then compare on many
  // valuations consistent with the variable ranges.
  Expr Raw;
  {
    SimplifyGuard Guard(false);
    Raw = randomExpr(Rng, Vars, 4);
  }
  Expr Simple = simplified(Raw);

  for (int Trial = 0; Trial < 25; ++Trial) {
    std::vector<int64_t> Values = {Rng.range(0, 100), Rng.range(0, 100),
                                   Rng.range(1, 64)};
    EvalContext Ctx;
    Ctx.VarValue = [&](const VarNode &V) -> int64_t {
      for (size_t I = 0; I != Vars.size(); ++I)
        if (V.getId() ==
            static_cast<const VarNode *>(Vars[I].get())->getId())
          return Values[I];
      ADD_FAILURE() << "unbound variable " << V.getName();
      return 0;
    };
    ASSERT_EQ(evaluate(Raw, Ctx), evaluate(Simple, Ctx))
        << "raw: " << toString(Raw) << "\nsimplified: " << toString(Simple);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArithPropertyTest,
                         ::testing::Range(0, 200));

/// Property: constant bounds are sound — any valuation within variable
/// ranges yields a value inside [constLowerBound, constUpperBound].
TEST_P(ArithPropertyTest, BoundsAreSound) {
  Prng Rng(static_cast<uint64_t>(GetParam()) * 104729 + 7);
  std::vector<Expr> Vars = {var("a", cst(0), cst(50)),
                            var("b", cst(2), cst(9))};
  Expr E = randomExpr(Rng, Vars, 3);
  auto Lo = constLowerBound(E);
  auto Hi = constUpperBound(E);
  for (int Trial = 0; Trial < 20; ++Trial) {
    std::vector<int64_t> Values = {Rng.range(0, 50), Rng.range(2, 9)};
    EvalContext Ctx;
    Ctx.VarValue = [&](const VarNode &V) -> int64_t {
      for (size_t I = 0; I != Vars.size(); ++I)
        if (V.getId() ==
            static_cast<const VarNode *>(Vars[I].get())->getId())
          return Values[I];
      return 0;
    };
    int64_t Val = evaluate(E, Ctx);
    if (Lo) {
      ASSERT_LE(*Lo, Val) << toString(E);
    }
    if (Hi) {
      ASSERT_GE(*Hi, Val) << toString(E);
    }
  }
}


/// Constant folding near INT64 limits must wrap (two's complement), like
/// evaluate() and the generated OpenCL code — never trip signed-overflow UB.
TEST(ArithOverflowTest, ConstantFoldsWrapNearInt64Limits) {
  const int64_t Max = std::numeric_limits<int64_t>::max();
  const int64_t Min = std::numeric_limits<int64_t>::min();

  // Sum constant collection: INT64_MAX + 1 wraps to INT64_MIN.
  EXPECT_TRUE(isConstant(add(cst(Max), cst(1)), Min));
  // Coefficient collection on a shared key wraps too.
  auto X = var("x");
  const int64_t MaxPlus2 =
      static_cast<int64_t>(static_cast<uint64_t>(Max) + 2u);
  Expr Collected = add(mul(cst(Max), X), mul(cst(2), X));
  EXPECT_TRUE(isConstant(sub(Collected, mul(cst(MaxPlus2), X)), 0));

  // Product constant collection: INT64_MIN * -1 wraps back to INT64_MIN.
  EXPECT_TRUE(isConstant(mul(cst(Min), cst(-1)), Min));
  EXPECT_TRUE(isConstant(mul(cst(Max), cst(Max)), 1));

  // Power folding: (2^32)^2 wraps to 0 in 64 bits.
  EXPECT_TRUE(isConstant(pow(cst(int64_t(1) << 32), 2), 0));

  // Coefficient extraction inside a product term.
  const int64_t MaxTimes3 =
      static_cast<int64_t>(static_cast<uint64_t>(Max) * 3u);
  Expr Term = prod({cst(Max), cst(3), X});
  EXPECT_TRUE(isConstant(sub(Term, mul(cst(MaxTimes3), X)), 0));
}

TEST(ArithOverflowTest, BoundsRoundOutwardNearInt64Limits) {
  // Interval endpoints that leave the int64 range must widen (upper bounds
  // to +inf, lower bounds saturate), never overflow. Non-constant operands
  // keep the simplifier from folding before the bounds analysis runs.
  const int64_t Max = std::numeric_limits<int64_t>::max();
  auto N = var("n", cst(0), cst(Max));

  // Sum: upper endpoint Max + Max overflows upward -> unbounded above,
  // lower endpoint stays exact.
  Expr S = add(N, cst(Max));
  EXPECT_FALSE(constUpperBound(S).has_value());
  EXPECT_EQ(constLowerBound(S).value_or(-1), Max);
  EXPECT_TRUE(provablyNonNegative(S));

  // Product: Max * Max overflows upward; the lower bound rounds down to a
  // still-valid finite value, so non-negativity remains provable.
  Expr P = mul(add(N, cst(1)), cst(Max));
  EXPECT_FALSE(constUpperBound(P).has_value());
  EXPECT_TRUE(provablyNonNegative(P));

  // Power of a ranged base: (Max)^2 overflows upward.
  EXPECT_FALSE(constUpperBound(pow(N, 2)).has_value());
  EXPECT_TRUE(provablyNonNegative(pow(N, 2)));
}
} // namespace
