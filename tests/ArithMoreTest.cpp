//===- ArithMoreTest.cpp - Deeper arithmetic coverage -------------------------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exercises the corners of the simplifier that the benchmark suite
/// depends on: exact division of products/powers/sums, nested divisions,
/// mod-of-mod, distribution, the Lookup leaf, operator counting, and the
/// interactions between ranges and the proof procedures.
///
//===----------------------------------------------------------------------===//

#include "arith/ArithExpr.h"
#include "arith/Bounds.h"
#include "arith/Eval.h"
#include "arith/Printer.h"

#include <gtest/gtest.h>

using namespace lift::arith;

namespace {

class ArithMore : public ::testing::Test {
protected:
  std::shared_ptr<const VarNode> N = sizeVar("N");
  std::shared_ptr<const VarNode> M = sizeVar("M");
};

TEST_F(ArithMore, ExactDivisionOfProducts) {
  // (4*N*M) / (2*N) = 2*M.
  Expr T = prod({cst(4), N, M});
  Expr D = mul(cst(2), N);
  EXPECT_TRUE(equals(intDiv(T, D), mul(cst(2), M)));
  // N^3 / N^2 = N (power peeling, one factor at a time).
  EXPECT_TRUE(equals(intDiv(pow(N, 3), mul(N, N)), N));
}

TEST_F(ArithMore, ExactDivisionOfSums) {
  // (2N + 4M) / 2 = N + 2M.
  Expr T = add(mul(cst(2), N), mul(cst(4), M));
  EXPECT_TRUE(equals(intDiv(T, cst(2)), add(N, mul(cst(2), M))));
  // (2N + 3M) / 2 does not divide exactly and N+M-wise rule (2) splits
  // only the even part: 2N/2 = N stays, 3M/2 remains divided.
  Expr T2 = add(mul(cst(2), N), mul(cst(3), M));
  Expr R = intDiv(T2, cst(2));
  EXPECT_TRUE(equals(
      R, add(N, intDiv(mul(cst(3), M), cst(2)))));
}

TEST_F(ArithMore, NestedDivisionsFold) {
  // ((x / N) / M) = x / (N*M).
  Expr X = sizeVar("x");
  EXPECT_TRUE(equals(intDiv(intDiv(X, N), M), intDiv(X, mul(N, M))));
}

TEST_F(ArithMore, PolynomialExpansion) {
  // (N + 1) * (N + 1) = N^2 + 2N + 1.
  Expr E = mul(add(N, cst(1)), add(N, cst(1)));
  Expr Expected = add(add(pow(N, 2), mul(cst(2), N)), cst(1));
  EXPECT_TRUE(equals(E, Expected));
  // (N + M)^2 expands and collects symmetric terms.
  Expr F = mul(add(N, M), add(N, M));
  Expr FE = add(add(pow(N, 2), mul(cst(2), mul(N, M))), pow(M, 2));
  EXPECT_TRUE(equals(F, FE));
}

TEST_F(ArithMore, ModOfScaledSum) {
  // (a*N*M + b*N + c) mod N = c mod N when c >= 0.
  auto C = var("c", cst(0), cst(100));
  Expr E = mod(sum({prod({cst(3), N, M}), mul(cst(5), N), Expr(C)}), N);
  EXPECT_TRUE(equals(E, mod(Expr(C), N)));
}

TEST_F(ArithMore, DivisionWithRemainderKeepsResidual) {
  auto C = var("c", cst(0), cst(100));
  Expr E = intDiv(add(mul(M, N), Expr(C)), N);
  EXPECT_TRUE(equals(E, add(M, intDiv(Expr(C), N))));
}

TEST_F(ArithMore, CeilDivSymbolic) {
  // ceil(N / 8) = (N + 7) / 8.
  Expr E = ceilDiv(N, cst(8));
  EXPECT_TRUE(equals(E, intDiv(add(N, cst(7)), cst(8))));
}

TEST_F(ArithMore, LookupIsOpaqueToRules) {
  Expr L = lookup(3, "tbl", Expr(N));
  // Rules must not fire across a lookup: (tbl[N] * M) / M still divides
  // exactly (the lookup is a whole factor) ...
  EXPECT_TRUE(equals(intDiv(mul(L, M), M), L));
  // ... but nothing inside the lookup is rewritten.
  Expr L2 = lookup(3, "tbl", intDiv(N, cst(1)));
  EXPECT_TRUE(equals(L2, lookup(3, "tbl", Expr(N))));
}

TEST_F(ArithMore, CountOpsMatchesStructure) {
  // wg + M * l: one add, one mul.
  auto L = var("l", cst(0), cst(7));
  auto W = var("w", cst(0), cst(7));
  EXPECT_EQ(countOps(add(Expr(W), mul(M, Expr(L)))), 2u);
  EXPECT_EQ(countOps(Expr(N)), 0u);
  EXPECT_EQ(countOps(cst(42)), 0u);
  EXPECT_EQ(countOps(mod(N, M)), 1u);
  EXPECT_EQ(countOps(pow(N, 3)), 2u);
  {
    SimplifyGuard Guard(false);
    // ((w*8 + l) / 8) raw: mul, add, div = 3 ops.
    Expr Raw = intDiv(add(mul(Expr(W), cst(8)), Expr(L)), cst(8));
    EXPECT_EQ(countOps(Raw), 3u);
  }
}

TEST_F(ArithMore, SubstitutionIntoDivMod) {
  auto I = var("i", cst(0), cst(63));
  Expr E = add(intDiv(Expr(I), cst(8)), mod(Expr(I), cst(8)));
  Expr S = substitute(E, {{Expr(I), cst(13)}});
  EXPECT_TRUE(equals(S, cst(1 + 5)));
}

TEST_F(ArithMore, ProofsWithLinearCombinations) {
  auto I = var("i", cst(0), cst(15));
  auto J = var("j", cst(0), cst(3));
  // 4*i + j < 64.
  EXPECT_TRUE(provablyLessThan(add(mul(cst(4), Expr(I)), Expr(J)),
                               cst(64)));
  EXPECT_FALSE(provablyLessThan(add(mul(cst(4), Expr(I)), Expr(J)),
                                cst(63)));
}

TEST_F(ArithMore, ProofsThroughSymbolicBounds) {
  // i in [0, N/2 - 1] implies i < N (eliminate i at its symbolic upper
  // bound, then prove N - (N/2 - 1) - 1 >= 0 ... which needs N/2 <= N).
  auto I = var("i", cst(0), sub(intDiv(N, cst(2)), cst(1)));
  EXPECT_TRUE(provablyLessThan(Expr(I), N));
}

TEST_F(ArithMore, ModBoundedByDivisorEvenWhenSymbolic) {
  Expr E = mod(N, M);
  EXPECT_TRUE(provablyLessThan(E, M));
  EXPECT_TRUE(provablyNonNegative(E));
  // And mod < anything >= the divisor.
  EXPECT_TRUE(provablyLessThan(E, add(M, cst(5))));
}

TEST_F(ArithMore, DistributionCancelsAcrossSubtraction) {
  // N*(M+1) - N*M = N.
  Expr E = sub(mul(N, add(M, cst(1))), mul(N, M));
  EXPECT_TRUE(equals(E, N));
}

TEST_F(ArithMore, EvalAgreesWithCSemantics) {
  // For non-negative operands, floor division equals C division.
  EvalContext Ctx;
  for (int64_t A : {0, 1, 7, 8, 100}) {
    for (int64_t B : {1, 2, 7, 16}) {
      EXPECT_EQ(evaluate(intDiv(cst(A), cst(B)), Ctx), A / B);
      EXPECT_EQ(evaluate(mod(cst(A), cst(B)), Ctx), A % B);
    }
  }
}

TEST_F(ArithMore, PrinterPrecedence) {
  auto I = var("i", cst(0), cst(7));
  {
    SimplifyGuard Guard(false);
    // Multiplication of a sum needs parentheses (raw mode: the
    // simplifier would otherwise distribute).
    EXPECT_EQ(toString(mul(add(Expr(I), cst(1)), N)), "(i + 1) * N");
    // Right operand of / gets parenthesized when compound.
    Expr E = intDiv(Expr(N), mul(cst(2), Expr(M)));
    EXPECT_EQ(toString(E), "N / (2 * M)");
    Expr F = mod(add(Expr(N), cst(1)), Expr(M));
    EXPECT_EQ(toString(F), "(N + 1) % M");
  }
}

TEST_F(ArithMore, CompareIsTotalAndConsistent) {
  std::vector<Expr> Samples = {
      cst(0),         cst(5),       Expr(N),           Expr(M),
      add(N, M),      mul(N, M),    intDiv(N, M),      mod(N, M),
      pow(N, 2),      lookup(1, "t", Expr(N)),
  };
  for (const Expr &A : Samples)
    for (const Expr &B : Samples) {
      int AB = compare(A, B), BA = compare(B, A);
      EXPECT_EQ(AB == 0, BA == 0);
      if (AB != 0) {
        EXPECT_EQ(AB > 0, BA < 0);
      }
      EXPECT_EQ(compare(A, A), 0);
    }
}

} // namespace
