//===- BenchSuiteTest.cpp - Per-benchmark validation tests ---------------------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs every Table 1 benchmark (small size) as an individual test:
/// the hand-written reference and the Lift-generated kernel at full
/// optimization must both validate, and the generated kernel must stay
/// within a sane cost envelope of the reference. Mirrors the fig8 harness
/// with per-benchmark failure granularity.
///
//===----------------------------------------------------------------------===//

#include "suite/Benchmark.h"

#include <gtest/gtest.h>

using namespace lift;
using namespace lift::bench;

namespace {

class BenchSuiteTest : public ::testing::TestWithParam<int> {};

TEST_P(BenchSuiteTest, ReferenceAndGeneratedValidate) {
  std::vector<BenchmarkCase> All = allBenchmarks(/*Large=*/false);
  ASSERT_LT(static_cast<size_t>(GetParam()), All.size());
  BenchmarkCase &Case = All[static_cast<size_t>(GetParam())];

  Outcome Ref = runReference(Case);
  EXPECT_TRUE(Ref.Valid) << Case.Name << " reference max rel err "
                         << Ref.MaxError;

  Outcome Gen = runLift(Case, OptConfig::Full);
  EXPECT_TRUE(Gen.Valid) << Case.Name << " generated max rel err "
                         << Gen.MaxError;

  // The generated kernel must be within 2x of the reference cost at full
  // optimization (Figure 8 envelope) and the ablation ordering must hold.
  double RelFull = Ref.Cost.cost() / Gen.Cost.cost();
  EXPECT_GT(RelFull, 0.5) << Case.Name;

  Outcome None = runLift(Case, OptConfig::None);
  EXPECT_TRUE(None.Valid) << Case.Name;
  EXPECT_GE(None.Cost.cost(), Gen.Cost.cost() * 0.999)
      << Case.Name << ": optimizations must not make the kernel slower";
}

std::string benchName(const ::testing::TestParamInfo<int> &I) {
  static const char *Names[] = {"NBodyNvidia", "NBodyAmd", "MD",
                                "KMeans",      "NN",       "MriQ",
                                "Convolution", "Atax",     "Gemv",
                                "Gesummv",     "MMNvidia", "MMAmd"};
  return Names[I.param];
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, BenchSuiteTest,
                         ::testing::Range(0, 12), benchName);

} // namespace
