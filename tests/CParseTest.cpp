//===- CParseTest.cpp - Tests for the C-subset parser and printer -------------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "cast/CPrinter.h"
#include "cparse/CParser.h"
#include "support/Casting.h"
#include "support/Diagnostics.h"

#include <gtest/gtest.h>

using namespace lift;
using namespace lift::c;
using namespace lift::cparse;

namespace {

ParseContext contextWith(std::vector<std::pair<std::string, CTypePtr>> Ps) {
  ParseContext Ctx;
  for (auto &[Name, Ty] : Ps)
    Ctx.Params.push_back(std::make_shared<CVar>(Name, Ty));
  return Ctx;
}

std::string roundTripExpr(const std::string &Src, const ParseContext &Ctx) {
  return printCExpr(parseExpression(Src, Ctx));
}

TEST(CParseTest, Literals) {
  ParseContext Ctx;
  EXPECT_EQ(roundTripExpr("42", Ctx), "42");
  EXPECT_EQ(roundTripExpr("1.5f", Ctx), "1.5f");
  EXPECT_EQ(roundTripExpr("2.0", Ctx), "2.0");
  EXPECT_EQ(roundTripExpr("3.0e2f", Ctx), "300.0f");
}

TEST(CParseTest, Precedence) {
  auto Ctx = contextWith({{"a", floatTy()}, {"b", floatTy()},
                          {"c", floatTy()}});
  EXPECT_EQ(roundTripExpr("a + b * c", Ctx), "a + b * c");
  EXPECT_EQ(roundTripExpr("(a + b) * c", Ctx), "(a + b) * c");
  EXPECT_EQ(roundTripExpr("a - b - c", Ctx), "a - b - c");
  EXPECT_EQ(roundTripExpr("a < b && b < c", Ctx), "a < b && b < c");
  EXPECT_EQ(roundTripExpr("a ? b : c", Ctx), "a ? b : c");
}

TEST(CParseTest, UnaryAndCast) {
  auto Ctx = contextWith({{"a", floatTy()}});
  EXPECT_EQ(roundTripExpr("-a", Ctx), "-a");
  EXPECT_EQ(roundTripExpr("!a", Ctx), "!a");
  EXPECT_EQ(roundTripExpr("(int)a", Ctx), "(int)a");
}

TEST(CParseTest, MemberAndSubscript) {
  auto Ctx = contextWith(
      {{"v", vectorTy(CScalarKind::Float, 4)},
       {"p", pointerTy(floatTy(), CAddrSpace::Global)},
       {"i", intTy()}});
  EXPECT_EQ(roundTripExpr("v.x + v.w", Ctx), "v.x + v.w");
  EXPECT_EQ(roundTripExpr("p[i + 1]", Ctx), "p[i + 1]");
  EXPECT_EQ(roundTripExpr("p[p[i]]", Ctx), "p[p[i]]");
}

TEST(CParseTest, VectorConstructor) {
  auto Ctx = contextWith({{"a", floatTy()}});
  EXPECT_EQ(roundTripExpr("(float4)(a, a, a, 0.0f)", Ctx),
            "(float4)(a, a, a, 0.0f)");
}

TEST(CParseTest, StructLiteral) {
  CTypePtr S = structTy("Pair", {{"_0", floatTy()}, {"_1", intTy()}});
  ParseContext Ctx;
  Ctx.NamedTypes["Pair"] = S;
  Ctx.Params.push_back(std::make_shared<CVar>("x", floatTy()));
  EXPECT_EQ(roundTripExpr("(Pair){x, 3}", Ctx), "(Pair){x, 3}");
}

TEST(CParseTest, Calls) {
  auto Ctx = contextWith({{"a", floatTy()}, {"b", floatTy()}});
  EXPECT_EQ(roundTripExpr("sqrt(a * a + b * b)", Ctx),
            "sqrt(a * a + b * b)");
  EXPECT_EQ(roundTripExpr("fmin(a, b)", Ctx), "fmin(a, b)");
}

TEST(CParseTest, FunctionBodyStatements) {
  auto Ctx = contextWith({{"a", floatTy()}, {"b", floatTy()}});
  BlockPtr B = parseFunctionBody(
      "float t = a * 2.0f; if (t < b) { t = b; } return t;", Ctx);
  ASSERT_EQ(B->getStmts().size(), 3u);
  EXPECT_EQ(B->getStmts()[0]->getKind(), CStmtKind::VarDecl);
  EXPECT_EQ(B->getStmts()[1]->getKind(), CStmtKind::If);
  EXPECT_EQ(B->getStmts()[2]->getKind(), CStmtKind::Return);
}

TEST(CParseTest, CompoundAssignAndIncrement) {
  auto Ctx = contextWith({{"a", floatTy()}});
  BlockPtr B = parseFunctionBody("a += 2.0f; a *= a; return a;", Ctx);
  ASSERT_EQ(B->getStmts().size(), 3u);
  const auto *A0 = cast<Assign>(B->getStmts()[0].get());
  EXPECT_EQ(printCExpr(A0->getRhs()), "a + 2.0f");
}

TEST(CParseTest, KernelModule) {
  ParseContext Ctx;
  CModule M = parseModule(R"(
float helper(float x) {
  return x * x;
}

kernel void k(global float *in, global float *out, int N) {
  local float tmp[64];
  int g = get_global_id(0);
  for (int i = 0; i < N; i++) {
    out[i] = helper(in[i]);
  }
  barrier(CLK_LOCAL_MEM_FENCE);
}
)",
                          Ctx);
  ASSERT_NE(M.Kernel, nullptr);
  EXPECT_TRUE(M.Kernel->IsKernel);
  EXPECT_EQ(M.Kernel->Params.size(), 3u);
  EXPECT_EQ(M.Functions.size(), 1u);
  EXPECT_EQ(M.Functions[0]->Name, "helper");
  // Local array declaration parsed with size and address space.
  const auto *D = cast<VarDecl>(M.Kernel->Body->getStmts()[0].get());
  EXPECT_EQ(D->getAddrSpace(), CAddrSpace::Local);
  EXPECT_TRUE(arith::isConstant(D->getArraySize(), 64));
}

TEST(CParseTest, ForLoopVariants) {
  auto Ctx = contextWith({{"n", intTy()},
                          {"p", pointerTy(floatTy(), CAddrSpace::Global)}});
  BlockPtr B = parseFunctionBody(R"(
    for (int i = 0; i < n; i++) { p[i] = 0.0f; }
    for (int j = 0; j < n; j += 2) { p[j] = 1.0f; }
  )",
                                 Ctx);
  ASSERT_EQ(B->getStmts().size(), 2u);
  const auto *F0 = cast<For>(B->getStmts()[0].get());
  EXPECT_EQ(printCExpr(F0->getStep()), "i + 1");
  const auto *F1 = cast<For>(B->getStmts()[1].get());
  EXPECT_EQ(printCExpr(F1->getStep()), "j + 2");
}

TEST(CParseTest, BarrierFlags) {
  ParseContext Ctx;
  BlockPtr B = parseFunctionBody(
      "barrier(CLK_LOCAL_MEM_FENCE | CLK_GLOBAL_MEM_FENCE);", Ctx);
  const auto *Bar = cast<Barrier>(B->getStmts()[0].get());
  EXPECT_TRUE(Bar->hasLocalFence());
  EXPECT_TRUE(Bar->hasGlobalFence());
}

TEST(CParseTest, CommentsAreSkipped) {
  auto Ctx = contextWith({{"a", floatTy()}});
  BlockPtr B = parseFunctionBody(
      "// line comment\nreturn a; /* block */", Ctx);
  EXPECT_EQ(B->getStmts().size(), 1u);
}

TEST(CParseTest, ModulePrintParseRoundTrip) {
  // printModule of a parsed module must parse back to the same structure.
  const char *Src = R"(
float helper(float x, float y) {
  float t = x * y + 1.0f;
  if (t < 0.0f) {
    t = -t;
  }
  return sqrt(t);
}

kernel void k(global float *in, global float *out, int N) {
  local float tmp[32];
  int l = get_local_id(0);
  int g = get_global_id(0);
  tmp[l] = in[g];
  barrier(CLK_LOCAL_MEM_FENCE);
  for (int i = l; i < N; i += 32) {
    out[i] = helper(tmp[l], 2.0f);
  }
}
)";
  ParseContext Ctx;
  CModule M1 = parseModule(Src, Ctx);
  std::string Printed = printModule(M1);
  CModule M2 = parseModule(Printed, Ctx);
  // Idempotence: printing the re-parsed module gives identical text.
  EXPECT_EQ(printModule(M2), Printed);
  ASSERT_NE(M2.Kernel, nullptr);
  EXPECT_EQ(M2.Kernel->Params.size(), 3u);
  EXPECT_EQ(M2.Functions.size(), 1u);
}

TEST(CParseTest, UnknownIdentifierIsDiagnosed) {
  ParseContext Ctx;
  try {
    parseExpression("nope + 1", Ctx);
    FAIL() << "expected a diagnostic";
  } catch (const lift::DiagnosticError &E) {
    EXPECT_EQ(E.Diag.Code, lift::DiagCode::CodegenUserFunSyntax);
    EXPECT_NE(E.Diag.Message.find("unknown identifier"), std::string::npos)
        << E.Diag.render();
  }
}

TEST(CParseTest, MalformedInputIsDiagnosed) {
  ParseContext Ctx;
  try {
    parseFunctionBody("return 1 +;", Ctx);
    FAIL() << "expected a diagnostic";
  } catch (const lift::DiagnosticError &E) {
    EXPECT_EQ(E.Diag.Code, lift::DiagCode::CodegenUserFunSyntax);
    EXPECT_NE(E.Diag.Message.find("expected expression"), std::string::npos)
        << E.Diag.render();
  }
}

} // namespace
