//===- CodegenTest.cpp - Structural tests of generated OpenCL -----------------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Checks structural properties of generated kernels: the Figure 7 shape
/// of the dot product, control-flow simplification decisions, barrier
/// counts, kernel parameters, and the Figure 6 index ablation.
///
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace lift;
using namespace lift::ir;
using namespace lift::ir::dsl;
using namespace lift::test;

namespace {

size_t countOccurrences(const std::string &Haystack,
                        const std::string &Needle) {
  size_t Count = 0, Pos = 0;
  while ((Pos = Haystack.find(Needle, Pos)) != std::string::npos) {
    ++Count;
    Pos += Needle.size();
  }
  return Count;
}

/// Listing 1's partial dot product (the paper's running example).
LambdaPtr partialDotProgram() {
  auto N = arith::sizeVar("N");
  ParamPtr X = param("x", arrayOf(float32(), N));
  ParamPtr Y = param("y", arrayOf(float32(), N));
  FunDeclPtr MAdd = prelude::multAndSumUpFun();
  FunDeclPtr Add = prelude::addFun();
  FunDeclPtr IdF = prelude::idFloatFun();
  ExprPtr Body = pipe(
      call(zip(), {X, Y}), split(128), mapWrg(0, fun([&](ExprPtr Chunk) {
        return pipe(
            Chunk, split(2), mapLcl(0, fun([&](ExprPtr Pair) {
              return pipe(call(reduceSeq(MAdd), {litFloat(0.0f), Pair}),
                          toLocal(mapSeq(IdF)));
            })),
            join(), iterate(6, fun([&](ExprPtr Arr) {
                      return pipe(Arr, split(2),
                                  mapLcl(0, fun([&](ExprPtr Two) {
                                    return pipe(call(reduceSeq(Add),
                                                     {litFloat(0.0f), Two}),
                                                toLocal(mapSeq(IdF)));
                                  })),
                                  join());
                    })),
            split(1), toGlobal(mapLcl(0, mapSeq(IdF))), join());
      })),
      join());
  return lambda({X, Y}, Body);
}

codegen::CompilerOptions dotOptions() {
  codegen::CompilerOptions O;
  O.GlobalSize = {4096, 1, 1};
  O.LocalSize = {64, 1, 1};
  return O;
}

TEST(CodegenTest, Figure7DotProductStructure) {
  codegen::CompiledKernel K = codegen::compile(partialDotProgram(),
                                               dotOptions());
  const std::string &Src = K.Source;

  // The work-group loop over N/128 chunks is kept (unknown trip count).
  EXPECT_NE(Src.find("N / 128"), std::string::npos);
  // Double buffering of the iterate.
  EXPECT_NE(Src.find("local float"), std::string::npos);
  EXPECT_EQ(countOccurrences(Src, "barrier("), 4u);
  // The iterate guard if (l_id < size/2) — runtime size halving.
  EXPECT_NE(Src.find("/ 2"), std::string::npos);
  // A guarded single write back to global memory.
  EXPECT_NE(Src.find("< (1)"), std::string::npos);
  // The combined multiply-accumulate from the zip (Figure 7 line 12).
  EXPECT_NE(Src.find("multAndSumUp"), std::string::npos);
}

TEST(CodegenTest, DotProductKernelParameters) {
  codegen::CompiledKernel K = codegen::compile(partialDotProgram(),
                                               dotOptions());
  // x, y, out, N.
  ASSERT_EQ(K.Params.size(), 4u);
  EXPECT_EQ(K.Params[0].Var->Name, "x");
  EXPECT_EQ(K.Params[1].Var->Name, "y");
  EXPECT_TRUE(K.Params[2].IsOutput);
  EXPECT_TRUE(K.Params[3].IsSizeParam);
  EXPECT_EQ(K.Params[3].Var->Name, "N");
}

TEST(CodegenTest, ControlFlowSimplificationRemovesExactLoops) {
  // mapLcl over exactly localSize elements: no loop, no guard.
  auto N = arith::sizeVar("N");
  ParamPtr X = param("x", arrayOf(float32(), N));
  LambdaPtr P = lambda({X}, pipe(ExprPtr(X), split(64),
                                 mapWrg(mapLcl(prelude::squareFun())),
                                 join()));
  codegen::CompilerOptions O;
  O.GlobalSize = {256, 1, 1};
  O.LocalSize = {64, 1, 1};
  codegen::CompiledKernel K = codegen::compile(P, O);
  // One loop for the work groups; the mapLcl collapses entirely.
  EXPECT_EQ(K.LoopsEmitted, 1u);
  EXPECT_GE(K.LoopsSimplified, 1u);
  EXPECT_EQ(K.Source.find("if (l_id"), std::string::npos);
}

TEST(CodegenTest, ControlFlowSimplificationGuardsPartialLoops) {
  // mapLcl over fewer elements than threads: an if-guard, no loop.
  auto N = arith::sizeVar("N");
  ParamPtr X = param("x", arrayOf(float32(), N));
  LambdaPtr P = lambda({X}, pipe(ExprPtr(X), split(32),
                                 mapWrg(mapLcl(prelude::squareFun())),
                                 join()));
  codegen::CompilerOptions O;
  O.GlobalSize = {256, 1, 1};
  O.LocalSize = {64, 1, 1};
  codegen::CompiledKernel K = codegen::compile(P, O);
  EXPECT_NE(K.Source.find("if (l_id_0 < "), std::string::npos);
}

TEST(CodegenTest, DisabledCfsKeepsAllLoops) {
  auto N = arith::sizeVar("N");
  ParamPtr X = param("x", arrayOf(float32(), N));
  LambdaPtr P = lambda({X}, pipe(ExprPtr(X), split(64),
                                 mapWrg(mapLcl(prelude::squareFun())),
                                 join()));
  codegen::CompilerOptions O;
  O.GlobalSize = {256, 1, 1};
  O.LocalSize = {64, 1, 1};
  O.ControlFlowSimplification = false;
  codegen::CompiledKernel K = codegen::compile(P, O);
  EXPECT_EQ(K.LoopsEmitted, 2u);
  EXPECT_EQ(K.LoopsSimplified, 0u);
}

TEST(CodegenTest, Figure6IndexAblation) {
  // Matrix transposition via join/gather/split: with simplification the
  // access is the compact form of Figure 6 line 3; without, the raw
  // composition of line 1 (several div/mod per access).
  auto N = arith::sizeVar("N");
  auto M = arith::sizeVar("M");
  auto MakeProgram = [&]() {
    ParamPtr X = param("x", array2D(float32(), N, M));
    return lambda({X}, pipe(ExprPtr(X), join(),
                            gather(transposeIndex(N, M)), split(N),
                            mapWrg(mapLcl(prelude::idFloatFun()))));
  };
  codegen::CompilerOptions O;
  O.GlobalSize = {256, 1, 1};
  O.LocalSize = {16, 1, 1};

  codegen::CompiledKernel Simplified = codegen::compile(MakeProgram(), O);
  EXPECT_NE(Simplified.Source.find("x[wg_id_0_0 + M * l_id_0_1]"),
            std::string::npos)
      << Simplified.Source;

  O.ArrayAccessSimplification = false;
  codegen::CompiledKernel Raw = codegen::compile(MakeProgram(), O);
  EXPECT_GT(countOccurrences(Raw.Source, "%"), 1u);
  EXPECT_GT(Raw.Source.size(), Simplified.Source.size());
}

TEST(CodegenTest, BarrierEliminationTogglesEmission) {
  auto N = arith::sizeVar("N");
  auto MakeProgram = [&]() {
    ParamPtr X = param("x", arrayOf(float32(), N));
    return lambda({X},
                  pipe(ExprPtr(X), split(16), mapWrg(fun([&](ExprPtr C) {
                         return pipe(C,
                                     toLocal(mapLcl(prelude::idFloatFun())),
                                     toGlobal(mapLcl(prelude::squareFun())));
                       })),
                       join()));
  };
  codegen::CompilerOptions O;
  O.GlobalSize = {64, 1, 1};
  O.LocalSize = {16, 1, 1};

  codegen::CompiledKernel With = codegen::compile(MakeProgram(), O);
  EXPECT_EQ(countOccurrences(With.Source, "barrier("), 1u);
  EXPECT_EQ(With.BarriersEliminated, 1u);

  O.BarrierElimination = false;
  codegen::CompiledKernel Without = codegen::compile(MakeProgram(), O);
  EXPECT_EQ(countOccurrences(Without.Source, "barrier("), 2u);
}

TEST(CodegenTest, GlobalFenceForGlobalWrites) {
  auto N = arith::sizeVar("N");
  ParamPtr X = param("x", arrayOf(float32(), N));
  LambdaPtr P = lambda(
      {X}, pipe(ExprPtr(X), split(16),
                mapWrg(toGlobal(mapLcl(prelude::squareFun()))), join()));
  codegen::CompilerOptions O;
  O.GlobalSize = {64, 1, 1};
  O.LocalSize = {16, 1, 1};
  codegen::CompiledKernel K = codegen::compile(P, O);
  EXPECT_NE(K.Source.find("CLK_GLOBAL_MEM_FENCE"), std::string::npos);
}

TEST(CodegenTest, VectorizedUserFunctionIsCloned) {
  auto N = arith::sizeVar("N");
  ParamPtr X = param("x", arrayOf(float32(), N));
  LambdaPtr P = lambda(
      {X}, pipe(ExprPtr(X), asVector(4), mapGlb(fun([&](ExprPtr V) {
              return call(mapVec(prelude::squareFun()), {V});
            })),
            asScalar()));
  codegen::CompilerOptions O;
  O.GlobalSize = {16, 1, 1};
  O.LocalSize = {4, 1, 1};
  codegen::CompiledKernel K = codegen::compile(P, O);
  EXPECT_NE(K.Source.find("float4 sq_v4(float4 x)"), std::string::npos);
  EXPECT_NE(K.Source.find("vload4"), std::string::npos);
  EXPECT_NE(K.Source.find("vstore4"), std::string::npos);
}

TEST(CodegenTest, CompilingTwiceIsIndependent) {
  // compile() clones: two compilations of one program must not interfere.
  LambdaPtr P = partialDotProgram();
  codegen::CompiledKernel A = codegen::compile(P, dotOptions());
  codegen::CompilerOptions O = codegen::CompilerOptions::noOptimizations();
  O.GlobalSize = {4096, 1, 1};
  O.LocalSize = {64, 1, 1};
  codegen::CompiledKernel B = codegen::compile(P, O);
  codegen::CompiledKernel A2 = codegen::compile(P, dotOptions());
  EXPECT_EQ(A.Source, A2.Source);
  EXPECT_NE(A.Source, B.Source);
}

TEST(CodegenTest, ScatterOnReadPathIsRejected) {
  auto N = arith::sizeVar("N");
  ParamPtr X = param("x", arrayOf(float32(), N));
  // gather on the write path is not invertible.
  LambdaPtr P = lambda({X}, pipe(ExprPtr(X), mapGlb(prelude::squareFun()),
                                 gather(reverseIndex()),
                                 mapGlb(prelude::squareFun())));
  codegen::CompilerOptions O;
  O.GlobalSize = {16, 1, 1};
  O.LocalSize = {4, 1, 1};
  // This program is fine: gather is on the read path of the second map.
  codegen::CompiledKernel K = codegen::compile(P, O);
  EXPECT_FALSE(K.Source.empty());
}

} // namespace
