//===- CrashFuzzTest.cpp - Crash-resilience fuzzing of the frontend -------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Crash-resilience fuzzing of the diagnostics pipeline. Three tiers:
///
///  0. Regression corpus: every input that ever crashed the pipeline is
///     persisted under tests/corpus/ and replayed first, before any
///     random generation, so fixed bugs fail deterministically.
///
///  1. Corpus mutation over IL text: seeded from real programs (the
///     examples and the frontend test listings), mutated with byte flips,
///     splices, token swaps, extreme-number substitution and truncation.
///     Invariant: parseILChecked / verifyChecked / compileChecked either
///     succeed or record a diagnostic — no abort, no escaped exception.
///
///  2. Random well-typed IR: layout, reduction (reduceSeq), tuple
///     (zip/get) and vector (asVector/mapVec/asScalar) pipelines built
///     with the shared generator (Generator.h, also the input source of
///     the rule-soundness tier), here compiled under --verify-each and
///     executed under guarded memory, race checking and execution limits
///     (ocl::ExecLimits). Invariant: a well-typed program always compiles
///     cleanly and runs with zero findings and no tripped limit.
///
///  3. Pipeline graphs (src/graph): mutated .liftg sources never abort
///     the graph parser/validator/executor, and generated well-formed
///     two-stage pipelines always validate, run cleanly under full
///     dynamic checking, and are bit-identical across thread counts.
///
/// Runs in the "check" tier so the sanitized build (LIFT_SANITIZE=ON,
/// tools/ci-sanitize.sh) executes every case under ASan/UBSan; the
/// combined corpus is >12k mutated inputs and >1k random programs.
///
//===----------------------------------------------------------------------===//

#include "Generator.h"
#include "TestHelpers.h"
#include "frontend/ILParser.h"
#include "graph/GraphExec.h"
#include "ir/Prelude.h"
#include "passes/Verify.h"
#include "support/Diagnostics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

using namespace lift;
using namespace lift::ir;
using namespace lift::ir::dsl;
using namespace lift::test;

namespace {

//===----------------------------------------------------------------------===//
// Corpus
//===----------------------------------------------------------------------===//

/// Seed corpus: valid programs spanning the IL surface (user functions,
/// work-group nesting, iterate, zip, gather, slide, vectors, tuples, size
/// arithmetic) plus a few near-miss invalid ones so mutation starts close
/// to interesting error paths.
const char *Corpus[] = {
    // examples/il/square.lift
    R"(def sq(x: float): float = "return x * x;"
fun(x: [float]N) => mapGlb0(sq)(x))",

    // examples/il/dot.lift (Listing 1 of the paper)
    R"(def multAndSumUp(acc: float, xy: (float, float)): float =
  "return acc + xy._0 * xy._1;"
def add(a: float, b: float): float = "return a + b;"
def idF(x: float): float = "return x;"
fun(x: [float]N, y: [float]N) =>
  join(mapWrg0(\(chunk) ->
    join(toGlobal(mapLcl0(mapSeq(idF)))(
      split(1)(
        iterate(6, \(arr) ->
          join(mapLcl0(\(two) ->
            toLocal(mapSeq(idF))(reduceSeq(add)(0.0f, two)))(
            split(2)(arr))))(
          join(mapLcl0(\(pair) ->
            toLocal(mapSeq(idF))(reduceSeq(multAndSumUp)(0.0f, pair)))(
            split(2)(chunk))))))))(
    split(128)(zip(x, y)))))",

    // Work-group copy through local memory.
    R"(def sq(x: float): float = "return x * x;"
def idF(x: float): float = "return x;"
fun(x: [float]N) =>
  join(mapWrg0(\(chunk) ->
    toGlobal(mapLcl0(sq))(toLocal(mapLcl0(idF))(chunk)))(
    split(16)(x))))",

    // Let-style lambda binding.
    R"(def sq(x: float): float = "return x * x;"
def idF(x: float): float = "return x;"
fun(x: [float]N) =>
  join(mapWrg0(\(chunk) ->
    (\(copied) -> toGlobal(mapLcl0(sq))(copied))(
      toLocal(mapLcl0(idF))(chunk)))(
    split(16)(x))))",

    // Gather / transpose / 2D types / size arithmetic.
    R"(def idF(x: float): float = "return x;"
fun(x: [float]N) => mapGlb0(idF)(gather(reverse)(x)))",
    R"(def sq(x: float): float = "return x * x;"
fun(x: [[float]M]N) => mapGlb0(mapSeq(sq))(transpose(x)))",
    R"(def sq(x: float): float = "return x * x;"
fun(x: [float]N*M, y: [float](N+2)) => mapGlb0(sq)(x))",

    // Slide stencil with a sequential reduction.
    R"(def add(a: float, b: float): float = "return a + b;"
def idF(x: float): float = "return x;"
fun(x: [float]N) =>
  join(mapGlb0(\(w) ->
    toGlobal(mapSeq(idF))(reduceSeq(add)(0.0f, w)))(
    slide(3, 1)(x))))",

    // Tuples and zip3.
    R"(def f(p: (float, int)): float = "return p._0;"
fun(a: [[float]M]N, b: [float4]K, c: [(float, int)]N) => mapGlb0(f)(c))",

    // Vectorization combinators.
    R"(def sq(x: float): float = "return x * x;"
fun(x: [float]N) => asScalar(mapGlb0(mapVec(sq))(asVector(4)(x))))",

    // Near-miss invalid seeds: unknown function, bad type, missing body.
    "fun(x: [float]N) => bogus(x)",
    "fun(x: [whatever]N) => x",
    "def f(x: float): float = 42\nfun(x: [float]N) => mapSeq(f)(x)",
};
constexpr size_t CorpusSize = sizeof(Corpus) / sizeof(Corpus[0]);

/// Tokens the token-swap mutator exchanges: swapping any two of these
/// produces near-miss programs that stress one layer at a time.
const char *SwapTokens[] = {
    "mapGlb0",  "mapWrg0", "mapLcl0", "mapSeq", "mapVec",   "reduceSeq",
    "iterate",  "split",   "join",    "zip",    "transpose", "gather",
    "scatter",  "slide",   "toLocal", "toGlobal", "toPrivate", "asVector",
    "asScalar", "float",   "int",     "float4", "fun",       "def",
    "=>",       "->",      "(",       ")",      "[",         "]",
};
constexpr size_t SwapTokenCount = sizeof(SwapTokens) / sizeof(SwapTokens[0]);

/// Numbers that stress the arithmetic layer when substituted for a literal.
const char *ExtremeNumbers[] = {
    "0",  "1",  "-1", "9223372036854775807", "-9223372036854775808",
    "4294967296", "1048576", "999999999999", "-17",
};
constexpr size_t ExtremeNumberCount =
    sizeof(ExtremeNumbers) / sizeof(ExtremeNumbers[0]);

std::string mutate(std::string S, Prng &Rng) {
  int Edits = static_cast<int>(Rng.range(1, 4));
  for (int E = 0; E != Edits; ++E) {
    if (S.empty())
      S = Corpus[Rng.next() % CorpusSize];
    size_t Pos = Rng.next() % S.size();
    switch (Rng.range(0, 6)) {
    case 0: // byte flip
      S[Pos] = static_cast<char>(Rng.range(1, 126));
      break;
    case 1: // insert a random byte
      S.insert(Pos, 1, static_cast<char>(Rng.range(1, 126)));
      break;
    case 2: { // delete a span
      size_t Len = static_cast<size_t>(Rng.range(1, 8));
      S.erase(Pos, Len);
      break;
    }
    case 3: // truncate
      S.resize(Pos);
      break;
    case 4: { // splice with another corpus entry
      std::string Other = Corpus[Rng.next() % CorpusSize];
      S = S.substr(0, Pos) + Other.substr(Rng.next() % Other.size());
      break;
    }
    case 5: { // token swap
      const char *From = SwapTokens[Rng.next() % SwapTokenCount];
      const char *To = SwapTokens[Rng.next() % SwapTokenCount];
      size_t At = S.find(From, Pos);
      if (At == std::string::npos)
        At = S.find(From);
      if (At != std::string::npos)
        S = S.substr(0, At) + To + S.substr(At + std::strlen(From));
      break;
    }
    case 6: { // replace a digit run with an extreme number
      size_t D = S.find_first_of("0123456789", Pos);
      if (D == std::string::npos)
        D = S.find_first_of("0123456789");
      if (D != std::string::npos) {
        size_t End = S.find_first_not_of("0123456789", D);
        if (End == std::string::npos)
          End = S.size();
        S = S.substr(0, D) + ExtremeNumbers[Rng.next() % ExtremeNumberCount] +
            S.substr(End);
      }
      break;
    }
    }
  }
  return S;
}

//===----------------------------------------------------------------------===//
// Persisted regression corpus
//===----------------------------------------------------------------------===//

/// Runs one input through the documented safe pipeline and asserts the
/// crash-resilience invariant: success, or diagnostics — never an abort
/// or an escaped exception.
void expectNoCrash(const std::string &Input, const std::string &Origin) {
  DiagnosticEngine Engine(8);
  try {
    Expected<frontend::ParsedProgram> P =
        frontend::parseILChecked(Input, Engine);
    if (!P) {
      ASSERT_TRUE(Engine.hasErrors())
          << Origin << ": parse failed without a diagnostic; input:\n"
          << Input;
      return;
    }
    if (!passes::verifyChecked(P->Program, Engine, "after parsing")) {
      ASSERT_TRUE(Engine.hasErrors())
          << Origin << ": verify failed without a diagnostic; input:\n"
          << Input;
      return;
    }
    codegen::CompilerOptions Opts;
    Opts.GlobalSize = {16, 1, 1};
    Opts.LocalSize = {4, 1, 1};
    Opts.VerifyEach = true;
    Expected<codegen::CompiledKernel> K =
        codegen::compileChecked(P->Program, Opts, Engine);
    if (!K) {
      ASSERT_TRUE(Engine.hasErrors())
          << Origin << ": compile failed without a diagnostic; input:\n"
          << Input;
    }
  } catch (const std::exception &E) {
    FAIL() << "exception escaped the checked pipeline (" << Origin
           << "): " << E.what() << "\ninput:\n"
           << Input;
  }
}

/// Every input that ever crashed the pipeline is persisted verbatim under
/// tests/corpus/ and replayed here *before* the random fuzz, so a fixed
/// bug that regresses fails deterministically — no seed hunting. Add new
/// mutants as tests/corpus/<short-name>.lift; the directory path is baked
/// in at configure time (LIFT_TEST_CORPUS_DIR).
TEST(CrashFuzzCorpus, RegressionCorpusNeverAborts) {
  namespace fs = std::filesystem;
  fs::path Dir(LIFT_TEST_CORPUS_DIR);
  ASSERT_TRUE(fs::is_directory(Dir))
      << "missing regression corpus directory: " << Dir;

  std::vector<fs::path> Files;
  for (const fs::directory_entry &E : fs::directory_iterator(Dir))
    if (E.path().extension() == ".lift")
      Files.push_back(E.path());
  std::sort(Files.begin(), Files.end());
  ASSERT_FALSE(Files.empty()) << "no .lift files in " << Dir;

  for (const fs::path &F : Files) {
    std::ifstream In(F, std::ios::binary);
    ASSERT_TRUE(In.good()) << "unreadable corpus file: " << F;
    std::ostringstream SS;
    SS << In.rdbuf();
    expectNoCrash(SS.str(), F.filename().string());
  }
}

//===----------------------------------------------------------------------===//
// Mutated-IL fuzzing
//===----------------------------------------------------------------------===//

class CrashFuzz : public ::testing::TestWithParam<int> {};

/// The documented safe pipeline: parse, verify, compile. Any input either
/// makes it through or leaves diagnostics behind; nothing aborts and no
/// exception escapes the checked boundaries.
TEST_P(CrashFuzz, MutatedILNeverAborts) {
  Prng Rng(static_cast<uint64_t>(GetParam()) * 1000003 + 17);
  constexpr int MutantsPerSeed = 100;

  for (int M = 0; M != MutantsPerSeed; ++M) {
    std::string Input = Corpus[Rng.next() % CorpusSize];
    Input = mutate(std::move(Input), Rng);

    DiagnosticEngine Engine(8);
    try {
      Expected<frontend::ParsedProgram> P =
          frontend::parseILChecked(Input, Engine);
      if (!P) {
        ASSERT_TRUE(Engine.hasErrors())
            << "parse failed without a diagnostic; input:\n" << Input;
        continue;
      }
      if (!passes::verifyChecked(P->Program, Engine, "after parsing")) {
        ASSERT_TRUE(Engine.hasErrors())
            << "verify failed without a diagnostic; input:\n" << Input;
        continue;
      }
      codegen::CompilerOptions Opts;
      Opts.GlobalSize = {16, 1, 1};
      Opts.LocalSize = {4, 1, 1};
      Opts.VerifyEach = true;
      Expected<codegen::CompiledKernel> K =
          codegen::compileChecked(P->Program, Opts, Engine);
      if (!K) {
        ASSERT_TRUE(Engine.hasErrors())
            << "compile failed without a diagnostic; input:\n" << Input;
      }
    } catch (const std::exception &E) {
      FAIL() << "exception escaped the checked pipeline (seed "
             << GetParam() << ", mutant " << M << "): " << E.what()
             << "\ninput:\n" << Input;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrashFuzz, ::testing::Range(0, 128));

//===----------------------------------------------------------------------===//
// Random well-typed IR
//===----------------------------------------------------------------------===//

// The generator itself lives in Generator.h (shared with the
// rule-soundness differential tier); this tier compiles its Lowered mode
// under --verify-each and runs a sample under full dynamic checking.

class WellTypedFuzz : public ::testing::TestWithParam<int> {};

TEST_P(WellTypedFuzz, AlwaysCompilesCleanAndRunsGuarded) {
  constexpr int ProgramsPerSeed = 8;
  for (int I = 0; I != ProgramsPerSeed; ++I) {
    uint64_t Seed = static_cast<uint64_t>(GetParam()) * 131 + I;
    size_t OutCount = 0;
    bool TwoInputs = false;
    LambdaPtr P = generateWellTyped(Seed, OutCount, TwoInputs);

    DiagnosticEngine Engine;
    codegen::CompilerOptions Opts;
    Opts.GlobalSize = {16, 1, 1};
    Opts.LocalSize = {4, 1, 1};
    Opts.VerifyEach = true;
    Expected<codegen::CompiledKernel> K =
        codegen::compileChecked(P, Opts, Engine);
    ASSERT_TRUE(bool(K)) << "well-typed program rejected (seed " << Seed
                         << "):\n" << Engine.render();
    ASSERT_FALSE(Engine.hasErrors()) << Engine.render();

    // Execute a quarter of them under full dynamic checking: guarded
    // memory and the race detector must both come back clean, and the
    // execution limits — generous enough that a correct program never
    // trips them — must stay invisible.
    if (I % 4 != 0)
      continue;
    ocl::Buffer In = ocl::Buffer::ofFloats(randomFloats(48, Seed));
    ocl::Buffer In2 = ocl::Buffer::ofFloats(randomFloats(48, Seed + 7));
    ocl::Buffer Out = ocl::Buffer::zeros(OutCount);
    std::vector<ocl::Buffer *> Bufs;
    Bufs.push_back(&In);
    if (TwoInputs)
      Bufs.push_back(&In2);
    Bufs.push_back(&Out);
    ocl::LaunchConfig Cfg = ocl::LaunchConfig::fromOptions(Opts);
    Cfg.CheckRaces = true;
    Cfg.CheckMemory = true;
    Cfg.Limits.MaxSteps = 50'000'000;
    Cfg.Limits.TimeoutMs = 30'000;
    Cfg.Limits.MaxMemoryBytes = 256u << 20;
    Expected<ocl::LaunchResult> R =
        ocl::launchChecked(*K, Bufs, {{"N", 48}}, Cfg, Engine);
    ASSERT_TRUE(bool(R)) << Engine.render();
    EXPECT_TRUE(R->Races.clean()) << R->Races.summary();
    EXPECT_TRUE(R->Guards.clean()) << R->Guards.summary();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WellTypedFuzz, ::testing::Range(0, 128));

//===----------------------------------------------------------------------===//
// Pipeline-graph fuzzing (src/graph)
//===----------------------------------------------------------------------===//

// The .liftg frontend gets the same two-sided treatment as the IL one:
// mutated graph sources must never abort (parse and validation either
// succeed or leave diagnostics), and randomly generated well-formed
// pipelines must always validate, run cleanly, and stay bit-identical
// across executor thread counts.

class GraphCrashFuzz : public ::testing::TestWithParam<int> {};

TEST_P(GraphCrashFuzz, MutatedGraphSourceNeverAborts) {
  Prng Rng(static_cast<uint64_t>(GetParam()) * 2000003 + 29);
  constexpr int MutantsPerSeed = 24;

  for (int M = 0; M != MutantsPerSeed; ++M) {
    std::string Input = generatePipelineGraph(Rng.next());
    Input = mutate(std::move(Input), Rng);

    DiagnosticEngine Engine(8);
    try {
      Expected<graph::Graph> G = graph::parseGraphChecked(Input, Engine);
      if (!G) {
        ASSERT_TRUE(Engine.hasErrors())
            << "graph parse failed without a diagnostic; input:\n" << Input;
        continue;
      }
      Expected<graph::ValidatedGraph> VG = graph::validateGraph(*G, Engine);
      if (!VG) {
        ASSERT_TRUE(Engine.hasErrors())
            << "graph validation failed without a diagnostic; input:\n"
            << Input;
        continue;
      }
      // A mutant that survives validation is a real (if odd) pipeline;
      // run it under a tight budget so a pathological one cannot hang
      // the fuzz round. Either outcome is fine — only aborts are bugs.
      // Skip the run (not the parse/validate) when an extreme-number
      // mutation produced giant extents or NDRanges: those only measure
      // how long the deadline takes to fire, a few hundred times over.
      int64_t TotalElems = 0;
      for (const graph::BufferDecl &B : G->Buffers)
        TotalElems += B.Extent;
      int64_t MaxGlobal = 0;
      for (const graph::GraphNode &N : G->Nodes) {
        const graph::StageDecl &S = N.Stage;
        if (N.K == graph::GraphNode::Kind::Stage)
          MaxGlobal = std::max(MaxGlobal, S.Global[0] * S.Global[1] *
                                              S.Global[2]);
      }
      if (TotalElems > (1 << 16) || MaxGlobal > (1 << 16))
        continue;
      graph::GraphRunOptions GO;
      GO.Limits.MaxSteps = 2'000'000;
      GO.Limits.TimeoutMs = 10'000;
      GO.Limits.MaxMemoryBytes = 64u << 20;
      (void)graph::runGraph(*VG, GO, Engine);
    } catch (const std::exception &E) {
      FAIL() << "exception escaped the checked graph pipeline (seed "
             << GetParam() << ", mutant " << M << "): " << E.what()
             << "\ninput:\n" << Input;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphCrashFuzz, ::testing::Range(0, 32));

class GraphPipelineFuzz : public ::testing::TestWithParam<int> {};

TEST_P(GraphPipelineFuzz, GeneratedPipelinesRunCleanAndDeterministic) {
  constexpr int GraphsPerSeed = 4;
  for (int I = 0; I != GraphsPerSeed; ++I) {
    uint64_t Seed = static_cast<uint64_t>(GetParam()) * 977 + I;
    std::string Source = generatePipelineGraph(Seed);

    DiagnosticEngine Engine;
    Expected<graph::Graph> G = graph::parseGraphChecked(Source, Engine);
    ASSERT_TRUE(bool(G)) << "generated graph rejected (seed " << Seed
                         << "):\n" << Engine.render() << "\n" << Source;
    Expected<graph::ValidatedGraph> VG = graph::validateGraph(*G, Engine);
    ASSERT_TRUE(bool(VG)) << "generated graph invalid (seed " << Seed
                          << "):\n" << Engine.render() << "\n" << Source;

    graph::GraphRunOptions GO;
    GO.CheckRaces = true;
    GO.CheckMemory = true;
    Expected<graph::GraphRunResult> R1 = graph::runGraph(*VG, GO, Engine);
    ASSERT_TRUE(bool(R1)) << "generated graph failed (seed " << Seed
                          << "):\n" << Engine.render() << "\n" << Source;
    ASSERT_FALSE(Engine.hasErrors()) << Engine.render();

    DiagnosticEngine Engine2;
    graph::GraphRunOptions GO2 = GO;
    GO2.Threads = 2;
    Expected<graph::GraphRunResult> R2 = graph::runGraph(*VG, GO2, Engine2);
    ASSERT_TRUE(bool(R2)) << Engine2.render();
    EXPECT_EQ(R1->Outputs, R2->Outputs)
        << "thread count changed results (seed " << Seed << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphPipelineFuzz, ::testing::Range(0, 32));

} // namespace
