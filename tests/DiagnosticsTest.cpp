//===- DiagnosticsTest.cpp - Diagnostics engine and error-code tests ------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Table-driven coverage of the diagnostics pipeline: every class of
/// malformed input runs through the documented safe pipeline (parse,
/// verify, compile) and must produce the expected stable error code at
/// the expected source line — never an abort. Also covers the engine
/// mechanics themselves: multi-error recovery, the --max-errors cap, and
/// the rendered "error[E0102]" format.
///
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"
#include "cparse/CParser.h"
#include "frontend/ILParser.h"
#include "ocl/Runtime.h"
#include "passes/Verify.h"
#include "rewrite/Rules.h"
#include "support/Diagnostics.h"

#include <gtest/gtest.h>

#include <array>

using namespace lift;

namespace {

/// Runs the full checked pipeline on one source and collects everything
/// it reports. Verification failures gate compilation, exactly as liftc
/// does under --verify-each.
std::vector<Diagnostic> diagnose(const std::string &Source) {
  DiagnosticEngine Engine(32);
  Expected<frontend::ParsedProgram> P =
      frontend::parseILChecked(Source, Engine);
  if (P && passes::verifyChecked(P->Program, Engine, "after parsing")) {
    codegen::CompilerOptions Opts;
    Opts.GlobalSize = {16, 1, 1};
    Opts.LocalSize = {4, 1, 1};
    Opts.VerifyEach = true;
    codegen::compileChecked(P->Program, Opts, Engine);
  }
  return Engine.diagnostics();
}

struct MalformedCase {
  const char *Name;
  const char *Source;
  DiagCode Code;    ///< A diagnostic with this code must be reported.
  unsigned Line;    ///< Expected 1-based line of that diagnostic; 0 = any.
  const char *Substr; ///< Required substring of its message.
};

std::string deepNesting() {
  std::string S = "fun(x: [float]N) => ";
  for (int I = 0; I != 250; ++I)
    S += "mapSeq(";
  S += "id";
  for (int I = 0; I != 250; ++I)
    S += ")";
  S += "(x)";
  return S;
}

const MalformedCase Cases[] = {
    // 1xx — lexing and parsing.
    {"UnterminatedString", "def f(x: float): float = \"return x;",
     DiagCode::ParseUnterminatedString, 1, "unterminated"},
    {"UnexpectedChar", "fun(x: [float]N) => ?x",
     DiagCode::ParseUnexpectedChar, 1, "unexpected character"},
    {"UnknownFunction", "fun(x: [float]N) => bogus(x)",
     DiagCode::ParseUnknownFunction, 1, "unknown function 'bogus'"},
    {"UnknownType", "fun(x: [whatever]N) => x", DiagCode::ParseUnknownType,
     1, "unknown type"},
    {"MissingCBody",
     "def f(x: float): float = 42\nfun(x: [float]N) => mapGlb0(f)(x)",
     DiagCode::ParseExpectedString, 1, "expected the C body"},
    {"MissingProgramHeader", "def f(x: float): float = \"return x;\"",
     DiagCode::ParseExpectedProgramHeader, 0, "program header"},
    {"TrailingInput", "fun(x: [float]N) => mapSeq(id)(x) x",
     DiagCode::ParseTrailingInput, 1, "trailing input"},
    {"ExpectedIdentifier", "def (x: float): float = \"return x;\"",
     DiagCode::ParseExpectedIdentifier, 1, "expected identifier"},
    {"ExpectedExpression", "fun(x: [float]N) =>",
     DiagCode::ParseExpectedExpression, 1, "expected expression"},
    {"MissingArraySize", "fun(x: [float]) => x", DiagCode::ParseExpectedSize,
     1, "size"},
    {"UnknownIndexFunction",
     "fun(x: [float]N) => mapGlb0(id)(gather(nope)(x))",
     DiagCode::ParseUnknownIndexFunction, 1, "unknown index function"},
    {"NestingTooDeep", "", DiagCode::ParseTooDeep, 1, "nesting too deep"},
    {"IterateCountTooBig",
     "fun(x: [float]N) => iterate(9999999, mapSeq(id))(x)",
     DiagCode::ParseBadCount, 1, ""},
    {"AsVectorWidthTooBig",
     "fun(x: [float]N) => asScalar(asVector(64)(x))", DiagCode::ParseBadCount,
     1, "asVector width"},

    // 2xx — type analysis.
    {"MapOfScalar", "fun(x: float) => mapGlb0(id)(x)",
     DiagCode::TypeExpectsArray, 0, "array"},
    {"ZipUnequalLengths",
     "def g(p: (float, float)): float = \"return p._0;\"\n"
     "fun(x: [float]N, y: [float]M) => mapGlb0(g)(zip(x, y))",
     DiagCode::TypeUnequalLengths, 0, "equal array lengths"},
    {"UserFunArity",
     "def g(a: float, b: float): float = \"return a;\"\n"
     "fun(x: [float]N) => mapGlb0(g)(x)", DiagCode::TypeArityMismatch, 0,
     ""},

    // 3xx — verifier findings.
    {"MapLclOutsideWrg", "fun(x: [float]N) => mapLcl0(id)(x)",
     DiagCode::VerifyAddressSpace, 0, "mapLcl requires an enclosing mapWrg"},
    {"ToLocalOutsideWrg", "fun(x: [float]N) => toLocal(mapSeq(id))(x)",
     DiagCode::VerifyAddressSpace, 0, "toLocal requires an enclosing"},
    {"MapGlbUnderWrg",
     "fun(x: [float]N) => join(mapWrg0(mapGlb0(id))(split(4)(x)))",
     DiagCode::VerifyAddressSpace, 0, "mapGlb cannot nest"},
    {"SplitByZero", "fun(x: [float]N) => join(split(0)(x))",
     DiagCode::VerifyBadLength, 0, "split factor"},

    // 4xx — code generation.
    {"UserFunBodySyntax",
     "def f(x: float): float = \"return $;\"\n"
     "fun(x: [float]N) => mapGlb0(f)(x)", DiagCode::CodegenUserFunSyntax, 0,
     "user function parse error"},
};

class MalformedIL : public ::testing::TestWithParam<MalformedCase> {};

TEST_P(MalformedIL, ReportsExpectedCodeAndLocation) {
  const MalformedCase &C = GetParam();
  std::string Source =
      std::string(C.Name) == "NestingTooDeep" ? deepNesting() : C.Source;
  std::vector<Diagnostic> Diags = diagnose(Source);

  ASSERT_FALSE(Diags.empty()) << C.Name << ": no diagnostics for:\n"
                              << Source;
  const Diagnostic *Match = nullptr;
  for (const Diagnostic &D : Diags)
    if (D.Code == C.Code) {
      Match = &D;
      break;
    }
  std::string All;
  for (const Diagnostic &D : Diags)
    All += "  " + D.render() + "\n";
  ASSERT_NE(Match, nullptr) << C.Name << ": expected " << diagCodeId(C.Code)
                            << ", got:\n" << All;
  if (C.Line != 0)
    EXPECT_EQ(Match->Loc.Line, C.Line) << C.Name << ": " << Match->render();
  if (C.Substr[0] != '\0')
    EXPECT_NE(Match->Message.find(C.Substr), std::string::npos)
        << C.Name << ": " << Match->render();
}

INSTANTIATE_TEST_SUITE_P(
    Table, MalformedIL, ::testing::ValuesIn(Cases),
    [](const ::testing::TestParamInfo<MalformedCase> &I) {
      return I.param.Name;
    });

//===----------------------------------------------------------------------===//
// Engine mechanics
//===----------------------------------------------------------------------===//

TEST(DiagnosticEngineTest, RecoversAcrossTopLevelDeclarations) {
  // Two independent parse errors in separate defs: the parser resynchronizes
  // and reports both in one run.
  std::vector<Diagnostic> Diags = diagnose(
      "def f(x: float): float = 42\n"
      "def g(x: float): float = 43\n"
      "fun(x: [float]N) => mapGlb0(id)(x)");
  unsigned BodyErrors = 0;
  for (const Diagnostic &D : Diags)
    BodyErrors += D.Code == DiagCode::ParseExpectedString;
  EXPECT_GE(BodyErrors, 2u);
}

TEST(DiagnosticEngineTest, MaxErrorsCapsReporting) {
  DiagnosticEngine Engine(3);
  for (int I = 0; I != 10; ++I)
    Engine.error(DiagCode::ParseUnexpectedToken, DiagLocation::atLine(1),
                 "error " + std::to_string(I));
  EXPECT_TRUE(Engine.errorLimitReached());
  // All errors are counted, but only MaxErrors are kept (plus the
  // suppression note).
  EXPECT_EQ(Engine.errorCount(), 10u);
  unsigned Stored = 0;
  for (const Diagnostic &D : Engine.diagnostics())
    Stored += D.Severity == DiagSeverity::Error;
  EXPECT_EQ(Stored, 3u);
}

TEST(DiagnosticEngineTest, RenderUsesStableCodeIds) {
  DiagnosticEngine Engine;
  Engine.error(DiagCode::ParseUnterminatedString, DiagLocation::atLine(7),
               "unterminated string");
  std::string R = Engine.diagnostics().front().render();
  EXPECT_NE(R.find("error[E0102]"), std::string::npos) << R;
  EXPECT_NE(R.find("line 7"), std::string::npos) << R;
}

TEST(DiagnosticEngineTest, WellFormedProgramIsClean) {
  std::vector<Diagnostic> Diags = diagnose(
      "def sq(x: float): float = \"return x * x;\"\n"
      "fun(x: [float]N) => mapGlb0(sq)(x)");
  std::string All;
  for (const Diagnostic &D : Diags)
    All += D.render() + "\n";
  EXPECT_TRUE(Diags.empty()) << All;
}

//===----------------------------------------------------------------------===//
// Degenerate launch configurations (E0508)
//===----------------------------------------------------------------------===//

/// A trivial copy kernel for exercising launch validation.
codegen::CompiledKernel copyKernel() {
  cparse::ParseContext Ctx;
  return ocl::wrapModule(cparse::parseModule(R"(
kernel void copy(global float *in, global float *out) {
  out[get_global_id(0)] = in[get_global_id(0)];
}
)",
                                             Ctx));
}

/// The launch must fail before the group loop with a single E0508 whose
/// message contains \p Expect; the buffers must be untouched.
void expectBadNDRange(const std::array<int64_t, 3> &Global,
                      const std::array<int64_t, 3> &Local,
                      const std::string &Expect) {
  codegen::CompiledKernel K = copyKernel();
  ocl::Buffer In = ocl::Buffer::ofFloats({1, 2, 3, 4});
  ocl::Buffer Out = ocl::Buffer::zeros(4);
  ocl::LaunchConfig Cfg;
  Cfg.Global = Global;
  Cfg.Local = Local;
  DiagnosticEngine Engine;
  Expected<ocl::LaunchResult> R =
      ocl::launchChecked(K, {&In, &Out}, {}, Cfg, Engine);
  EXPECT_FALSE(bool(R));
  ASSERT_TRUE(Engine.hasErrors());
  const Diagnostic &D = Engine.diagnostics().front();
  EXPECT_EQ(D.Code, DiagCode::RuntimeBadNDRange) << D.render();
  EXPECT_NE(D.render().find("E0508"), std::string::npos) << D.render();
  EXPECT_NE(D.Message.find(Expect), std::string::npos) << D.render();
  for (float F : Out.toFloats())
    EXPECT_EQ(F, 0.0f);
}

TEST(LaunchValidationTest, ZeroLocalSizeIsRejected) {
  expectBadNDRange({4, 1, 1}, {0, 1, 1}, "both must be positive");
}

TEST(LaunchValidationTest, NegativeLocalSizeIsRejected) {
  expectBadNDRange({4, 1, 1}, {-2, 1, 1}, "both must be positive");
}

TEST(LaunchValidationTest, ZeroGlobalSizeIsRejected) {
  expectBadNDRange({0, 1, 1}, {1, 1, 1}, "both must be positive");
}

TEST(LaunchValidationTest, IndivisibleGlobalSizeIsRejected) {
  expectBadNDRange({6, 1, 1}, {4, 1, 1},
                   "global size 6 is not divisible by local size 4");
}

TEST(LaunchValidationTest, HigherDimensionsAreValidatedToo) {
  expectBadNDRange({4, 3, 1}, {2, 2, 1},
                   "not divisible by local size 2 in dimension 1");
}

//===----------------------------------------------------------------------===//
// Checked rewrite entry points (E0405, RewriteNoLowering)
//===----------------------------------------------------------------------===//

/// An already-lowered program: no high-level map anywhere, so the mapping
/// step of the lowering pipeline has nothing to rewrite.
ir::LambdaPtr fullyLoweredProgram() {
  using namespace ir;
  using namespace ir::dsl;
  ir::ParamPtr X = param("x", arrayOf(float32(), arith::cst(16)));
  return lambda({X}, pipe(ir::ExprPtr(X), mapSeq(prelude::squareFun())));
}

TEST(RewriteDiagnosticsTest, LowerProgramCheckedReportsNoApplicableLowering) {
  DiagnosticEngine Engine;
  Expected<ir::LambdaPtr> R = rewrite::lowerProgramChecked(
      fullyLoweredProgram(), /*UseWorkGroups=*/false, nullptr, Engine);
  EXPECT_FALSE(bool(R));
  ASSERT_TRUE(Engine.hasErrors());
  const Diagnostic &D = Engine.diagnostics().front();
  EXPECT_EQ(D.Code, DiagCode::RewriteNoLowering);
  EXPECT_NE(D.Message.find("no applicable lowering"), std::string::npos)
      << D.Message;
  EXPECT_NE(Engine.render().find("E0405"), std::string::npos)
      << Engine.render();
}

TEST(RewriteDiagnosticsTest, LowerProgramCheckedReportsMissingChunkSize) {
  DiagnosticEngine Engine;
  Expected<ir::LambdaPtr> R = rewrite::lowerProgramChecked(
      fullyLoweredProgram(), /*UseWorkGroups=*/true, nullptr, Engine);
  EXPECT_FALSE(bool(R));
  ASSERT_TRUE(Engine.hasErrors());
  EXPECT_EQ(Engine.diagnostics().front().Code, DiagCode::CodegenLowering);
  EXPECT_NE(Engine.diagnostics().front().Message.find("chunk size"),
            std::string::npos);
}

TEST(RewriteDiagnosticsTest, ApplyOnceCheckedReportsWhereNothingMatched) {
  DiagnosticEngine Engine;
  ir::LambdaPtr P = fullyLoweredProgram();
  Expected<ir::ExprPtr> R = rewrite::applyOnceChecked(
      rewrite::mapToMapGlb(0), P->getBody(), Engine);
  EXPECT_FALSE(bool(R));
  ASSERT_TRUE(Engine.hasErrors());
  const Diagnostic &D = Engine.diagnostics().front();
  EXPECT_EQ(D.Code, DiagCode::RewriteNoLowering);
  EXPECT_NE(D.Message.find("matches nowhere"), std::string::npos)
      << D.Message;
}

TEST(RewriteDiagnosticsTest, ApplyOnceCheckedSucceedsSilentlyOnAMatch) {
  using namespace ir;
  using namespace ir::dsl;
  ir::ParamPtr X = param("x", arrayOf(float32(), arith::cst(16)));
  ir::LambdaPtr P =
      lambda({X}, pipe(ir::ExprPtr(X), map(prelude::squareFun())));
  DiagnosticEngine Engine;
  Expected<ir::ExprPtr> R = rewrite::applyOnceChecked(
      rewrite::mapToMapGlb(0), P->getBody(), Engine);
  ASSERT_TRUE(bool(R));
  EXPECT_FALSE(Engine.hasErrors()) << Engine.render();
}

/// The verifier half of the contract: an invalid placement of a parallel
/// mapping rule (same dimension distributed twice) is rejected instead of
/// silently computing garbage.
TEST(RewriteDiagnosticsTest, SameDimensionNestedParallelMapsAreRejected) {
  using namespace ir;
  using namespace ir::dsl;
  ir::ParamPtr X =
      param("x", arrayOf(arrayOf(float32(), arith::cst(4)), arith::cst(4)));
  ir::LambdaPtr P = lambda(
      {X},
      pipe(ir::ExprPtr(X), mapGlb(0, mapGlb(0, prelude::squareFun())),
           join()));
  DiagnosticEngine Engine;
  EXPECT_FALSE(passes::verifyChecked(P, Engine, "nesting"));
  ASSERT_TRUE(Engine.hasErrors());
  EXPECT_NE(Engine.render().find("same dimension"), std::string::npos)
      << Engine.render();
}

TEST(LaunchValidationTest, ValidConfigStillLaunches) {
  codegen::CompiledKernel K = copyKernel();
  ocl::Buffer In = ocl::Buffer::ofFloats({1, 2, 3, 4});
  ocl::Buffer Out = ocl::Buffer::zeros(4);
  ocl::LaunchConfig Cfg;
  Cfg.Global = {4, 1, 1};
  Cfg.Local = {2, 1, 1};
  DiagnosticEngine Engine;
  Expected<ocl::LaunchResult> R =
      ocl::launchChecked(K, {&In, &Out}, {}, Cfg, Engine);
  ASSERT_TRUE(bool(R));
  EXPECT_FALSE(Engine.hasErrors());
  EXPECT_EQ(Out.toFloats(), std::vector<float>({1, 2, 3, 4}));
}

} // namespace
