//===- E2ETest.cpp - End-to-end compile-and-execute tests -------------------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compiles small Lift IL programs covering every pattern, runs the
/// generated kernels on the simulated device at each of the three
/// optimization levels of Figure 8, and validates the results element-wise
/// against plain C++ references. This is the main correctness harness for
/// the whole compilation pipeline.
///
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"
#include "suite/Benchmark.h"

#include <gtest/gtest.h>

using namespace lift;
using namespace lift::ir;
using namespace lift::ir::dsl;
using namespace lift::test;

namespace {

class E2E : public ::testing::TestWithParam<OptLevel> {
protected:
  codegen::CompilerOptions opts(std::array<int64_t, 3> Global,
                                std::array<int64_t, 3> Local) {
    return optionsFor(GetParam(), Global, Local);
  }
};

//===----------------------------------------------------------------------===//
// Elementary maps
//===----------------------------------------------------------------------===//

TEST_P(E2E, MapGlbSquare) {
  auto N = arith::sizeVar("N");
  ParamPtr X = param("x", arrayOf(float32(), N));
  LambdaPtr P = lambda({X}, pipe(ExprPtr(X), mapGlb(prelude::squareFun())));

  auto In = randomFloats(256, 1);
  auto R = runFloatProgram(P, {In}, 256, {{"N", 256}}, opts({64, 1, 1},
                                                            {16, 1, 1}));
  std::vector<float> Ref;
  for (float V : In)
    Ref.push_back(V * V);
  EXPECT_LT(maxAbsError(R.Out, Ref), 1e-6);
}

TEST_P(E2E, MapWrgMapLclNested) {
  auto N = arith::sizeVar("N");
  ParamPtr X = param("x", arrayOf(float32(), N));
  LambdaPtr P =
      lambda({X}, pipe(ExprPtr(X), split(32),
                       mapWrg(mapLcl(prelude::squareFun())), join()));

  auto In = randomFloats(512, 2);
  auto R = runFloatProgram(P, {In}, 512, {{"N", 512}},
                           opts({128, 1, 1}, {16, 1, 1}));
  std::vector<float> Ref;
  for (float V : In)
    Ref.push_back(V * V);
  EXPECT_LT(maxAbsError(R.Out, Ref), 1e-6);
}

TEST_P(E2E, MapSeqInsideMapGlb) {
  auto N = arith::sizeVar("N");
  ParamPtr X = param("x", arrayOf(float32(), N));
  LambdaPtr P = lambda({X}, pipe(ExprPtr(X), split(8),
                                 mapGlb(mapSeq(prelude::squareFun())),
                                 join()));

  auto In = randomFloats(128, 3);
  auto R = runFloatProgram(P, {In}, 128, {{"N", 128}},
                           opts({16, 1, 1}, {4, 1, 1}));
  std::vector<float> Ref;
  for (float V : In)
    Ref.push_back(V * V);
  EXPECT_LT(maxAbsError(R.Out, Ref), 1e-6);
}

//===----------------------------------------------------------------------===//
// Zip / get / reduce
//===----------------------------------------------------------------------===//

TEST_P(E2E, ZipAdd) {
  auto N = arith::sizeVar("N");
  ParamPtr X = param("x", arrayOf(float32(), N));
  ParamPtr Y = param("y", arrayOf(float32(), N));
  FunDeclPtr AddPair = userFun("addPair", {"p"},
                               {tupleOf({float32(), float32()})}, float32(),
                               "return p._0 + p._1;");
  LambdaPtr P = lambda({X, Y}, pipe(call(zip(), {X, Y}), mapGlb(AddPair)));

  auto A = randomFloats(128, 4), B = randomFloats(128, 5);
  auto R = runFloatProgram(P, {A, B}, 128, {{"N", 128}},
                           opts({32, 1, 1}, {8, 1, 1}));
  std::vector<float> Ref;
  for (size_t I = 0; I != A.size(); ++I)
    Ref.push_back(A[I] + B[I]);
  EXPECT_LT(maxAbsError(R.Out, Ref), 1e-6);
}

TEST_P(E2E, ZipGetProjection) {
  auto N = arith::sizeVar("N");
  ParamPtr X = param("x", arrayOf(float32(), N));
  ParamPtr Y = param("y", arrayOf(float32(), N));
  // map(p -> sq(get1(p))) over zip: projects the second array.
  LambdaPtr P = lambda(
      {X, Y},
      pipe(call(zip(), {X, Y}), mapGlb(fun([&](ExprPtr Pair) {
             return call(prelude::squareFun(), {call(get(1), {Pair})});
           }))));

  auto A = randomFloats(64, 6), B = randomFloats(64, 7);
  auto R = runFloatProgram(P, {A, B}, 64, {{"N", 64}},
                           opts({16, 1, 1}, {8, 1, 1}));
  std::vector<float> Ref;
  for (float V : B)
    Ref.push_back(V * V);
  EXPECT_LT(maxAbsError(R.Out, Ref), 1e-6);
}

TEST_P(E2E, RowReduction) {
  // GEMV-like: one thread per row, sequential reduction over the row.
  auto N = arith::sizeVar("N");
  auto M = arith::sizeVar("M");
  ParamPtr X = param("x", array2D(float32(), N, M));
  LambdaPtr P = lambda(
      {X}, pipe(ExprPtr(X), mapGlb(fun([&](ExprPtr Row) {
              return pipe(call(reduceSeq(prelude::addFun()),
                               {litFloat(0.0f), Row}),
                          toGlobal(mapSeq(prelude::idFloatFun())));
            })),
            join()));

  const int64_t Rows = 32, Cols = 24;
  auto In = randomFloats(Rows * Cols, 8);
  auto R = runFloatProgram(P, {In}, Rows, {{"N", Rows}, {"M", Cols}},
                           opts({32, 1, 1}, {8, 1, 1}));
  std::vector<float> Ref(Rows, 0.f);
  for (int64_t I = 0; I != Rows; ++I)
    for (int64_t J = 0; J != Cols; ++J)
      Ref[I] += In[I * Cols + J];
  EXPECT_LT(maxAbsError(R.Out, Ref), 1e-4);
}

TEST_P(E2E, ReduceWithZippedInput) {
  // Dot-product-per-chunk: zip, split, reduce with a tuple operand.
  auto N = arith::sizeVar("N");
  ParamPtr X = param("x", arrayOf(float32(), N));
  ParamPtr Y = param("y", arrayOf(float32(), N));
  LambdaPtr P = lambda(
      {X, Y}, pipe(call(zip(), {X, Y}), split(16),
                   mapGlb(fun([&](ExprPtr Chunk) {
                     return pipe(call(reduceSeq(prelude::multAndSumUpFun()),
                                      {litFloat(0.0f), Chunk}),
                                 toGlobal(mapSeq(prelude::idFloatFun())));
                   })),
                   join()));

  auto A = randomFloats(256, 9), B = randomFloats(256, 10);
  auto R = runFloatProgram(P, {A, B}, 16, {{"N", 256}},
                           opts({16, 1, 1}, {4, 1, 1}));
  std::vector<float> Ref(16, 0.f);
  for (size_t I = 0; I != 256; ++I)
    Ref[I / 16] += A[I] * B[I];
  EXPECT_LT(maxAbsError(R.Out, Ref), 1e-4);
}

//===----------------------------------------------------------------------===//
// Layout patterns
//===----------------------------------------------------------------------===//

TEST_P(E2E, GatherReverse) {
  auto N = arith::sizeVar("N");
  ParamPtr X = param("x", arrayOf(float32(), N));
  LambdaPtr P = lambda({X}, pipe(ExprPtr(X), gather(reverseIndex()),
                                 mapGlb(prelude::idFloatFun())));

  auto In = randomFloats(64, 11);
  auto R = runFloatProgram(P, {In}, 64, {{"N", 64}},
                           opts({16, 1, 1}, {4, 1, 1}));
  std::vector<float> Ref(In.rbegin(), In.rend());
  EXPECT_LT(maxAbsError(R.Out, Ref), 1e-6);
}

TEST_P(E2E, ScatterReverse) {
  auto N = arith::sizeVar("N");
  ParamPtr X = param("x", arrayOf(float32(), N));
  LambdaPtr P = lambda({X}, pipe(ExprPtr(X), mapGlb(prelude::idFloatFun()),
                                 scatter(reverseIndex())));

  auto In = randomFloats(64, 12);
  auto R = runFloatProgram(P, {In}, 64, {{"N", 64}},
                           opts({16, 1, 1}, {4, 1, 1}));
  std::vector<float> Ref(In.rbegin(), In.rend());
  EXPECT_LT(maxAbsError(R.Out, Ref), 1e-6);
}

TEST_P(E2E, TransposeViaGatherComposition) {
  // Section 3.2: split_rows ∘ gather ∘ join.
  auto N = arith::sizeVar("N");
  auto M = arith::sizeVar("M");
  ParamPtr X = param("x", array2D(float32(), N, M));
  LambdaPtr P =
      lambda({X}, pipe(ExprPtr(X), join(), gather(transposeIndex(N, M)),
                       split(N), mapWrg(mapLcl(prelude::idFloatFun())),
                       join()));

  const int64_t Rows = 48, Cols = 16;
  std::vector<float> In(Rows * Cols);
  for (size_t I = 0; I != In.size(); ++I)
    In[I] = static_cast<float>(I);
  auto R = runFloatProgram(P, {In}, Rows * Cols,
                           {{"N", Rows}, {"M", Cols}},
                           opts({64, 1, 1}, {16, 1, 1}));
  std::vector<float> Ref(Rows * Cols);
  for (int64_t I = 0; I != Cols; ++I)
    for (int64_t J = 0; J != Rows; ++J)
      Ref[I * Rows + J] = In[J * Cols + I];
  EXPECT_LT(maxAbsError(R.Out, Ref), 1e-6);
}

TEST_P(E2E, TransposePattern) {
  auto N = arith::sizeVar("N");
  auto M = arith::sizeVar("M");
  ParamPtr X = param("x", array2D(float32(), N, M));
  LambdaPtr P = lambda({X}, pipe(ExprPtr(X), transpose(),
                                 mapWrg(mapLcl(prelude::idFloatFun())),
                                 join()));

  const int64_t Rows = 24, Cols = 16;
  std::vector<float> In(Rows * Cols);
  for (size_t I = 0; I != In.size(); ++I)
    In[I] = static_cast<float>(I);
  auto R = runFloatProgram(P, {In}, Rows * Cols,
                           {{"N", Rows}, {"M", Cols}},
                           opts({32, 1, 1}, {8, 1, 1}));
  std::vector<float> Ref(Rows * Cols);
  for (int64_t I = 0; I != Cols; ++I)
    for (int64_t J = 0; J != Rows; ++J)
      Ref[I * Rows + J] = In[J * Cols + I];
  EXPECT_LT(maxAbsError(R.Out, Ref), 1e-6);
}

TEST_P(E2E, SlideStencil3Point) {
  // mapGlb(reduceSeq(add)) ∘ slide(3,1): a 3-point moving sum.
  auto N = arith::sizeVar("N");
  ParamPtr X = param("x", arrayOf(float32(), N));
  LambdaPtr P = lambda(
      {X}, pipe(ExprPtr(X), slide(3, 1), mapGlb(fun([&](ExprPtr Win) {
              return pipe(call(reduceSeq(prelude::addFun()),
                               {litFloat(0.0f), Win}),
                          toGlobal(mapSeq(prelude::idFloatFun())));
            })),
            join()));

  auto In = randomFloats(66, 13);
  auto R = runFloatProgram(P, {In}, 64, {{"N", 66}},
                           opts({16, 1, 1}, {4, 1, 1}));
  std::vector<float> Ref(64);
  for (size_t I = 0; I != 64; ++I)
    Ref[I] = In[I] + In[I + 1] + In[I + 2];
  EXPECT_LT(maxAbsError(R.Out, Ref), 1e-5);
}

TEST_P(E2E, SplitJoinRoundTrip) {
  auto N = arith::sizeVar("N");
  ParamPtr X = param("x", arrayOf(float32(), N));
  LambdaPtr P = lambda({X}, pipe(ExprPtr(X), split(4), join(), split(8),
                                 mapGlb(mapSeq(prelude::idFloatFun())),
                                 join()));

  auto In = randomFloats(64, 14);
  auto R = runFloatProgram(P, {In}, 64, {{"N", 64}},
                           opts({8, 1, 1}, {4, 1, 1}));
  EXPECT_LT(maxAbsError(R.Out, In), 1e-6);
}

//===----------------------------------------------------------------------===//
// Pure maps over layout functions (views only, no code)
//===----------------------------------------------------------------------===//

TEST_P(E2E, MapTranspose2D) {
  // map(transpose) over a 3D array: swaps the two inner dimensions.
  auto N = arith::sizeVar("N");
  ParamPtr X = param("x", arrayOf(array2D(float32(), arith::cst(4),
                                          arith::cst(8)),
                                  N));
  LambdaPtr P = lambda(
      {X},
      pipe(ExprPtr(X), mapSeq(transpose()),
           mapGlb(mapSeq(mapSeq(prelude::idFloatFun()))), join(), join()));

  const int64_t Outer = 8;
  std::vector<float> In(Outer * 4 * 8);
  for (size_t I = 0; I != In.size(); ++I)
    In[I] = static_cast<float>(I);
  auto R = runFloatProgram(P, {In}, In.size(), {{"N", Outer}},
                           opts({8, 1, 1}, {4, 1, 1}));
  std::vector<float> Ref(In.size());
  for (int64_t O = 0; O != Outer; ++O)
    for (int64_t I = 0; I != 8; ++I)
      for (int64_t J = 0; J != 4; ++J)
        Ref[O * 32 + I * 4 + J] = In[O * 32 + J * 8 + I];
  EXPECT_LT(maxAbsError(R.Out, Ref), 1e-6);
}

TEST_P(E2E, MapGatherReversesRows) {
  auto N = arith::sizeVar("N");
  ParamPtr X = param("x", array2D(float32(), N, arith::cst(8)));
  LambdaPtr P = lambda({X}, pipe(ExprPtr(X), mapSeq(gather(reverseIndex())),
                                 mapGlb(mapSeq(prelude::idFloatFun())),
                                 join()));

  const int64_t Rows = 16;
  std::vector<float> In(Rows * 8);
  for (size_t I = 0; I != In.size(); ++I)
    In[I] = static_cast<float>(I);
  auto R = runFloatProgram(P, {In}, In.size(), {{"N", Rows}},
                           opts({16, 1, 1}, {4, 1, 1}));
  std::vector<float> Ref(In.size());
  for (int64_t I = 0; I != Rows; ++I)
    for (int64_t J = 0; J != 8; ++J)
      Ref[I * 8 + J] = In[I * 8 + (7 - J)];
  EXPECT_LT(maxAbsError(R.Out, Ref), 1e-6);
}

//===----------------------------------------------------------------------===//
// Local memory, iterate, vectorization, data-dependent gather
//===----------------------------------------------------------------------===//

TEST_P(E2E, LocalMemoryCopyPipeline) {
  // toLocal copy, square in local memory, copy back (classic staging).
  auto N = arith::sizeVar("N");
  ParamPtr X = param("x", arrayOf(float32(), N));
  LambdaPtr P = lambda(
      {X},
      pipe(ExprPtr(X), split(16), mapWrg(fun([&](ExprPtr Chunk) {
             return pipe(Chunk, toLocal(mapLcl(prelude::idFloatFun())),
                         mapLcl(prelude::squareFun()),
                         toGlobal(mapLcl(prelude::idFloatFun())));
           })),
           join()));

  auto In = randomFloats(128, 15);
  auto R = runFloatProgram(P, {In}, 128, {{"N", 128}},
                           opts({128, 1, 1}, {16, 1, 1}));
  std::vector<float> Ref;
  for (float V : In)
    Ref.push_back(V * V);
  EXPECT_LT(maxAbsError(R.Out, Ref), 1e-6);
}

TEST_P(E2E, IterateHalvingReduction) {
  // Listing 1's iterate: reduce 32 values to 1 in 5 halving steps.
  auto N = arith::sizeVar("N");
  ParamPtr X = param("x", arrayOf(float32(), N));
  LambdaPtr P = lambda(
      {X},
      pipe(ExprPtr(X), split(32), mapWrg(fun([&](ExprPtr Chunk) {
             return pipe(
                 Chunk, toLocal(mapLcl(prelude::idFloatFun())),
                 iterate(5, fun([&](ExprPtr Arr) {
                           return pipe(
                               Arr, split(2),
                               mapLcl(fun([&](ExprPtr Two) {
                                 return pipe(
                                     call(reduceSeq(prelude::addFun()),
                                          {litFloat(0.0f), Two}),
                                     toLocal(mapSeq(prelude::idFloatFun())));
                               })),
                               join());
                         })),
                 split(1), toGlobal(mapLcl(mapSeq(prelude::idFloatFun()))),
                 join());
           })),
           join()));

  auto In = randomFloats(128, 16);
  auto R = runFloatProgram(P, {In}, 4, {{"N", 128}},
                           opts({64, 1, 1}, {16, 1, 1}));
  std::vector<float> Ref(4, 0.f);
  for (size_t I = 0; I != 128; ++I)
    Ref[I / 32] += In[I];
  EXPECT_LT(maxAbsError(R.Out, Ref), 1e-4);
}

TEST_P(E2E, VectorizedSquare) {
  // asScalar ∘ map(mapVec(sq)) ∘ asVector(4).
  auto N = arith::sizeVar("N");
  ParamPtr X = param("x", arrayOf(float32(), N));
  LambdaPtr P = lambda(
      {X}, pipe(ExprPtr(X), asVector(4), mapGlb(fun([&](ExprPtr V4) {
              return call(mapVec(prelude::squareFun()), {V4});
            })),
            asScalar()));

  auto In = randomFloats(64, 17);
  auto R = runFloatProgram(P, {In}, 64, {{"N", 64}},
                           opts({16, 1, 1}, {4, 1, 1}));
  std::vector<float> Ref;
  for (float V : In)
    Ref.push_back(V * V);
  EXPECT_LT(maxAbsError(R.Out, Ref), 1e-6);
}

TEST_P(E2E, GatherIndicesNeighbourList) {
  auto N = arith::sizeVar("N");
  auto M = arith::sizeVar("M");
  ParamPtr Idx = param("idx", arrayOf(int32(), M));
  ParamPtr X = param("x", arrayOf(float32(), N));
  LambdaPtr P = lambda({Idx, X},
                       pipe(call(gatherIndices(), {Idx, X}),
                            mapGlb(prelude::idFloatFun())));

  std::vector<int> Indices = {5, 3, 7, 1, 0, 6, 2, 4,
                              5, 5, 5, 5, 0, 1, 2, 3};
  auto In = randomFloats(8, 18);

  codegen::CompiledKernel K =
      codegen::compile(P, opts({8, 1, 1}, {4, 1, 1}));
  ocl::Buffer IdxB = ocl::Buffer::ofInts(Indices);
  ocl::Buffer XB = ocl::Buffer::ofFloats(In);
  ocl::Buffer Out = ocl::Buffer::zeros(Indices.size());
  ocl::launch(K, {&IdxB, &XB, &Out},
              {{"N", 8}, {"M", static_cast<int64_t>(Indices.size())}},
              ocl::LaunchConfig::fromOptions(opts({8, 1, 1}, {4, 1, 1})));
  auto OutF = Out.toFloats();
  for (size_t I = 0; I != Indices.size(); ++I)
    EXPECT_FLOAT_EQ(OutF[I], In[static_cast<size_t>(Indices[I])]);
}

TEST_P(E2E, ScalarProgramParameter) {
  // y = alpha * x, with alpha a by-value scalar parameter.
  auto N = arith::sizeVar("N");
  ParamPtr X = param("x", arrayOf(float32(), N));
  ParamPtr Alpha = param("alpha", float32());
  FunDeclPtr Scale = userFun("scale", {"a", "v"}, {float32(), float32()},
                             float32(), "return a * v;");
  LambdaPtr P = lambda({X, Alpha}, pipe(ExprPtr(X), mapGlb(fun([&](ExprPtr V) {
                                          return call(Scale, {Alpha, V});
                                        }))));

  auto In = randomFloats(32, 19);
  codegen::CompiledKernel K = codegen::compile(P, opts({8, 1, 1}, {4, 1, 1}));
  ocl::Buffer XB = ocl::Buffer::ofFloats(In);
  ocl::Buffer Out = ocl::Buffer::zeros(32);
  ocl::launch(K, {&XB, &Out}, {{"N", 32}, {"alpha", 3}},
              ocl::LaunchConfig::fromOptions(opts({8, 1, 1}, {4, 1, 1})));
  auto OutF = Out.toFloats();
  for (size_t I = 0; I != In.size(); ++I)
    EXPECT_FLOAT_EQ(OutF[I], 3.0f * In[I]);
}

TEST_P(E2E, TwoDimensionalWorkgroups) {
  // 2D NDRange: tile a matrix into 2D work groups of 4x4 threads.
  auto N = arith::sizeVar("N");
  auto M = arith::sizeVar("M");
  ParamPtr X = param("x", array2D(float32(), N, M));
  LambdaPtr P = lambda(
      {X}, pipe(ExprPtr(X), mapWrg(1, fun([&](ExprPtr Row) {
              return pipe(Row, split(4),
                          mapWrg(0, mapLcl(0, prelude::squareFun())), join());
            }))));

  const int64_t Rows = 8, Cols = 16;
  auto In = randomFloats(Rows * Cols, 20);
  auto R = runFloatProgram(P, {In}, Rows * Cols,
                           {{"N", Rows}, {"M", Cols}},
                           opts({8, 8, 1}, {4, 1, 1}));
  std::vector<float> Ref;
  for (float V : In)
    Ref.push_back(V * V);
  EXPECT_LT(maxAbsError(R.Out, Ref), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(OptLevels, E2E,
                         ::testing::Values(OptLevel::None,
                                           OptLevel::BarrierCfs,
                                           OptLevel::Full),
                         [](const ::testing::TestParamInfo<OptLevel> &I) {
                           switch (I.param) {
                           case OptLevel::None:
                             return std::string("None");
                           case OptLevel::BarrierCfs:
                             return std::string("BarrierCfs");
                           case OptLevel::Full:
                             return std::string("Full");
                           }
                           return std::string("Unknown");
                         });


//===----------------------------------------------------------------------===//
// Verifier smoke over the benchmark suite
//===----------------------------------------------------------------------===//

class VerifyEachSmoke : public ::testing::TestWithParam<int> {};

/// Every benchmark compiles and validates with the IR verifier running
/// after each pipeline stage (the liftc --verify-each path): the verifier
/// must accept everything the real pipeline produces.
TEST_P(VerifyEachSmoke, BenchmarksPassTheVerifier) {
  std::vector<bench::BenchmarkCase> All = bench::allBenchmarks(false);
  ASSERT_LT(static_cast<size_t>(GetParam()), All.size());
  bench::BenchmarkCase &Case = All[static_cast<size_t>(GetParam())];

  bench::RunOptions Run;
  Run.VerifyEach = true;
  for (bench::OptConfig C :
       {bench::OptConfig::Full, bench::OptConfig::None}) {
    bench::Outcome Out = bench::runLift(Case, C, Run);
    EXPECT_TRUE(Out.Valid)
        << Case.Name << " under " << bench::optConfigName(C);
  }
}

std::string smokeBenchName(const ::testing::TestParamInfo<int> &I) {
  static const char *Names[] = {"NBodyNvidia", "NBodyAmd", "MD",
                                "KMeans",      "NN",       "MriQ",
                                "Convolution", "Atax",     "Gemv",
                                "Gesummv",     "MMNvidia", "MMAmd"};
  return Names[static_cast<size_t>(I.param)];
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, VerifyEachSmoke,
                         ::testing::Range(0, 12), smokeBenchName);

} // namespace
