//===- ExecLimitsTest.cpp - Bounded execution of the simulated runtime ----===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exercises ocl::ExecLimits: a non-terminating kernel trips the step
/// budget (E0510) or the wall-clock deadline (E0511), an over-allocating
/// kernel trips the memory cap (E0512) — always with a clean cooperative
/// cancellation (no hang, no abort) and with the *same* rendered
/// diagnostic at 1, 2 and 8 worker threads. Cancelled launches poison
/// their buffers; generous limits are invisible; the LIFT_MAX_STEPS /
/// LIFT_TIMEOUT_MS / LIFT_MAX_MEMORY environment defaults reach every
/// launch path. See docs/RELIABILITY.md.
///
//===----------------------------------------------------------------------===//

#include "cparse/CParser.h"
#include "ocl/Runtime.h"
#include "support/Diagnostics.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

using namespace lift;
using namespace lift::ocl;

namespace {

codegen::CompiledKernel kernelFrom(const std::string &Src) {
  cparse::ParseContext Ctx;
  return wrapModule(cparse::parseModule(Src, Ctx));
}

/// Never terminates: the induction variable is multiplied by one, so the
/// bound is never reached. This is the shape an unbounded `iterate` or a
/// miscompiled loop presents to the interpreter.
const char *SpinKernel = R"(
kernel void spin(global float *out) {
  int g = get_global_id(0);
  float acc = 0.0f;
  for (int i = 0; i < 1; i = i * 1) {
    acc = acc + 1.0f;
  }
  out[g] = acc;
}
)";

/// Allocates a local array far beyond any sane budget for this launch.
const char *HogKernel = R"(
kernel void hog(global float *out) {
  local float tmp[65536];
  int l = get_local_id(0);
  tmp[l] = 1.0f;
  barrier(CLK_LOCAL_MEM_FENCE);
  out[get_global_id(0)] = tmp[l];
}
)";

const char *SquareKernel = R"(
kernel void sq(global float *in, global float *out) {
  int g = get_global_id(0);
  out[g] = in[g] * in[g];
}
)";

std::vector<float> ramp(size_t N) {
  std::vector<float> R(N);
  for (size_t I = 0; I != N; ++I)
    R[I] = static_cast<float>(I) * 0.5f - 3.0f;
  return R;
}

/// Runs the spin kernel under the given limits and returns the rendered
/// error diagnostics (the launch must fail).
std::string runSpinExpectingFailure(const LaunchConfig &Cfg,
                                    DiagCode ExpectedCode) {
  auto K = kernelFrom(SpinKernel);
  Buffer Out = Buffer::zeros(16);
  DiagnosticEngine Engine;
  Expected<LaunchResult> R = launchChecked(K, {&Out}, {}, Cfg, Engine);
  EXPECT_FALSE(bool(R)) << "launch under limits unexpectedly succeeded";
  EXPECT_TRUE(Engine.hasErrors());
  bool Found = false;
  for (const Diagnostic &D : Engine.diagnostics())
    Found |= D.Code == ExpectedCode;
  EXPECT_TRUE(Found) << Engine.render();
  EXPECT_TRUE(Out.Poisoned) << "cancelled launch left its buffer readable";
  return Engine.render();
}

TEST(ExecLimitsTest, StepBudgetCancelsNonTerminatingKernel) {
  LaunchConfig Cfg;
  Cfg.Global = {16, 1, 1};
  Cfg.Local = {4, 1, 1};
  Cfg.Threads = 1;
  Cfg.Limits.MaxSteps = 20000;
  std::string Render = runSpinExpectingFailure(Cfg, DiagCode::RuntimeStepLimit);
  EXPECT_NE(Render.find("E0510"), std::string::npos) << Render;
  EXPECT_NE(Render.find("poisoned"), std::string::npos) << Render;
}

TEST(ExecLimitsTest, StepBudgetDiagnosticIdenticalAcrossThreadCounts) {
  std::vector<std::string> Renders;
  for (int Threads : {1, 2, 8}) {
    LaunchConfig Cfg;
    Cfg.Global = {16, 1, 1};
    Cfg.Local = {4, 1, 1};
    Cfg.Threads = Threads;
    Cfg.Limits.MaxSteps = 20000;
    Renders.push_back(
        runSpinExpectingFailure(Cfg, DiagCode::RuntimeStepLimit));
  }
  EXPECT_EQ(Renders[0], Renders[1]);
  EXPECT_EQ(Renders[0], Renders[2]);
}

TEST(ExecLimitsTest, DeadlineCancelsNonTerminatingKernel) {
  for (int Threads : {1, 2, 8}) {
    LaunchConfig Cfg;
    Cfg.Global = {16, 1, 1};
    Cfg.Local = {4, 1, 1};
    Cfg.Threads = Threads;
    Cfg.Limits.TimeoutMs = 100;
    std::string Render =
        runSpinExpectingFailure(Cfg, DiagCode::RuntimeDeadline);
    EXPECT_NE(Render.find("E0511"), std::string::npos) << Render;
  }
}

TEST(ExecLimitsTest, MemoryCapRejectsOversizedLocalAllocation) {
  auto K = kernelFrom(HogKernel);
  for (int Threads : {1, 2, 8}) {
    Buffer Out = Buffer::zeros(4);
    LaunchConfig Cfg;
    Cfg.Global = {4, 1, 1};
    Cfg.Local = {4, 1, 1};
    Cfg.Threads = Threads;
    Cfg.Limits.MaxMemoryBytes = 1024;
    DiagnosticEngine Engine;
    Expected<LaunchResult> R = launchChecked(K, {&Out}, {}, Cfg, Engine);
    ASSERT_FALSE(bool(R));
    bool Found = false;
    for (const Diagnostic &D : Engine.diagnostics())
      Found |= D.Code == DiagCode::RuntimeMemoryLimit;
    EXPECT_TRUE(Found) << Engine.render();
    // The diagnostic names the offending allocation.
    EXPECT_NE(Engine.render().find("tmp"), std::string::npos)
        << Engine.render();
  }
}

TEST(ExecLimitsTest, CancelledBuffersArePoisonedUntilCleared) {
  LaunchConfig Cfg;
  Cfg.Global = {16, 1, 1};
  Cfg.Local = {4, 1, 1};
  Cfg.Threads = 2;
  Cfg.Limits.MaxSteps = 20000;
  auto K = kernelFrom(SpinKernel);
  Buffer Out = Buffer::zeros(16);
  DiagnosticEngine Engine;
  ASSERT_FALSE(bool(launchChecked(K, {&Out}, {}, Cfg, Engine)));
  ASSERT_TRUE(Out.Poisoned);

  // Host reads of a poisoned buffer are rejected...
  EXPECT_THROW(Out.toFloats(), DiagnosticError);

  // ...and so is rebinding it to a fresh launch.
  auto KSq = kernelFrom(SquareKernel);
  Buffer Fresh = Buffer::zeros(16);
  DiagnosticEngine Engine2;
  LaunchConfig Plain;
  Plain.Global = {16, 1, 1};
  Plain.Local = {4, 1, 1};
  EXPECT_FALSE(
      bool(launchChecked(KSq, {&Out, &Fresh}, {}, Plain, Engine2)));
  EXPECT_TRUE(Engine2.hasErrors());
  bool Found = false;
  for (const Diagnostic &D : Engine2.diagnostics())
    Found |= D.Code == DiagCode::HostBadBuffer;
  EXPECT_TRUE(Found) << Engine2.render();

  // clearPoison() accepts the partial contents as-is.
  Out.clearPoison();
  EXPECT_EQ(Out.toFloats().size(), 16u);

  // Rewriting the buffer through a successful launch also works again.
  Buffer In = Buffer::ofFloats(ramp(16));
  DiagnosticEngine Engine3;
  ASSERT_TRUE(bool(launchChecked(KSq, {&In, &Out}, {}, Plain, Engine3)))
      << Engine3.render();
  EXPECT_FALSE(Out.Poisoned);
  EXPECT_FLOAT_EQ(Out.toFloats()[2], (-2.0f) * (-2.0f));
}

TEST(ExecLimitsTest, GenerousLimitsAreInvisible) {
  auto K = kernelFrom(SquareKernel);
  std::vector<float> Input = ramp(32);

  Buffer InA = Buffer::ofFloats(Input);
  Buffer OutA = Buffer::zeros(32);
  LaunchConfig Plain;
  Plain.Global = {32, 1, 1};
  Plain.Local = {8, 1, 1};
  launch(K, {&InA, &OutA}, {}, Plain);

  Buffer InB = Buffer::ofFloats(Input);
  Buffer OutB = Buffer::zeros(32);
  LaunchConfig Limited = Plain;
  Limited.Limits.MaxSteps = 100'000'000;
  Limited.Limits.TimeoutMs = 60'000;
  Limited.Limits.MaxMemoryBytes = 1u << 30;
  DiagnosticEngine Engine;
  Expected<LaunchResult> R =
      launchChecked(K, {&InB, &OutB}, {}, Limited, Engine);
  ASSERT_TRUE(bool(R)) << Engine.render();
  EXPECT_FALSE(Engine.hasErrors());
  EXPECT_EQ(OutA.toFloats(), OutB.toFloats());
}

TEST(ExecLimitsTest, EnvironmentDefaultsBoundEveryLaunch) {
  ASSERT_EQ(setenv("LIFT_MAX_STEPS", "20000", 1), 0);
  auto K = kernelFrom(SpinKernel);
  Buffer Out = Buffer::zeros(16);
  LaunchConfig Cfg; // note: no explicit limits
  Cfg.Global = {16, 1, 1};
  Cfg.Local = {4, 1, 1};
  Cfg.Threads = 2;
  DiagnosticEngine Engine;
  Expected<LaunchResult> R = launchChecked(K, {&Out}, {}, Cfg, Engine);
  unsetenv("LIFT_MAX_STEPS");
  ASSERT_FALSE(bool(R));
  bool Found = false;
  for (const Diagnostic &D : Engine.diagnostics())
    Found |= D.Code == DiagCode::RuntimeStepLimit;
  EXPECT_TRUE(Found) << Engine.render();
}

/// The host-side memory audit (the number a finer --max-memory pins):
/// two live 64-element buffers and nothing else must move the high-water
/// mark by exactly 2 * 64 * sizeof(Value) — allocation tracking that
/// over- or under-counts would break the audit silently, so the number
/// is pinned, not just bounded.
TEST(ExecLimitsTest, HostHighWaterPinsPeakFootprint) {
  auto K = kernelFrom(SquareKernel);
  resetHostBytesHighWater();
  const uint64_t Base = hostBytesHighWater();
  {
    Buffer In = Buffer::ofFloats(ramp(64));
    Buffer Out = Buffer::zeros(64);
    LaunchConfig Cfg;
    Cfg.Global = {64, 1, 1};
    Cfg.Local = {16, 1, 1};
    DiagnosticEngine Engine;
    ASSERT_TRUE(bool(launchChecked(K, {&In, &Out}, {}, Cfg, Engine)))
        << Engine.render();
    // The square kernel allocates no temporaries: the peak is the two
    // caller buffers, exactly.
    EXPECT_EQ(hostBytesHighWater() - Base,
              2 * 64 * sizeof(Value));
  }
  // Destruction releases the live count but the high-water mark stays.
  EXPECT_EQ(hostBytesLive(), Base);
  EXPECT_EQ(hostBytesHighWater() - Base, 2 * 64 * sizeof(Value));
  resetHostBytesHighWater();
  EXPECT_EQ(hostBytesHighWater(), Base);
}

/// An explicit per-launch limit wins over the environment default.
TEST(ExecLimitsTest, ExplicitLimitOverridesEnvironment) {
  ASSERT_EQ(setenv("LIFT_MAX_STEPS", "1", 1), 0);
  auto K = kernelFrom(SquareKernel);
  Buffer In = Buffer::ofFloats(ramp(16));
  Buffer Out = Buffer::zeros(16);
  LaunchConfig Cfg;
  Cfg.Global = {16, 1, 1};
  Cfg.Local = {4, 1, 1};
  Cfg.Limits.MaxSteps = 100'000'000; // explicit: the env var must not shrink it
  DiagnosticEngine Engine;
  Expected<LaunchResult> R = launchChecked(K, {&In, &Out}, {}, Cfg, Engine);
  unsetenv("LIFT_MAX_STEPS");
  ASSERT_TRUE(bool(R)) << Engine.render();
  EXPECT_FLOAT_EQ(Out.toFloats()[0], 9.0f);
}

} // namespace
