//===- FaultInjectTest.cpp - Deterministic runtime fault injection --------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sweeps deterministic fault injection (ocl/FaultInject.h) over the
/// benchmark suite: failing the n-th device allocation or buffer binding
/// must surface as a clean Expected<> failure carrying an E0513
/// diagnostic — never an abort, hang or leak (the check tier runs this
/// under ASan/UBSan). Failing pool bring-up must *not* fail the run: the
/// runtime degrades to serial execution with an E0509 warning and
/// bit-identical results. See docs/RELIABILITY.md.
///
//===----------------------------------------------------------------------===//

#include "native/Native.h"
#include "ocl/FaultInject.h"
#include "suite/Benchmark.h"
#include "support/Diagnostics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <set>
#include <string>
#include <unistd.h>
#include <vector>

using namespace lift;
using namespace lift::bench;
namespace fault = lift::ocl::fault;

namespace {

/// Disarms the harness no matter how a test exits.
struct DisarmGuard {
  ~DisarmGuard() { fault::disarm(); }
};

bool hasCode(const DiagnosticEngine &Engine, DiagCode Code) {
  for (const Diagnostic &D : Engine.diagnostics())
    if (D.Code == Code)
      return true;
  return false;
}

/// One benchmark per parameter so failures name the workload and ctest can
/// spread the sweep across cores.
class FaultSweep : public ::testing::TestWithParam<int> {};

/// Counts the injection opportunities of each site for one benchmark, then
/// fails the first, middle and last occurrence of the allocation and
/// buffer-binding sites in turn. Every injected fault must come back as a
/// failed Expected with an E0513 diagnostic naming the site.
TEST_P(FaultSweep, EveryInjectionPointFailsCleanly) {
  DisarmGuard Guard;
  BenchmarkCase Case = allBenchmarks(false)[GetParam()];

  RunOptions Run;
  Run.Threads = 1; // serial: the n-th occurrence is well defined

  // Discover the sweep bounds.
  fault::countOnly();
  {
    DiagnosticEngine Engine;
    Expected<Outcome> Base = runLiftChecked(Case, OptConfig::Full, Run, Engine);
    ASSERT_TRUE(bool(Base)) << Case.Name << ":\n" << Engine.render();
    ASSERT_TRUE(Base->Valid) << Case.Name;
  }
  uint64_t Allocs = fault::occurrences(fault::Site::Alloc);
  uint64_t Maps = fault::occurrences(fault::Site::BufferMap);
  fault::disarm();
  ASSERT_GT(Maps, 0u) << Case.Name << ": no buffer bindings recorded";

  for (fault::Site S : {fault::Site::Alloc, fault::Site::BufferMap}) {
    uint64_t Total = S == fault::Site::Alloc ? Allocs : Maps;
    if (Total == 0)
      continue; // benchmark has no temp/local allocations
    std::set<uint64_t> Nths = {1, (Total + 1) / 2, Total};
    for (uint64_t Nth : Nths) {
      fault::arm(S, Nth);
      DiagnosticEngine Engine;
      Expected<Outcome> R = runLiftChecked(Case, OptConfig::Full, Run, Engine);
      fault::disarm();
      EXPECT_FALSE(bool(R))
          << Case.Name << ": survived injected fault " << fault::siteName(S)
          << " #" << Nth;
      EXPECT_TRUE(hasCode(Engine, DiagCode::RuntimeFaultInjected))
          << Case.Name << " (" << fault::siteName(S) << " #" << Nth
          << "):\n" << Engine.render();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Benchmarks, FaultSweep, ::testing::Range(0, 12));

/// Reference kernels go through the same runtime, so they inject the same
/// way; spot-check one benchmark end to end.
TEST(FaultInjectTest, ReferenceKernelsInjectTheSameWay) {
  DisarmGuard Guard;
  BenchmarkCase Case = allBenchmarks(false)[0];
  RunOptions Run;
  Run.Threads = 1;

  fault::arm(fault::Site::BufferMap, 1);
  DiagnosticEngine Engine;
  Expected<Outcome> R = runReferenceChecked(Case, Run, Engine);
  fault::disarm();
  EXPECT_FALSE(bool(R));
  EXPECT_TRUE(hasCode(Engine, DiagCode::RuntimeFaultInjected))
      << Engine.render();
}

/// Pool bring-up failure is the one fault the runtime absorbs: the launch
/// falls back to serial execution, warns (E0509), and produces the same
/// bits the parallel run would have.
TEST(FaultInjectTest, PoolFailureDegradesToSerialWithIdenticalResults) {
  DisarmGuard Guard;
  bool SawFallbackWarning = false;
  for (int C = 0; C != 12; ++C) {
    BenchmarkCase Case = allBenchmarks(false)[C];

    RunOptions Parallel;
    Parallel.Threads = 4;
    DiagnosticEngine CleanEngine;
    Expected<Outcome> Clean =
        runLiftChecked(Case, OptConfig::Full, Parallel, CleanEngine);
    ASSERT_TRUE(bool(Clean)) << Case.Name << ":\n" << CleanEngine.render();

    // Keep pool bring-up down for the whole run: a single-shot fault
    // would be recovered by the bring-up retry policy (support/Retry.h),
    // so modelling a dead pool needs the persistent-outage mode. Stages
    // that consult the pool then degrade to serial (single-group stages
    // never consult it and are unaffected).
    fault::armAlways(fault::Site::PoolStart);
    DiagnosticEngine FaultEngine;
    Expected<Outcome> Degraded =
        runLiftChecked(Case, OptConfig::Full, Parallel, FaultEngine);
    fault::disarm();

    ASSERT_TRUE(bool(Degraded))
        << Case.Name << ": pool failure was not absorbed:\n"
        << FaultEngine.render();
    EXPECT_TRUE(Degraded->Valid) << Case.Name;
    EXPECT_EQ(Clean->Output, Degraded->Output)
        << Case.Name << ": serial fallback changed the results";
    EXPECT_FALSE(FaultEngine.hasErrors()) << FaultEngine.render();
    SawFallbackWarning |= hasCode(FaultEngine, DiagCode::RuntimePoolFallback);
  }
  // At least one benchmark runs multiple work-groups, so the fallback
  // must have fired — and warned — somewhere in the sweep.
  EXPECT_TRUE(SawFallbackWarning)
      << "no benchmark reported the E0509 serial-fallback warning";
}

/// Seeded probabilistic soak: under randomly injected faults every run
/// either completes with valid results (pool faults are absorbed) or
/// fails cleanly with an E0513 diagnostic — never a crash, hang or
/// corrupted output. The default sweep is small; the scheduled CI soak
/// job (tools/ci-soak.sh) widens it via LIFT_SOAK_SEEDS.
TEST(FaultSoak, SeededSweepSucceedsOrFailsCleanly) {
  DisarmGuard Guard;
  int Seeds = 6;
  if (const char *S = std::getenv("LIFT_SOAK_SEEDS")) {
    if (int V = std::atoi(S); V > 0)
      Seeds = V;
  }

  RunOptions Run;
  Run.Threads = 2;
  unsigned CleanFailures = 0;
  for (int Seed = 1; Seed <= Seeds; ++Seed) {
    BenchmarkCase Case =
        allBenchmarks(false)[static_cast<size_t>(Seed) % 12];
    ocl::fault::armSeeded(static_cast<uint64_t>(Seed));
    DiagnosticEngine Engine;
    Expected<Outcome> R = runLiftChecked(Case, OptConfig::Full, Run, Engine);
    fault::disarm();
    if (R) {
      // Any absorbed fault (serial pool fallback) must not have changed
      // the results.
      EXPECT_TRUE(R->Valid)
          << Case.Name << " (soak seed " << Seed
          << "): injected faults corrupted the results";
    } else {
      ++CleanFailures;
      // Setup-time faults surface as E0513, mid-execution faults
      // (barrier / group-dispatch checkpoints) as E0515.
      EXPECT_TRUE(hasCode(Engine, DiagCode::RuntimeFaultInjected) ||
                  hasCode(Engine, DiagCode::RuntimeFaultMidExec))
          << Case.Name << " (soak seed " << Seed
          << "): failed without the injection diagnostic:\n"
          << Engine.render();
    }
  }
  // At the widened CI-soak width (tools/ci-soak.sh runs 96 seeds) the
  // 1/64 per-site probability must have injected at least once; a soak
  // that never injects tests nothing. The 6-seed per-commit default is
  // too narrow to guarantee a hit, so it only checks the invariant.
  if (Seeds >= 64) {
    EXPECT_GT(CleanFailures, 0u)
        << "the seeded sweep never injected a fault";
  }
}

/// The native toolchain path injects the same way as the simulated
/// runtime: failing the system-compiler invocation, the dlopen or the
/// dlsym lookup each surfaces as a failed Expected with E0513, and the
/// simulator backend keeps working afterwards. Runs in the check tier
/// with a private cache directory (a warm cache would skip the compile
/// site) and skips cleanly when no system compiler is installed.
class NativeToolchainFaults : public ::testing::Test {
protected:
  std::string CacheDir;

  void SetUp() override {
    if (native::toolchainCompiler().empty())
      GTEST_SKIP() << "no system C++ compiler on PATH "
                      "(set LIFT_NATIVE_CXX to override)";
    // Per-process cache: concurrent ctest processes sharing a directory
    // would delete it from under each other's compiles.
    CacheDir = ::testing::TempDir() + "lift-fault-native-cache-" +
               std::to_string(::getpid());
    ::setenv("LIFT_NATIVE_CACHE_DIR", CacheDir.c_str(), 1);
  }

  void TearDown() override {
    fault::disarm();
    ::unsetenv("LIFT_NATIVE_CACHE_DIR");
    std::error_code EC;
    std::filesystem::remove_all(CacheDir, EC);
  }
};

TEST_F(NativeToolchainFaults, ToolchainSitesFailCleanly) {
  BenchmarkCase Case = allBenchmarks(false)[0];
  RunOptions Run;
  Run.Threads = 1;

  for (fault::Site S : {fault::Site::NativeCompile, fault::Site::NativeLoad,
                        fault::Site::NativeSym}) {
    // Each pass starts from a cold cache so every site is reachable.
    std::error_code EC;
    std::filesystem::remove_all(CacheDir, EC);

    // Persistent outage: toolchain invocations sit under the transient
    // retry policy, which recovers a single-shot arm(S, 1) on its second
    // attempt.
    fault::armAlways(S);
    DiagnosticEngine Engine;
    Expected<NativeOutcome> R =
        runLiftNativeChecked(Case, OptConfig::Full, Run, Engine);
    fault::disarm();
    EXPECT_FALSE(bool(R))
        << Case.Name << ": survived injected fault " << fault::siteName(S);
    EXPECT_TRUE(hasCode(Engine, DiagCode::RuntimeFaultInjected))
        << Case.Name << " (" << fault::siteName(S) << "):\n"
        << Engine.render();
  }

  // The simulator backend is untouched by native toolchain faults.
  DiagnosticEngine Engine;
  Expected<Outcome> Sim = runLiftChecked(Case, OptConfig::Full, Run, Engine);
  ASSERT_TRUE(bool(Sim)) << Case.Name << ":\n" << Engine.render();
  EXPECT_TRUE(Sim->Valid) << Case.Name;
}

/// Counting mode observes the pool-dispatch site on multi-threaded runs.
TEST(FaultInjectTest, CountingModeSeesPoolDispatch) {
  DisarmGuard Guard;
  RunOptions Run;
  Run.Threads = 4;
  fault::countOnly();
  uint64_t Pool = 0;
  for (int C = 0; C != 12 && Pool == 0; ++C) {
    BenchmarkCase Case = allBenchmarks(false)[C];
    DiagnosticEngine Engine;
    Expected<Outcome> R = runLiftChecked(Case, OptConfig::Full, Run, Engine);
    ASSERT_TRUE(bool(R)) << Case.Name << ":\n" << Engine.render();
    Pool = fault::occurrences(fault::Site::PoolStart);
  }
  fault::disarm();
  EXPECT_GT(Pool, 0u)
      << "multi-threaded launches never consulted the pool-dispatch site";
}

} // namespace
