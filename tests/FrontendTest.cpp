//===- FrontendTest.cpp - Tests for the Lift IL text frontend -----------------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses IL source, round-trips programs through the pretty printer, and
/// compiles/executes parsed programs against references.
///
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"
#include "arith/Bounds.h"
#include "frontend/ILParser.h"
#include "ir/Printer.h"
#include "support/Casting.h"

#include <gtest/gtest.h>

using namespace lift;
using namespace lift::ir;
using namespace lift::ir::dsl;
using namespace lift::test;

namespace {

TEST(FrontendTest, ParsesSimpleProgram) {
  frontend::ParsedProgram P = frontend::parseIL(R"(
def sq(x: float): float = "return x * x;"
fun(x: [float]N) => mapGlb0(sq)(x)
)");
  ASSERT_NE(P.Program, nullptr);
  EXPECT_EQ(P.Program->getParams().size(), 1u);
  EXPECT_EQ(P.SizeVars.count("N"), 1u);
  const auto *C = cast<FunCall>(P.Program->getBody().get());
  EXPECT_EQ(C->getFun()->getKind(), FunKind::MapGlb);
}

TEST(FrontendTest, ParsesTypes) {
  frontend::ParsedProgram P = frontend::parseIL(R"(
def f(p: (float, int)): float = "return p._0;"
fun(a: [[float]M]N, b: [float4]K, c: [(float, int)]N) => mapGlb0(f)(c)
)");
  const auto &Params = P.Program->getParams();
  EXPECT_EQ(typeToString(Params[0]->Ty), "[[float]M]N");
  EXPECT_EQ(typeToString(Params[1]->Ty), "[float4]K");
  EXPECT_EQ(typeToString(Params[2]->Ty), "[(float, int)]N");
}

TEST(FrontendTest, ParsesSizeArithmetic) {
  frontend::ParsedProgram P = frontend::parseIL(R"(
def sq(x: float): float = "return x * x;"
fun(x: [float]N*M, y: [float](N+2)) => mapGlb0(sq)(x)
)");
  const auto *A = cast<ArrayType>(P.Program->getParams()[0]->Ty.get());
  EXPECT_TRUE(arith::provablyEqual(
      A->getSize(), arith::mul(arith::Expr(P.SizeVars.at("N")),
                               arith::Expr(P.SizeVars.at("M")))));
}

TEST(FrontendTest, ParsedProgramExecutes) {
  frontend::ParsedProgram P = frontend::parseIL(R"(
def sq(x: float): float = "return x * x;"
fun(x: [float]N) => mapGlb0(sq)(x)
)");
  auto In = randomFloats(64, 31);
  auto R = runFloatProgram(P.Program, {In}, 64, {{"N", 64}},
                           optionsFor(OptLevel::Full, {16, 1, 1},
                                      {4, 1, 1}));
  std::vector<float> Ref;
  for (float V : In)
    Ref.push_back(V * V);
  EXPECT_LT(maxAbsError(R.Out, Ref), 1e-6);
}

TEST(FrontendTest, ParsesListing1DotProduct) {
  frontend::ParsedProgram P = frontend::parseIL(R"(
def multAndSumUp(acc: float, xy: (float, float)): float =
  "return acc + xy._0 * xy._1;"
def add(a: float, b: float): float = "return a + b;"
def idF(x: float): float = "return x;"

fun(x: [float]N, y: [float]N) =>
  join(mapWrg0(\(chunk) ->
    join(toGlobal(mapLcl0(mapSeq(idF)))(
      split(1)(
        iterate(6, \(arr) ->
          join(mapLcl0(\(two) ->
            toLocal(mapSeq(idF))(reduceSeq(add)(0.0f, two)))(
            split(2)(arr))))(
          join(mapLcl0(\(pair) ->
            toLocal(mapSeq(idF))(reduceSeq(multAndSumUp)(0.0f, pair)))(
            split(2)(chunk))))))))(
    split(128)(zip(x, y))))
)");
  // Compile and validate against the host dot product.
  const int64_t N = 1024;
  auto A = randomFloats(N, 32), B = randomFloats(N, 33);
  auto R = runFloatProgram(P.Program, {A, B}, N / 128, {{"N", N}},
                           optionsFor(OptLevel::Full, {512, 1, 1},
                                      {64, 1, 1}));
  std::vector<float> Ref(N / 128, 0.f);
  for (int64_t I = 0; I != N; ++I)
    Ref[I / 128] += A[I] * B[I];
  EXPECT_LT(maxAbsError(R.Out, Ref), 1e-3);
}

TEST(FrontendTest, PrinterRoundTrip) {
  // Print a program and parse the result back: the re-parsed program must
  // compile to the same kernel.
  const char *Src = R"(
def sq(x: float): float = "return x * x;"
def idF(x: float): float = "return x;"
fun(x: [float]N) =>
  join(mapWrg0(\(chunk) ->
    toGlobal(mapLcl0(sq))(toLocal(mapLcl0(idF))(chunk)))(
    split(16)(x)))
)";
  frontend::ParsedProgram P1 = frontend::parseIL(Src);
  std::string Printed = printProgram(P1.Program);
  // The printer emits only the program body; re-attach the definitions.
  std::string Round = "def sq(x: float): float = \"return x * x;\"\n"
                      "def idF(x: float): float = \"return x;\"\n" +
                      Printed;
  frontend::ParsedProgram P2 = frontend::parseIL(Round);

  codegen::CompilerOptions O;
  O.GlobalSize = {64, 1, 1};
  O.LocalSize = {16, 1, 1};
  codegen::CompiledKernel K1 = codegen::compile(P1.Program, O);
  codegen::CompiledKernel K2 = codegen::compile(P2.Program, O);
  // Identical modulo generated variable ids; compare structure counts.
  EXPECT_EQ(K1.BarriersEmitted, K2.BarriersEmitted);
  EXPECT_EQ(K1.LoopsEmitted, K2.LoopsEmitted);
  EXPECT_EQ(K1.Params.size(), K2.Params.size());
}

TEST(FrontendTest, LambdaLetBinding) {
  // (λ(t) -> body)(arg) names an intermediate.
  frontend::ParsedProgram P = frontend::parseIL(R"(
def sq(x: float): float = "return x * x;"
def idF(x: float): float = "return x;"
fun(x: [float]N) =>
  join(mapWrg0(\(chunk) ->
    (\(copied) -> toGlobal(mapLcl0(sq))(copied))(
      toLocal(mapLcl0(idF))(chunk)))(
    split(16)(x)))
)");
  auto In = randomFloats(32, 34);
  auto R = runFloatProgram(P.Program, {In}, 32, {{"N", 32}},
                           optionsFor(OptLevel::Full, {32, 1, 1},
                                      {16, 1, 1}));
  std::vector<float> Ref;
  for (float V : In)
    Ref.push_back(V * V);
  EXPECT_LT(maxAbsError(R.Out, Ref), 1e-6);
}

TEST(FrontendTest, GatherWithNamedIndexFunctions) {
  frontend::ParsedProgram P = frontend::parseIL(R"(
def idF(x: float): float = "return x;"
fun(x: [float]N) => mapGlb0(idF)(gather(reverse)(x))
)");
  auto In = randomFloats(16, 35);
  auto R = runFloatProgram(P.Program, {In}, 16, {{"N", 16}},
                           optionsFor(OptLevel::Full, {16, 1, 1},
                                      {4, 1, 1}));
  std::vector<float> Ref(In.rbegin(), In.rend());
  EXPECT_LT(maxAbsError(R.Out, Ref), 1e-6);
}

TEST(FrontendTest, CommentsAndWhitespace) {
  frontend::ParsedProgram P = frontend::parseIL(R"(
# hash comment
// slash comment
def sq(x: float): float = "return x * x;"

fun(x: [float]N) =>   mapSeq(sq)(x)
)");
  EXPECT_NE(P.Program, nullptr);
}

TEST(FrontendTest, ErrorsAreFatalWithLineNumbers) {
  EXPECT_DEATH(frontend::parseIL("fun(x: [float]N) => bogus(x)"),
               "unknown function 'bogus'");
  EXPECT_DEATH(frontend::parseIL("fun(x: [whatever]N) => x"),
               "unknown type");
  EXPECT_DEATH(frontend::parseIL("def f(x: float): float = 42"),
               "expected the C body");
}

} // namespace
