//===- FuzzTest.cpp - Differential fuzzing of the whole compiler --------------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates random well-typed Lift IL programs — pipelines of layout
/// patterns (split, join, gather, transpose, slide) feeding a nested map
/// of a compute function — compiles each at all three optimization levels,
/// executes on the simulated device and compares element-wise against a
/// host model that applies the same layout operations to shaped arrays.
/// This differentially tests the type system, views, simplifier, code
/// generator and interpreter together.
///
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"
#include "frontend/ILParser.h"
#include "ir/Printer.h"

#include <gtest/gtest.h>

#include <numeric>

using namespace lift;
using namespace lift::ir;
using namespace lift::ir::dsl;
using namespace lift::test;

namespace {

/// Deterministic small PRNG.
class Prng {
  uint64_t State;

public:
  explicit Prng(uint64_t Seed) : State(Seed * 2654435761u + 1) {}
  uint64_t next() {
    State ^= State << 13;
    State ^= State >> 7;
    State ^= State << 17;
    return State;
  }
  int64_t range(int64_t Lo, int64_t Hi) { // inclusive
    return Lo + static_cast<int64_t>(next() % static_cast<uint64_t>(
                                         Hi - Lo + 1));
  }
};

/// Host-side shaped array model: row-major data with an explicit shape.
struct Shaped {
  std::vector<int64_t> Shape; // outermost first
  std::vector<float> Data;   // row-major

  int64_t outer() const { return Shape.front(); }
  int64_t innerCount() const {
    int64_t N = 1;
    for (size_t I = 1; I != Shape.size(); ++I)
      N *= Shape[I];
    return N;
  }
};

Shaped hostSplit(const Shaped &A, int64_t Factor) {
  Shaped R = A;
  R.Shape.front() = Factor;
  R.Shape.insert(R.Shape.begin(), A.outer() / Factor);
  return R;
}

Shaped hostJoin(const Shaped &A) {
  Shaped R = A;
  int64_t Outer = R.Shape[0], Inner = R.Shape[1];
  R.Shape.erase(R.Shape.begin());
  R.Shape.front() = Outer * Inner;
  return R;
}

Shaped hostReverse(const Shaped &A) {
  Shaped R = A;
  int64_t Blocks = A.outer(), BlockSize = A.innerCount();
  for (int64_t B = 0; B != Blocks; ++B)
    for (int64_t I = 0; I != BlockSize; ++I)
      R.Data[static_cast<size_t>(B * BlockSize + I)] =
          A.Data[static_cast<size_t>((Blocks - 1 - B) * BlockSize + I)];
  return R;
}

Shaped hostTranspose(const Shaped &A) {
  Shaped R = A;
  int64_t O = A.Shape[0], I = A.Shape[1];
  int64_t Elem = 1;
  for (size_t D = 2; D != A.Shape.size(); ++D)
    Elem *= A.Shape[D];
  std::swap(R.Shape[0], R.Shape[1]);
  for (int64_t X = 0; X != O; ++X)
    for (int64_t Y = 0; Y != I; ++Y)
      for (int64_t E = 0; E != Elem; ++E)
        R.Data[static_cast<size_t>((Y * O + X) * Elem + E)] =
            A.Data[static_cast<size_t>((X * I + Y) * Elem + E)];
  return R;
}

Shaped hostSlide3(const Shaped &A) {
  // slide(3, 1) over the outer dimension: materialize the windows.
  Shaped R;
  int64_t O = A.outer(), Elem = A.innerCount();
  int64_t Windows = O - 2;
  R.Shape = A.Shape;
  R.Shape.front() = 3;
  R.Shape.insert(R.Shape.begin(), Windows);
  R.Data.resize(static_cast<size_t>(Windows * 3 * Elem));
  for (int64_t W = 0; W != Windows; ++W)
    for (int64_t J = 0; J != 3; ++J)
      for (int64_t E = 0; E != Elem; ++E)
        R.Data[static_cast<size_t>(((W * 3) + J) * Elem + E)] =
            A.Data[static_cast<size_t>((W + J) * Elem + E)];
  return R;
}

/// One random layout program and its host model, built side by side.
struct GeneratedProgram {
  LambdaPtr Program;
  std::vector<float> Input;
  std::vector<float> Expected;
  std::string Description;
};

GeneratedProgram generate(uint64_t Seed) {
  Prng Rng(Seed);
  const int64_t N = 48; // rich in divisors

  GeneratedProgram G;
  G.Input = randomFloats(N, Seed ^ 0x9e3779b9);

  Shaped Host;
  Host.Shape = {N};
  Host.Data = G.Input;

  ParamPtr X = param("x", arrayOf(float32(), arith::cst(N)));
  ExprPtr E = X;

  int Stages = static_cast<int>(Rng.range(1, 6));
  for (int S = 0; S != Stages; ++S) {
    bool Is2D = Host.Shape.size() >= 2;
    switch (Rng.range(0, Is2D ? 4 : 2)) {
    case 0: { // split outer
      std::vector<int64_t> Divisors;
      for (int64_t D = 2; D <= Host.outer(); ++D)
        if (Host.outer() % D == 0 && Host.outer() / D >= 1)
          Divisors.push_back(D);
      if (Divisors.empty())
        break;
      int64_t F = Divisors[static_cast<size_t>(
          Rng.range(0, static_cast<int64_t>(Divisors.size()) - 1))];
      E = pipe(E, split(F));
      Host = hostSplit(Host, F);
      G.Description += "split(" + std::to_string(F) + ") ";
      break;
    }
    case 1: // gather reverse (outer)
      E = pipe(E, gather(reverseIndex()));
      Host = hostReverse(Host);
      G.Description += "reverse ";
      break;
    case 2: // slide(3, 1) when the outer dim is big enough
      if (Host.outer() < 3 || Host.Shape.size() > 2)
        break;
      E = pipe(E, slide(3, 1));
      Host = hostSlide3(Host);
      G.Description += "slide ";
      break;
    case 3: // join
      E = pipe(E, join());
      Host = hostJoin(Host);
      G.Description += "join ";
      break;
    case 4: // transpose
      E = pipe(E, transpose());
      Host = hostTranspose(Host);
      G.Description += "transpose ";
      break;
    }
  }

  // Compute stage: square every element through nested maps matching the
  // current dimensionality (outer map parallel, inner maps sequential),
  // then flatten with joins.
  FunDeclPtr F = prelude::squareFun();
  for (size_t D = 1; D < Host.Shape.size(); ++D)
    F = mapSeq(F);
  E = pipe(E, mapGlb(F));
  for (size_t D = 1; D < Host.Shape.size(); ++D)
    E = pipe(E, join());

  G.Program = lambda({X}, E);
  G.Expected.reserve(Host.Data.size());
  for (float V : Host.Data)
    G.Expected.push_back(V * V);
  return G;
}

class FuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(FuzzTest, RandomLayoutPipelines) {
  GeneratedProgram G = generate(static_cast<uint64_t>(GetParam()));

  // Randomize the NDRange too: any local size must give the same result.
  Prng Rng(static_cast<uint64_t>(GetParam()) * 31 + 7);
  int64_t Local = int64_t(1) << Rng.range(1, 3);       // 2, 4, 8
  int64_t Global = Local * Rng.range(2, 6);

  for (OptLevel L :
       {OptLevel::None, OptLevel::BarrierCfs, OptLevel::Full}) {
    auto R = runFloatProgram(G.Program, {G.Input}, G.Expected.size(), {},
                             optionsFor(L, {Global, 1, 1}, {Local, 1, 1}));
    ASSERT_LT(maxAbsError(R.Out, G.Expected), 1e-5)
        << "seed " << GetParam() << " [" << optLevelName(L)
        << "] pipeline: " << G.Description << " ndrange " << Global << "/"
        << Local;
  }
}

TEST_P(FuzzTest, RandomZippedPipelines) {
  // The same random layout chain applied to two inputs, zipped and
  // multiplied: exercises ZipView under every layout combination.
  uint64_t Seed = static_cast<uint64_t>(GetParam()) ^ 0xbeef;
  GeneratedProgram G1 = generate(Seed); // provides the layout recipe

  // Rebuild the same chain applied to two parameters by re-generating
  // with the same seed but a fresh IR (generate is deterministic).
  Prng Rng(Seed);
  const int64_t N = 48;
  std::vector<float> InX = randomFloats(N, Seed ^ 0x9e3779b9);
  std::vector<float> InY = randomFloats(N, Seed ^ 0x51ed270);

  Shaped HostX{{N}, InX}, HostY{{N}, InY};
  ParamPtr X = param("x", arrayOf(float32(), arith::cst(N)));
  ParamPtr Y = param("y", arrayOf(float32(), arith::cst(N)));
  ExprPtr EX = X, EY = Y;

  int Stages = static_cast<int>(Rng.range(1, 6));
  for (int S = 0; S != Stages; ++S) {
    bool Is2D = HostX.Shape.size() >= 2;
    switch (Rng.range(0, Is2D ? 4 : 2)) {
    case 0: {
      std::vector<int64_t> Divisors;
      for (int64_t D = 2; D <= HostX.outer(); ++D)
        if (HostX.outer() % D == 0)
          Divisors.push_back(D);
      if (Divisors.empty())
        break;
      int64_t F = Divisors[static_cast<size_t>(
          Rng.range(0, static_cast<int64_t>(Divisors.size()) - 1))];
      EX = pipe(EX, split(F));
      EY = pipe(EY, split(F));
      HostX = hostSplit(HostX, F);
      HostY = hostSplit(HostY, F);
      break;
    }
    case 1:
      EX = pipe(EX, gather(reverseIndex()));
      EY = pipe(EY, gather(reverseIndex()));
      HostX = hostReverse(HostX);
      HostY = hostReverse(HostY);
      break;
    case 2:
      if (HostX.outer() < 3 || HostX.Shape.size() > 2)
        break;
      EX = pipe(EX, slide(3, 1));
      EY = pipe(EY, slide(3, 1));
      HostX = hostSlide3(HostX);
      HostY = hostSlide3(HostY);
      break;
    case 3:
      EX = pipe(EX, join());
      EY = pipe(EY, join());
      HostX = hostJoin(HostX);
      HostY = hostJoin(HostY);
      break;
    case 4:
      EX = pipe(EX, transpose());
      EY = pipe(EY, transpose());
      HostX = hostTranspose(HostX);
      HostY = hostTranspose(HostY);
      break;
    }
  }

  // Flatten both sides, zip, multiply pointwise.
  for (size_t D = 1; D < HostX.Shape.size(); ++D) {
    EX = pipe(EX, join());
    EY = pipe(EY, join());
  }
  ExprPtr E =
      pipe(call(zip(), {EX, EY}), mapGlb(prelude::multFun2Tuple()));
  LambdaPtr P = lambda({X, Y}, E);

  std::vector<float> Expected(HostX.Data.size());
  for (size_t I = 0; I != Expected.size(); ++I)
    Expected[I] = HostX.Data[I] * HostY.Data[I];

  for (OptLevel L : {OptLevel::None, OptLevel::Full}) {
    auto R = runFloatProgram(P, {InX, InY}, Expected.size(), {},
                             optionsFor(L, {16, 1, 1}, {4, 1, 1}));
    ASSERT_LT(maxAbsError(R.Out, Expected), 1e-5)
        << "seed " << GetParam() << " [" << optLevelName(L) << "]";
  }
  (void)G1;
}

TEST_P(FuzzTest, PrintParseRoundTrip) {
  // The pretty-printed form of every generated program must parse back
  // through the text frontend into an equivalent program.
  GeneratedProgram G = generate(static_cast<uint64_t>(GetParam()));
  std::string Printed = printProgram(G.Program);
  std::string Source =
      "def sq(x: float): float = \"return x * x;\"\n" + Printed;
  frontend::ParsedProgram P2 = frontend::parseIL(Source);

  auto R = runFloatProgram(P2.Program, {G.Input}, G.Expected.size(), {},
                           optionsFor(OptLevel::Full, {16, 1, 1},
                                      {4, 1, 1}));
  ASSERT_LT(maxAbsError(R.Out, G.Expected), 1e-5)
      << "seed " << GetParam() << " source:\n" << Source;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest, ::testing::Range(0, 150));

} // namespace
