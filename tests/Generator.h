//===- Generator.h - Random well-typed program generator --------*- C++ -*-===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The random well-typed program generator shared by the crash-resilience
/// fuzz tier (CrashFuzzTest.cpp) and the rule-soundness differential tier
/// (RuleSoundnessTest.cpp). Programs are built with the DSL over [float]48
/// inputs and span the value-producing combinators (per-row sequential
/// reductions, zip/get tuple pipelines), the vector combinators
/// (asVector / mapVec / asScalar) and random layout pipelines
/// (split / gather / join / transpose) closed by a map.
///
/// Two modes: GenMode::Lowered emits already-mapped programs (mapGlb on
/// the parallel dimension, mapSeq inside) that compile directly, for
/// crash-fuzzing the checked pipeline. GenMode::HighLevel emits portable
/// programs whose every map is the high-level `map`, for the rewrite
/// tiers: they are what rewrite::lowerProgram and the tuner consume, and
/// what the rule-soundness tier applies individual rules to.
///
//===----------------------------------------------------------------------===//

#ifndef LIFT_TESTS_GENERATOR_H
#define LIFT_TESTS_GENERATOR_H

#include "ir/DSL.h"
#include "ir/Prelude.h"

#include <cstdint>
#include <vector>

namespace lift {
namespace test {

/// Deterministic small PRNG (xorshift; same recurrence as FuzzTest).
class Prng {
  uint64_t State;

public:
  explicit Prng(uint64_t Seed) : State(Seed * 2654435761u + 1) {}
  uint64_t next() {
    State ^= State << 13;
    State ^= State >> 7;
    State ^= State << 17;
    return State;
  }
  int64_t range(int64_t Lo, int64_t Hi) { // inclusive
    return Lo + static_cast<int64_t>(next() % static_cast<uint64_t>(
                                         Hi - Lo + 1));
  }
};

/// Whether generated programs are already mapped onto the thread
/// hierarchy (Lowered) or use only the portable high-level `map`
/// (HighLevel, the input language of the rewrite rules and the tuner).
enum class GenMode { Lowered, HighLevel };

/// Builds a random well-typed program over [float]48 input(s). The draws
/// cover: a per-row sequential reduction over a random split; a zip of two
/// inputs consumed through a tuple (mapped pairwise, or projected with
/// get); a vectorized square (asVector(4) -> map(mapVec(sq)) -> asScalar);
/// and a random layout pipeline (split/gather/join/transpose) closed by a
/// map. \p OutCount receives the number of output floats; \p TwoInputs
/// tells the caller to bind a second input buffer.
inline ir::LambdaPtr generateWellTyped(uint64_t Seed, size_t &OutCount,
                                       bool &TwoInputs,
                                       GenMode Mode = GenMode::Lowered) {
  using namespace ir;
  using namespace ir::dsl;

  Prng Rng(Seed ^ 0xfeedface);
  const int64_t N = 48;
  TwoInputs = false;

  // The outermost data-parallel map: high-level `map` for the rewrite
  // tiers, mapGlb for directly-compilable programs.
  auto topMap = [&](FunDeclPtr F) {
    return Mode == GenMode::HighLevel ? map(std::move(F))
                                      : mapGlb(std::move(F));
  };

  ParamPtr X = param("x", arrayOf(float32(), arith::cst(N)));

  switch (Rng.range(0, 6)) {
  case 0: { // per-row sequential reduction over a random split
    const int64_t Divisors[] = {2, 3, 4, 6, 8, 12, 16, 24};
    int64_t F = Divisors[Rng.next() % 8];
    ExprPtr R = pipe(
        ExprPtr(X), split(F), topMap(fun([&](ExprPtr Row) {
          ExprPtr Red =
              call(reduceSeq(prelude::addFun()), {litFloat(0.0f), Row});
          // Copy the [float]1 reduction result out: the lowered spelling
          // writes it through toGlobal, the high-level one leaves the
          // address-space choice to the lowering.
          return Mode == GenMode::HighLevel
                     ? pipe(Red, map(prelude::idFloatFun()))
                     : pipe(Red, toGlobal(mapSeq(prelude::idFloatFun())));
        })),
        join());
    OutCount = static_cast<size_t>(N / F);
    return lambda({X}, R);
  }
  case 1: { // zip two inputs, consume the tuples
    TwoInputs = true;
    ParamPtr Y = param("y", arrayOf(float32(), arith::cst(N)));
    ExprPtr Zipped = call(zip(), {X, Y});
    ExprPtr R;
    if (Rng.range(0, 1) == 0) {
      // Multiply the pairs elementwise.
      R = pipe(Zipped, topMap(prelude::multFun2Tuple()));
    } else {
      // Project one side of each pair and square it.
      unsigned Side = static_cast<unsigned>(Rng.range(0, 1));
      R = pipe(Zipped, topMap(fun([&](ExprPtr Pair) {
                 return call(prelude::squareFun(),
                             {call(get(Side), {Pair})});
               })));
    }
    OutCount = static_cast<size_t>(N);
    return lambda({X, Y}, R);
  }
  case 2: { // vectorize: asVector(4) -> map(mapVec(sq)) -> asScalar
    ExprPtr E = X;
    // Half the draws reverse the array first, so the vector pipeline
    // also composes with a layout stage.
    if (Rng.range(0, 1) == 0)
      E = pipe(E, gather(reverseIndex()));
    // mapVec is applied at a call site inside a lambda (the form codegen
    // emits), not as a direct element function.
    ExprPtr R = pipe(E, asVector(4), topMap(fun([&](ExprPtr V) {
                       return call(mapVec(prelude::squareFun()), {V});
                     })),
                     asScalar());
    OutCount = static_cast<size_t>(N);
    return lambda({X}, R);
  }
  case 5: { // local-memory staging: copy each row to local, square out
    const int64_t Divisors[] = {4, 6, 8, 12};
    int64_t F = Divisors[Rng.next() % 4];
    ExprPtr R;
    if (Mode == GenMode::HighLevel) {
      // Portable spelling: the staging copy is the identity, so the
      // high-level program is just a nested square — the lowering (or an
      // applied rule) decides whether a local-memory stage appears.
      R = pipe(ExprPtr(X), split(F), map(map(prelude::squareFun())),
               join());
    } else {
      // Lowered spelling: one work-group per row stages the row into
      // local memory (a barrier on each side) and squares it back out to
      // global — the mapWrg/toLocal/mapLcl idiom of the paper's
      // benchmarks, and the native backend's barrier-fission stress.
      R = pipe(ExprPtr(X), split(F), mapWrg(fun([&](ExprPtr Row) {
                 return pipe(Row, toLocal(mapLcl(prelude::idFloatFun())),
                             toGlobal(mapLcl(prelude::squareFun())));
               })),
               join());
    }
    OutCount = static_cast<size_t>(N);
    return lambda({X}, R);
  }
  case 6: { // multi-stage iterate: per-row halving reduction (Listing 1)
    // Row width F and halving count K with F / 2^K the surviving partial
    // sums per row; every division stays exact for N = 48.
    struct Choice {
      int64_t F, Steps, Tail;
    };
    const Choice Choices[] = {{8, 3, 1}, {16, 4, 1}, {24, 3, 3}};
    const Choice Pick = Choices[Rng.next() % 3];
    ExprPtr R;
    if (Mode == GenMode::HighLevel) {
      // Portable spelling: iterate's fixpoint of pairwise additions is a
      // per-row reduction; the high-level program states the reduction
      // and leaves the halving schedule to the lowering. (Tail > 1 rows
      // reduce each Tail-wide sub-row.)
      R = pipe(ExprPtr(X), split(Pick.F / Pick.Tail),
               map(fun([&](ExprPtr Row) {
                 return pipe(call(reduceSeq(prelude::addFun()),
                                  {litFloat(0.0f), Row}),
                             map(prelude::idFloatFun()));
               })),
               join());
    } else {
      // Lowered spelling: one work-group per row stages into local
      // memory, then K iterate steps each split the array into adjacent
      // pairs, add them, and write the half-sized result back to local —
      // the multi-stage iterate pipeline of the paper's Listing 1, and
      // the densest barrier/back-edge checkpoint source the generator
      // has for the mid-execution fault sweep.
      R = pipe(ExprPtr(X), split(Pick.F), mapWrg(fun([&](ExprPtr Chunk) {
                 return pipe(
                     Chunk, toLocal(mapLcl(prelude::idFloatFun())),
                     iterate(Pick.Steps, fun([&](ExprPtr Arr) {
                               return pipe(
                                   Arr, split(2),
                                   mapLcl(fun([&](ExprPtr Two) {
                                     return pipe(
                                         call(reduceSeq(prelude::addFun()),
                                              {litFloat(0.0f), Two}),
                                         toLocal(mapSeq(
                                             prelude::idFloatFun())));
                                   })),
                                   join());
                             })),
                     split(1), toGlobal(mapLcl(mapSeq(prelude::idFloatFun()))),
                     join());
               })),
               join());
    }
    OutCount = static_cast<size_t>((N / Pick.F) * Pick.Tail);
    return lambda({X}, R);
  }
  default:
    break; // cases 3 and 4: the layout pipeline below
  }

  ExprPtr E = X;

  // Layout stages over the outer dimension, tracked as a shape list.
  std::vector<int64_t> Shape = {N};
  int Stages = static_cast<int>(Rng.range(0, 4));
  for (int S = 0; S != Stages; ++S) {
    switch (Rng.range(0, 3)) {
    case 0: { // split by a divisor of the outer dim
      std::vector<int64_t> Divisors;
      for (int64_t D = 2; D < Shape.front(); ++D)
        if (Shape.front() % D == 0)
          Divisors.push_back(D);
      if (Divisors.empty())
        break;
      int64_t F = Divisors[Rng.next() % Divisors.size()];
      int64_t Outer = Shape.front() / F;
      Shape.front() = F;
      Shape.insert(Shape.begin(), Outer);
      E = pipe(E, split(F));
      break;
    }
    case 1: // reverse the outer dimension
      E = pipe(E, gather(reverseIndex()));
      break;
    case 2: // join when 2D+
      if (Shape.size() < 2)
        break;
      E = pipe(E, join());
      Shape[1] *= Shape[0];
      Shape.erase(Shape.begin());
      break;
    case 3: // transpose when 2D+
      if (Shape.size() < 2)
        break;
      E = pipe(E, transpose());
      std::swap(Shape[0], Shape[1]);
      break;
    }
  }

  // Compute stage: square every scalar, sequentially (or with nested
  // high-level maps) below the outermost dimension.
  FunDeclPtr Sq = prelude::squareFun();
  for (size_t D = 1; D < Shape.size(); ++D)
    Sq = Mode == GenMode::HighLevel ? map(std::move(Sq))
                                    : mapSeq(std::move(Sq));
  E = pipe(E, topMap(Sq));
  for (size_t D = 1; D < Shape.size(); ++D)
    E = pipe(E, join());
  OutCount = static_cast<size_t>(N);
  return lambda({X}, E);
}

/// Builds a random well-typed two-stage pipeline graph in the textual
/// .liftg format (src/graph). Stage 1 is a random elementwise kernel over
/// [float]N; stage 2 is either another elementwise kernel (extent
/// preserved) or a 3-point sliding blur (extent shrinks by 2). Extents,
/// NDRanges and input seeds are drawn from \p Seed, always consistently:
/// every generated graph must parse, validate and run cleanly, and its
/// outputs must be bit-identical across thread counts. Fed through the
/// crash-fuzz tier both as-is and mutated.
inline std::string generatePipelineGraph(uint64_t Seed) {
  Prng Rng(Seed ^ 0x90a7f00d);

  static const char *const Bodies[] = {
      "return x * x;",
      "return x + 1.0f;",
      "return 2.0f * x - 0.25f;",
      "return x < 0.0f ? -x : x;",
      "return x * 0.5f + 2.0f;",
  };
  auto Elementwise = [&](const char *FnName) {
    std::string Body = Bodies[Rng.range(0, 4)];
    return std::string("def ") + FnName + "(x: float): float = \"" + Body +
           "\"\nfun(x: [float]N) =>\n  mapGlb0(" + FnName + ")(x)\n";
  };

  // Local divides global, global stays small so fuzz rounds are cheap.
  int64_t Local = 1 << Rng.range(1, 3);       // 2..8
  int64_t Global = Local << Rng.range(1, 3);  // x2..x8
  int64_t N = 16 * Rng.range(1, 8);           // 16..128
  bool Blur = Rng.range(0, 1) == 1;
  int64_t OutN = Blur ? N - 2 : N;
  uint64_t InSeed = static_cast<uint64_t>(Rng.range(1, 1 << 20));

  std::string G;
  G += "graph fuzz_pipe\n";
  G += "size N " + std::to_string(N) + "\n\n";
  G += "kernel k1 {{{\n" + Elementwise("f1") + "}}}\n\n";
  if (Blur)
    G += "kernel k2 {{{\n"
         "def add(a: float, b: float): float = \"return a + b;\"\n"
         "def third(x: float): float = \"return x * 0.333333343f;\"\n"
         "fun(x: [float]N) =>\n"
         "  join(mapGlb0(\\(w) -> mapSeq(third)(reduceSeq(add)(0.0f, w)))("
         "slide(3, 1)(x)))\n"
         "}}}\n\n";
  else
    G += "kernel k2 {{{\n" + Elementwise("f2") + "}}}\n\n";
  G += "buffer src[N] input init=random(" + std::to_string(InSeed) + ")\n";
  G += "buffer mid[N] scratch\n";
  G += "buffer dst[" + std::to_string(OutN) + "] output\n\n";
  G += "stage s1 kernel=k1 in=src out=mid global=" + std::to_string(Global) +
       " local=" + std::to_string(Local) + " N=" + std::to_string(N) + "\n";
  G += "stage s2 kernel=k2 in=mid out=dst global=" + std::to_string(Global) +
       " local=" + std::to_string(Local) + " N=" + std::to_string(N) + "\n";
  return G;
}

} // namespace test
} // namespace lift

#endif // LIFT_TESTS_GENERATOR_H
