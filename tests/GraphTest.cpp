//===- GraphTest.cpp - Pipeline-graph subsystem tests ---------------------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pipeline-graph layer (src/graph, docs/PIPELINES.md): the .liftg
/// parser and validator's E08xx diagnostics table-driven over malformed
/// graphs, the committed example workloads bit-identical across 1/2/8
/// threads and across the simulator and exact-mode native backend,
/// buffer liveness/reuse shrinking the host high-water mark with
/// unchanged outputs, graph-wide budgets and cancellation unwinding
/// mid-graph naming the tripped stage, the GraphStageDispatch /
/// GraphBufferReuse fault sites swept first/middle/last, failed-producer
/// poisoning of dependents, guarded-memory runs across stage boundaries,
/// and iterate-until-convergence nodes (including the E0812 exhaustion
/// warning).
///
//===----------------------------------------------------------------------===//

#include "graph/GraphExec.h"
#include "native/Native.h"
#include "ocl/FaultInject.h"

#include <gtest/gtest.h>

#include <atomic>
#include <fstream>
#include <sstream>

using namespace lift;
using namespace lift::graph;

namespace {

std::string readExample(const std::string &Name) {
  std::string Path = std::string(LIFT_GRAPH_EXAMPLES_DIR) + "/" + Name;
  std::ifstream In(Path);
  EXPECT_TRUE(In.good()) << "missing example: " << Path;
  std::stringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

/// Parses + validates; returns the first error code recorded (0 = none).
unsigned firstErrorCode(const std::string &Text) {
  DiagnosticEngine Engine;
  Expected<Graph> G = parseGraphChecked(Text, Engine);
  if (G)
    validateGraph(*G, Engine);
  for (const Diagnostic &D : Engine.diagnostics())
    if (D.Severity == DiagSeverity::Error)
      return static_cast<unsigned>(D.Code);
  return 0;
}

Expected<ValidatedGraph> validated(const std::string &Text,
                                   DiagnosticEngine &Engine) {
  Expected<Graph> G = parseGraphChecked(Text, Engine);
  if (!G)
    return {};
  return validateGraph(*G, Engine);
}

bool hasCode(const DiagnosticEngine &Engine, DiagCode Code,
             const std::string &Needle = "") {
  for (const Diagnostic &D : Engine.diagnostics())
    if (D.Code == Code &&
        (Needle.empty() || D.Message.find(Needle) != std::string::npos))
      return true;
  return false;
}

std::string renderAll(const DiagnosticEngine &Engine) {
  std::string Out;
  for (const Diagnostic &D : Engine.diagnostics())
    Out += D.render() + "\n";
  return Out;
}

// A minimal two-stage elementwise pipeline used by the budget, fault and
// DSL tests: square then affine, N = 32.
const char *TwoStageText = R"(
graph two_stage
size N 32

kernel sq {{{
def sq(x: float): float = "return x * x;"

fun(x: [float]N) =>
  mapGlb0(sq)(x)
}}}

kernel tri {{{
def tri(x: float): float = "return 3.0f * x + 1.0f;"

fun(x: [float]N) =>
  mapGlb0(tri)(x)
}}}

buffer src[N] input init=random(5)
buffer mid[N] scratch
buffer dst[N] output

stage s1 kernel=sq  in=src out=mid global=8 local=4 N=32
stage s2 kernel=tri in=mid out=dst global=8 local=4 N=32
)";

//===----------------------------------------------------------------------===//
// Parser and validator diagnostics
//===----------------------------------------------------------------------===//

struct BadGraphCase {
  const char *Label;
  const char *Text;
  DiagCode Want;
};

class GraphDiagnostics : public ::testing::TestWithParam<BadGraphCase> {};

const BadGraphCase BadGraphs[] = {
    {"missing_header", "size N 4\n", DiagCode::GraphParse},
    {"unterminated_kernel",
     "graph g\nkernel k {{{\nfun(x: [float]N) => mapGlb0(sq)(x)\n",
     DiagCode::GraphParse},
    {"bad_extent", "graph g\nbuffer a[0] input\n", DiagCode::GraphParse},
    {"unknown_const_in_extent", "graph g\nbuffer a[M] input\n",
     DiagCode::GraphParse},
    {"stage_without_kernel", "graph g\nbuffer a[4] output\nstage s in=a\n",
     DiagCode::GraphParse},
    {"duplicate_size", "graph g\nsize N 4\nsize N 8\n",
     DiagCode::GraphDuplicateName},
    {"duplicate_buffer", "graph g\nbuffer a[4] input\nbuffer a[4] output\n",
     DiagCode::GraphDuplicateName},
    {"duplicate_stage",
     "graph g\n"
     "kernel k {{{\ndef f(x: float): float = \"return x;\"\n"
     "fun(x: [float]N) => mapGlb0(f)(x)\n}}}\n"
     "buffer a[4] input\nbuffer b[4] scratch\nbuffer c[4] output\n"
     "stage s kernel=k in=a out=b global=4 local=4 N=4\n"
     "stage s kernel=k in=b out=c global=4 local=4 N=4\n",
     DiagCode::GraphDuplicateName},
    {"unknown_kernel",
     "graph g\nbuffer a[4] input\nbuffer b[4] output\n"
     "stage s kernel=nope in=a out=b global=4 local=4\n",
     DiagCode::GraphUnknownName},
    {"unknown_buffer",
     "graph g\n"
     "kernel k {{{\ndef f(x: float): float = \"return x;\"\n"
     "fun(x: [float]N) => mapGlb0(f)(x)\n}}}\n"
     "buffer b[4] output\n"
     "stage s kernel=k in=nope out=b global=4 local=4 N=4\n",
     DiagCode::GraphUnknownName},
    {"kernel_does_not_compile",
     "graph g\nkernel k {{{\nfun(x: [float]N => broken(\n}}}\n"
     "buffer a[4] input\nbuffer b[4] output\n"
     "stage s kernel=k in=a out=b global=4 local=4 N=4\n",
     DiagCode::GraphKernelInvalid},
    {"bad_ndrange",
     "graph g\n"
     "kernel k {{{\ndef f(x: float): float = \"return x;\"\n"
     "fun(x: [float]N) => mapGlb0(f)(x)\n}}}\n"
     "buffer a[4] input\nbuffer b[4] output\n"
     "stage s kernel=k in=a out=b global=6 local=4 N=4\n",
     DiagCode::GraphShapeMismatch},
    {"unbound_size_var",
     "graph g\n"
     "kernel k {{{\ndef f(x: float): float = \"return x;\"\n"
     "fun(x: [float]N) => mapGlb0(f)(x)\n}}}\n"
     "buffer a[4] input\nbuffer b[4] output\n"
     "stage s kernel=k in=a out=b global=4 local=4\n",
     DiagCode::GraphShapeMismatch},
    {"extent_mismatch",
     "graph g\n"
     "kernel k {{{\ndef f(x: float): float = \"return x;\"\n"
     "fun(x: [float]N) => mapGlb0(f)(x)\n}}}\n"
     "buffer a[8] input\nbuffer b[4] output\n"
     "stage s kernel=k in=a out=b global=4 local=4 N=4\n",
     DiagCode::GraphShapeMismatch},
    {"arity_mismatch",
     "graph g\n"
     "kernel k {{{\ndef f(x: float): float = \"return x;\"\n"
     "fun(x: [float]N) => mapGlb0(f)(x)\n}}}\n"
     "buffer a[4] input\nbuffer b[4] input\nbuffer c[4] output\n"
     "stage s kernel=k in=a,b out=c global=4 local=4 N=4\n",
     DiagCode::GraphShapeMismatch},
    {"consumed_without_producer",
     "graph g\n"
     "kernel k {{{\ndef f(x: float): float = \"return x;\"\n"
     "fun(x: [float]N) => mapGlb0(f)(x)\n}}}\n"
     "buffer a[4] scratch\nbuffer b[4] output\n"
     "stage s kernel=k in=a out=b global=4 local=4 N=4\n",
     DiagCode::GraphUnproducedBuffer},
    {"output_without_producer",
     "graph g\n"
     "kernel k {{{\ndef f(x: float): float = \"return x;\"\n"
     "fun(x: [float]N) => mapGlb0(f)(x)\n}}}\n"
     "buffer a[4] input\nbuffer b[4] scratch\nbuffer c[4] output\n"
     "stage s kernel=k in=a out=b global=4 local=4 N=4\n",
     DiagCode::GraphUnproducedBuffer},
    {"in_place_hazard",
     "graph g\n"
     "kernel k {{{\ndef f(x: float): float = \"return x;\"\n"
     "fun(x: [float]N) => mapGlb0(f)(x)\n}}}\n"
     "buffer a[4] scratch\n"
     "stage s kernel=k in=a out=a global=4 local=4 N=4\n",
     DiagCode::GraphCycle},
    {"two_stage_cycle",
     "graph g\n"
     "kernel k {{{\ndef f(x: float): float = \"return x;\"\n"
     "fun(x: [float]N) => mapGlb0(f)(x)\n}}}\n"
     "buffer a[4] scratch\nbuffer b[4] scratch\n"
     "stage s1 kernel=k in=a out=b global=4 local=4 N=4\n"
     "stage s2 kernel=k in=b out=a global=4 local=4 N=4\n",
     DiagCode::GraphCycle},
    {"two_writers",
     "graph g\n"
     "kernel k {{{\ndef f(x: float): float = \"return x;\"\n"
     "fun(x: [float]N) => mapGlb0(f)(x)\n}}}\n"
     "buffer a[4] input\nbuffer b[4] output\n"
     "stage s1 kernel=k in=a out=b global=4 local=4 N=4\n"
     "stage s2 kernel=k in=a out=b global=4 local=4 N=4\n",
     DiagCode::GraphMultipleWriters},
    {"write_to_input",
     "graph g\n"
     "kernel k {{{\ndef f(x: float): float = \"return x;\"\n"
     "fun(x: [float]N) => mapGlb0(f)(x)\n}}}\n"
     "buffer a[4] input\nbuffer b[4] input\n"
     "stage s kernel=k in=a out=b global=4 local=4 N=4\n",
     DiagCode::GraphMultipleWriters},
    {"iterate_compare_mismatch",
     "graph g\n"
     "kernel k {{{\ndef f(x: float): float = \"return x;\"\n"
     "fun(x: [float]N) => mapGlb0(f)(x)\n}}}\n"
     "buffer a[4] input\nbuffer b[8] output\nbuffer c[4] output\n"
     "iterate it max=2 eps=0.1 compare=a,b swap=a:c {\n"
     "stage s kernel=k in=a out=c global=4 local=4 N=4\n"
     "}\n",
     DiagCode::GraphShapeMismatch},
};

TEST_P(GraphDiagnostics, RejectsWithStableCode) {
  const BadGraphCase &C = GetParam();
  EXPECT_EQ(firstErrorCode(C.Text), static_cast<unsigned>(C.Want))
      << C.Label << ":\n"
      << C.Text;
}

INSTANTIATE_TEST_SUITE_P(Table, GraphDiagnostics,
                         ::testing::ValuesIn(BadGraphs),
                         [](const auto &Info) {
                           return std::string(Info.param.Label);
                         });

TEST(GraphValidate, ReportsSeveralErrorsInOnePass) {
  // A graph with two independent mistakes surfaces both, not just the
  // first: validation keeps going.
  DiagnosticEngine Engine;
  std::string Text =
      "graph g\n"
      "kernel k {{{\ndef f(x: float): float = \"return x;\"\n"
      "fun(x: [float]N) => mapGlb0(f)(x)\n}}}\n"
      "buffer a[4] input\nbuffer b[4] output\nbuffer c[4] output\n"
      "stage s1 kernel=nope in=a out=b global=4 local=4 N=4\n"
      "stage s2 kernel=k in=a out=c global=6 local=4 N=4\n";
  EXPECT_FALSE(validated(Text, Engine));
  EXPECT_TRUE(hasCode(Engine, DiagCode::GraphUnknownName))
      << renderAll(Engine);
  EXPECT_TRUE(hasCode(Engine, DiagCode::GraphShapeMismatch))
      << renderAll(Engine);
}

//===----------------------------------------------------------------------===//
// Execution: determinism across threads and backends
//===----------------------------------------------------------------------===//

const char *ExampleFiles[] = {"stencil_chain.liftg", "matmul_bias.liftg",
                              "jacobi.liftg", "kmeans_loop.liftg"};

class GraphExamples : public ::testing::TestWithParam<const char *> {};

TEST_P(GraphExamples, ValidatesCleanly) {
  DiagnosticEngine Engine;
  EXPECT_TRUE(validated(readExample(GetParam()), Engine))
      << renderAll(Engine);
}

TEST_P(GraphExamples, BitIdenticalAcrossThreadCounts) {
  DiagnosticEngine Engine;
  Expected<ValidatedGraph> VG = validated(readExample(GetParam()), Engine);
  ASSERT_TRUE(VG) << renderAll(Engine);

  std::map<std::string, std::vector<float>> Ref;
  for (int Threads : {1, 2, 8}) {
    GraphRunOptions GO;
    GO.Threads = Threads;
    DiagnosticEngine RunEngine;
    Expected<GraphRunResult> R = runGraph(*VG, GO, RunEngine);
    ASSERT_TRUE(R) << "threads=" << Threads << "\n" << renderAll(RunEngine);
    if (Threads == 1)
      Ref = R->Outputs;
    else
      EXPECT_EQ(Ref, R->Outputs) << "threads=" << Threads;
  }
}

TEST_P(GraphExamples, NativeExactMatchesSimulator) {
  if (native::toolchainCompiler().empty())
    GTEST_SKIP() << "no system compiler installed";
  DiagnosticEngine Engine;
  Expected<ValidatedGraph> VG = validated(readExample(GetParam()), Engine);
  ASSERT_TRUE(VG) << renderAll(Engine);

  GraphRunOptions Sim;
  DiagnosticEngine SimEngine;
  Expected<GraphRunResult> SR = runGraph(*VG, Sim, SimEngine);
  ASSERT_TRUE(SR) << renderAll(SimEngine);

  GraphRunOptions Nat;
  Nat.NativeBackend = true;
  DiagnosticEngine NatEngine;
  Expected<GraphRunResult> NR = runGraph(*VG, Nat, NatEngine);
  ASSERT_TRUE(NR) << renderAll(NatEngine);
  EXPECT_EQ(SR->Outputs, NR->Outputs);
}

TEST_P(GraphExamples, MemoryCleanAcrossStageBoundaries) {
  // Init bitmaps persist across launches, so a multi-stage run under the
  // memory checker must be finding-free end to end — including the
  // scratch buffers written by one stage and read by the next, and the
  // recycled allocations (whose bitmaps are reset on reuse).
  DiagnosticEngine Engine;
  Expected<ValidatedGraph> VG = validated(readExample(GetParam()), Engine);
  ASSERT_TRUE(VG) << renderAll(Engine);
  GraphRunOptions GO;
  GO.CheckMemory = true;
  DiagnosticEngine RunEngine;
  Expected<GraphRunResult> R = runGraph(*VG, GO, RunEngine);
  EXPECT_TRUE(R) << renderAll(RunEngine);
}

INSTANTIATE_TEST_SUITE_P(Examples, GraphExamples,
                         ::testing::ValuesIn(ExampleFiles),
                         [](const auto &Info) {
                           std::string S = Info.param;
                           return S.substr(0, S.find('.'));
                         });

//===----------------------------------------------------------------------===//
// Buffer liveness and reuse
//===----------------------------------------------------------------------===//

TEST(GraphReuse, ReuseShrinksPeakWithIdenticalOutputs) {
  DiagnosticEngine Engine;
  Expected<ValidatedGraph> VG =
      validated(readExample("stencil_chain.liftg"), Engine);
  ASSERT_TRUE(VG) << renderAll(Engine);

  GraphRunOptions Naive;
  Naive.ReuseBuffers = false;
  DiagnosticEngine E1;
  Expected<GraphRunResult> RN = runGraph(*VG, Naive, E1);
  ASSERT_TRUE(RN) << renderAll(E1);
  EXPECT_EQ(RN->BuffersRecycled, 0u);
  EXPECT_EQ(RN->BuffersFreed, 0u);

  GraphRunOptions Reuse;
  DiagnosticEngine E2;
  Expected<GraphRunResult> RR = runGraph(*VG, Reuse, E2);
  ASSERT_TRUE(RR) << renderAll(E2);

  EXPECT_EQ(RN->Outputs, RR->Outputs);
  // mid1 dies after s2 and is recycled as s3's output; the peak shrinks.
  EXPECT_GE(RR->BuffersRecycled, 1u);
  EXPECT_LT(RR->PeakHostBytes, RN->PeakHostBytes);
}

TEST(GraphReuse, DslBuilderMatchesTextualGraph) {
  // The same two-stage pipeline built through the C++ DSL and parsed
  // from text must validate identically and produce identical outputs.
  DiagnosticEngine E1;
  Expected<ValidatedGraph> FromText = validated(TwoStageText, E1);
  ASSERT_TRUE(FromText) << renderAll(E1);

  const char *SqIl = "def sq(x: float): float = \"return x * x;\"\n"
                     "fun(x: [float]N) =>\n  mapGlb0(sq)(x)\n";
  const char *TriIl = "def tri(x: float): float = \"return 3.0f * x + 1.0f;\"\n"
                      "fun(x: [float]N) =>\n  mapGlb0(tri)(x)\n";
  InitSpec Rand;
  Rand.K = InitSpec::Kind::Random;
  Rand.Seed = 5;
  StageDecl S1;
  S1.Name = "s1";
  S1.Kernel = "sq";
  S1.Ins = {"src"};
  S1.Outs = {"mid"};
  S1.Global = {8, 1, 1};
  S1.Local = {4, 1, 1};
  S1.Sizes["N"] = 32;
  StageDecl S2 = S1;
  S2.Name = "s2";
  S2.Kernel = "tri";
  S2.Ins = {"mid"};
  S2.Outs = {"dst"};
  Graph G = GraphBuilder("two_stage")
                .constant("N", 32)
                .kernel("sq", SqIl)
                .kernel("tri", TriIl)
                .input("src", 32, Rand)
                .scratch("mid", 32)
                .output("dst", 32)
                .stage(S1)
                .stage(S2)
                .build();
  DiagnosticEngine E2;
  Expected<ValidatedGraph> FromDsl = validateGraph(G, E2);
  ASSERT_TRUE(FromDsl) << renderAll(E2);

  GraphRunOptions GO;
  DiagnosticEngine E3, E4;
  Expected<GraphRunResult> RT = runGraph(*FromText, GO, E3);
  Expected<GraphRunResult> RD = runGraph(*FromDsl, GO, E4);
  ASSERT_TRUE(RT) << renderAll(E3);
  ASSERT_TRUE(RD) << renderAll(E4);
  EXPECT_EQ(RT->Outputs, RD->Outputs);
}

TEST(GraphReuse, HostBindingsOverrideInputs) {
  DiagnosticEngine Engine;
  Expected<ValidatedGraph> VG = validated(TwoStageText, Engine);
  ASSERT_TRUE(VG) << renderAll(Engine);

  GraphRunOptions GO;
  GO.Bindings["src"] = std::vector<float>(32, 2.0f);
  DiagnosticEngine E1;
  Expected<GraphRunResult> R = runGraph(*VG, GO, E1);
  ASSERT_TRUE(R) << renderAll(E1);
  // (2^2) * 3 + 1 = 13 everywhere.
  for (float V : R->Outputs.at("dst"))
    EXPECT_FLOAT_EQ(V, 13.0f);

  GraphRunOptions Bad;
  Bad.Bindings["src"] = std::vector<float>(31, 2.0f);
  DiagnosticEngine E2;
  EXPECT_FALSE(runGraph(*VG, Bad, E2));
  EXPECT_TRUE(hasCode(E2, DiagCode::GraphShapeMismatch)) << renderAll(E2);
}

TEST(GraphReuse, ConcurrentWavesMatchSerial) {
  // Two independent stages consuming the same input may dispatch in one
  // wave; the outputs must not change.
  const char *Text = R"(
graph fanout
size N 32

kernel sq {{{
def sq(x: float): float = "return x * x;"

fun(x: [float]N) =>
  mapGlb0(sq)(x)
}}}

kernel tri {{{
def tri(x: float): float = "return 3.0f * x + 1.0f;"

fun(x: [float]N) =>
  mapGlb0(tri)(x)
}}}

buffer src[N] input init=random(5)
buffer a[N] output
buffer b[N] output

stage s1 kernel=sq  in=src out=a global=8 local=4 N=32
stage s2 kernel=tri in=src out=b global=8 local=4 N=32
)";
  DiagnosticEngine Engine;
  Expected<ValidatedGraph> VG = validated(Text, Engine);
  ASSERT_TRUE(VG) << renderAll(Engine);

  GraphRunOptions Serial;
  DiagnosticEngine E1;
  Expected<GraphRunResult> RS = runGraph(*VG, Serial, E1);
  ASSERT_TRUE(RS) << renderAll(E1);

  GraphRunOptions Waved;
  Waved.MaxConcurrentStages = 2;
  DiagnosticEngine E2;
  Expected<GraphRunResult> RW = runGraph(*VG, Waved, E2);
  ASSERT_TRUE(RW) << renderAll(E2);
  EXPECT_EQ(RS->Outputs, RW->Outputs);
}

//===----------------------------------------------------------------------===//
// Graph-wide budgets and cancellation
//===----------------------------------------------------------------------===//

TEST(GraphLimits, StepBudgetSharedAcrossStages) {
  DiagnosticEngine Engine;
  Expected<ValidatedGraph> VG = validated(TwoStageText, Engine);
  ASSERT_TRUE(VG) << renderAll(Engine);

  // Measure stage 1's exact step count under a generous budget.
  GraphRunOptions Wide;
  Wide.Limits.MaxSteps = 100000000;
  DiagnosticEngine E1;
  Expected<GraphRunResult> R1 = runGraph(*VG, Wide, E1);
  ASSERT_TRUE(R1) << renderAll(E1);
  ASSERT_EQ(R1->Stages.size(), 2u);
  uint64_t S1 = R1->Stages[0].StepsUsed;
  ASSERT_GT(S1, 0u);

  // A budget that exactly covers stage 1 leaves nothing for stage 2: the
  // graph-wide gate trips *before* the second dispatch, naming it.
  GraphRunOptions Tight;
  Tight.Limits.MaxSteps = S1;
  DiagnosticEngine E2;
  EXPECT_FALSE(runGraph(*VG, Tight, E2));
  EXPECT_TRUE(hasCode(E2, DiagCode::RuntimeStepLimit, "before stage 's2'"))
      << renderAll(E2);

  // A budget one step past stage 1 lets stage 2 start but not finish:
  // the launch itself trips and the failure names the stage.
  GraphRunOptions Barely;
  Barely.Limits.MaxSteps = S1 + 1;
  DiagnosticEngine E3;
  EXPECT_FALSE(runGraph(*VG, Barely, E3));
  EXPECT_TRUE(hasCode(E3, DiagCode::GraphStageFailed, "stage 's2'"))
      << renderAll(E3);
}

TEST(GraphLimits, CancellationUnwindsBeforeFirstStage) {
  DiagnosticEngine Engine;
  Expected<ValidatedGraph> VG = validated(TwoStageText, Engine);
  ASSERT_TRUE(VG) << renderAll(Engine);

  std::atomic<bool> Cancel{true};
  GraphRunOptions GO;
  GO.Limits.Cancel = &Cancel;
  DiagnosticEngine E1;
  EXPECT_FALSE(runGraph(*VG, GO, E1));
  EXPECT_TRUE(hasCode(E1, DiagCode::RuntimeCancelled, "stage 's1'"))
      << renderAll(E1);
}

TEST(GraphLimits, MemoryBudgetCoversBuffers) {
  DiagnosticEngine Engine;
  Expected<ValidatedGraph> VG = validated(TwoStageText, Engine);
  ASSERT_TRUE(VG) << renderAll(Engine);

  GraphRunOptions GO;
  GO.Limits.MaxMemoryBytes = 64; // far below one 32-element buffer
  DiagnosticEngine E1;
  EXPECT_FALSE(runGraph(*VG, GO, E1));
  EXPECT_TRUE(hasCode(E1, DiagCode::RuntimeMemoryLimit)) << renderAll(E1);
}

//===----------------------------------------------------------------------===//
// Fault injection and failure propagation
//===----------------------------------------------------------------------===//

struct FaultGuard {
  ~FaultGuard() { ocl::fault::disarm(); }
};

TEST(GraphFaults, StageDispatchSweptFirstMiddleLast) {
  FaultGuard Guard;
  DiagnosticEngine Engine;
  Expected<ValidatedGraph> VG =
      validated(readExample("stencil_chain.liftg"), Engine);
  ASSERT_TRUE(VG) << renderAll(Engine);

  // Counting pass: the stencil chain dispatches four stages.
  ocl::fault::countOnly();
  GraphRunOptions GO;
  DiagnosticEngine E0;
  ASSERT_TRUE(runGraph(*VG, GO, E0)) << renderAll(E0);
  uint64_t N =
      ocl::fault::occurrences(ocl::fault::Site::GraphStageDispatch);
  ASSERT_EQ(N, 4u);

  for (uint64_t Nth : {uint64_t(1), (N + 1) / 2, N}) {
    ocl::fault::arm(ocl::fault::Site::GraphStageDispatch, Nth);
    DiagnosticEngine E1;
    EXPECT_FALSE(runGraph(*VG, GO, E1)) << "nth=" << Nth;
    EXPECT_TRUE(hasCode(E1, DiagCode::GraphFaultInjected, "stage dispatch"))
        << "nth=" << Nth << "\n"
        << renderAll(E1);
  }
}

TEST(GraphFaults, BufferReuseSweptAndCountable) {
  FaultGuard Guard;
  DiagnosticEngine Engine;
  Expected<ValidatedGraph> VG =
      validated(readExample("stencil_chain.liftg"), Engine);
  ASSERT_TRUE(VG) << renderAll(Engine);

  ocl::fault::countOnly();
  GraphRunOptions GO;
  DiagnosticEngine E0;
  ASSERT_TRUE(runGraph(*VG, GO, E0)) << renderAll(E0);
  uint64_t N = ocl::fault::occurrences(ocl::fault::Site::GraphBufferReuse);
  ASSERT_GE(N, 1u);

  for (uint64_t Nth = 1; Nth <= N; ++Nth) {
    ocl::fault::arm(ocl::fault::Site::GraphBufferReuse, Nth);
    DiagnosticEngine E1;
    EXPECT_FALSE(runGraph(*VG, GO, E1)) << "nth=" << Nth;
    EXPECT_TRUE(hasCode(E1, DiagCode::GraphFaultInjected, "buffer reuse"))
        << "nth=" << Nth << "\n"
        << renderAll(E1);
  }

  // The naive executor never recycles, so the site never fires there.
  ocl::fault::armAlways(ocl::fault::Site::GraphBufferReuse);
  GraphRunOptions Naive;
  Naive.ReuseBuffers = false;
  DiagnosticEngine E2;
  EXPECT_TRUE(runGraph(*VG, Naive, E2)) << renderAll(E2);
}

TEST(GraphFaults, FailedProducerPoisonsDependentsDeterministically) {
  FaultGuard Guard;
  DiagnosticEngine Engine;
  Expected<ValidatedGraph> VG =
      validated(readExample("stencil_chain.liftg"), Engine);
  ASSERT_TRUE(VG) << renderAll(Engine);

  // Kill stage s2; with keep-going the run continues, and s3 (which
  // consumes s2's output) must fail deterministically naming s2.
  ocl::fault::arm(ocl::fault::Site::GraphStageDispatch, 2);
  GraphRunOptions GO;
  GO.KeepGoing = true;
  DiagnosticEngine E1;
  EXPECT_FALSE(runGraph(*VG, GO, E1));
  EXPECT_TRUE(hasCode(E1, DiagCode::GraphFaultInjected)) << renderAll(E1);
  EXPECT_TRUE(hasCode(E1, DiagCode::GraphPoisonedInput, "stage 's2'"))
      << renderAll(E1);
}

TEST(GraphFaults, MidLaunchFaultFailsTheStageByName) {
  FaultGuard Guard;
  DiagnosticEngine Engine;
  Expected<ValidatedGraph> VG = validated(TwoStageText, Engine);
  ASSERT_TRUE(VG) << renderAll(Engine);

  // A mid-execution checkpoint fault inside stage 2's launch: the E0515
  // cancellation surfaces wrapped in E0809 naming the stage.
  ocl::fault::arm(ocl::fault::Site::GroupDispatch, 3);
  GraphRunOptions GO;
  DiagnosticEngine E1;
  EXPECT_FALSE(runGraph(*VG, GO, E1));
  EXPECT_TRUE(hasCode(E1, DiagCode::GraphStageFailed)) << renderAll(E1);
}

//===----------------------------------------------------------------------===//
// Iterate-until-convergence nodes
//===----------------------------------------------------------------------===//

TEST(GraphIterate, JacobiConvergesWellInsideTripBound) {
  DiagnosticEngine Engine;
  Expected<ValidatedGraph> VG = validated(readExample("jacobi.liftg"), Engine);
  ASSERT_TRUE(VG) << renderAll(Engine);

  GraphRunOptions GO;
  DiagnosticEngine E1;
  Expected<GraphRunResult> R = runGraph(*VG, GO, E1);
  ASSERT_TRUE(R) << renderAll(E1);
  ASSERT_EQ(R->Iterates.size(), 1u);
  EXPECT_TRUE(R->Iterates[0].Converged);
  EXPECT_GT(R->Iterates[0].Trips, 4u);
  EXPECT_LT(R->Iterates[0].Trips, 60u);
  EXPECT_LE(R->Iterates[0].Residual, 1e-5);
}

TEST(GraphIterate, ExhaustedTripsIsAWarningNotAnError) {
  std::string Text = readExample("jacobi.liftg");
  // Anchor on the directive, not the "max=60" mention in the header
  // comment.
  size_t Pos = Text.find("solve max=60");
  ASSERT_NE(Pos, std::string::npos);
  Text.replace(Pos + 6, 6, "max=2 ");

  DiagnosticEngine Engine;
  Expected<ValidatedGraph> VG = validated(Text, Engine);
  ASSERT_TRUE(VG) << renderAll(Engine);

  GraphRunOptions GO;
  DiagnosticEngine E1;
  Expected<GraphRunResult> R = runGraph(*VG, GO, E1);
  ASSERT_TRUE(R) << renderAll(E1); // degraded result, not a failure
  ASSERT_EQ(R->Iterates.size(), 1u);
  EXPECT_FALSE(R->Iterates[0].Converged);
  EXPECT_EQ(R->Iterates[0].Trips, 2u);
  bool Warned = false;
  for (const Diagnostic &D : E1.diagnostics())
    if (D.Code == DiagCode::GraphNotConverged &&
        D.Severity == DiagSeverity::Warning)
      Warned = true;
  EXPECT_TRUE(Warned) << renderAll(E1);
}

TEST(GraphIterate, KMeansCentroidsAreFixedPoint) {
  // After convergence, one more Lloyd step must not move any centroid:
  // the converged output really is a fixed point of the update.
  DiagnosticEngine Engine;
  Expected<ValidatedGraph> VG =
      validated(readExample("kmeans_loop.liftg"), Engine);
  ASSERT_TRUE(VG) << renderAll(Engine);

  GraphRunOptions GO;
  DiagnosticEngine E1;
  Expected<GraphRunResult> R = runGraph(*VG, GO, E1);
  ASSERT_TRUE(R) << renderAll(E1);
  ASSERT_EQ(R->Iterates.size(), 1u);
  EXPECT_TRUE(R->Iterates[0].Converged);
  EXPECT_EQ(R->Iterates[0].Residual, 0.0);
  EXPECT_EQ(R->Outputs.at("cn").size(), 8u);
}

} // namespace
