//===- IRUtilsTest.cpp - IR printer, clone and prelude tests -------------------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "ir/DSL.h"
#include "ir/Prelude.h"
#include "ir/Printer.h"
#include "ir/TypeInference.h"
#include "support/Casting.h"

#include <gtest/gtest.h>

using namespace lift;
using namespace lift::ir;
using namespace lift::ir::dsl;

namespace {

class IRUtilsTest : public ::testing::Test {
protected:
  std::shared_ptr<const arith::VarNode> N = arith::sizeVar("N");
};

TEST_F(IRUtilsTest, PrinterShowsPipelineStructure) {
  ParamPtr X = param("x", arrayOf(float32(), N));
  LambdaPtr P = lambda({X}, pipe(ExprPtr(X), split(8),
                                 mapWrg(0, mapLcl(0, prelude::squareFun())),
                                 join()));
  std::string S = printProgram(P);
  EXPECT_NE(S.find("fun(x: [float]N)"), std::string::npos);
  EXPECT_NE(S.find("mapWrg0(mapLcl0(sq))"), std::string::npos);
  EXPECT_NE(S.find("split(8)"), std::string::npos);
  EXPECT_NE(S.find("join("), std::string::npos);
}

TEST_F(IRUtilsTest, PrinterShowsLambdasAndLiterals) {
  ParamPtr X = param("x", arrayOf(float32(), N));
  LambdaPtr P = lambda(
      {X}, pipe(ExprPtr(X), mapGlb(fun([&](ExprPtr Row) {
              return call(reduceSeq(prelude::addFun()),
                          {litFloat(0.0f), call(split(4), {Row})});
            }))));
  // Printing never requires type inference to have run.
  std::string S = printExpr(P->getBody());
  EXPECT_NE(S.find("λ(p)"), std::string::npos);
  EXPECT_NE(S.find("reduceSeq(add)"), std::string::npos);
  EXPECT_NE(S.find("0.000000f"), std::string::npos);
}

TEST_F(IRUtilsTest, LineCountCountsStages) {
  ParamPtr X = param("x", arrayOf(float32(), N));
  LambdaPtr Small = lambda({X}, pipe(ExprPtr(X),
                                     mapGlb(prelude::squareFun())));
  ParamPtr Y = param("y", arrayOf(float32(), N));
  LambdaPtr Large = lambda({Y}, pipe(ExprPtr(Y), split(8),
                                     mapWrg(mapLcl(prelude::squareFun())),
                                     join()));
  EXPECT_LT(programLineCount(Small), programLineCount(Large));
}

TEST_F(IRUtilsTest, CloneProducesIndependentAnnotations) {
  ParamPtr X = param("x", arrayOf(float32(), N));
  LambdaPtr P = lambda({X}, pipe(ExprPtr(X), mapGlb(prelude::squareFun())));

  LambdaPtr C = cast<Lambda>(cloneFunDecl(
      std::static_pointer_cast<FunDecl>(P)));
  inferProgramTypes(C);
  // The original program's body is still un-annotated.
  EXPECT_EQ(P->getBody()->Ty, nullptr);
  EXPECT_NE(C->getBody()->Ty, nullptr);
  // Parameters were cloned, not shared.
  EXPECT_NE(P->getParams()[0].get(), C->getParams()[0].get());
}

TEST_F(IRUtilsTest, ClonePreservesSharing) {
  // A parameter referenced twice clones to ONE fresh node referenced
  // twice.
  ParamPtr X = param("x", arrayOf(float32(), N));
  ExprPtr Zipped = call(zip(), {X, X});
  LambdaPtr P = lambda({X}, Zipped);
  LambdaPtr C = cast<Lambda>(cloneFunDecl(
      std::static_pointer_cast<FunDecl>(P)));
  const auto *Call = cast<FunCall>(C->getBody().get());
  EXPECT_EQ(Call->getArgs()[0].get(), Call->getArgs()[1].get());
  EXPECT_EQ(Call->getArgs()[0].get(), C->getParams()[0].get());
}

TEST_F(IRUtilsTest, CloneCopiesBarrierFlags) {
  auto M = std::make_shared<MapLcl>(0, prelude::squareFun());
  M->EmitBarrier = false;
  FunDeclPtr C = cloneFunDecl(std::static_pointer_cast<FunDecl>(M));
  EXPECT_FALSE(cast<MapLcl>(C.get())->EmitBarrier);
}

TEST_F(IRUtilsTest, PreludeSignatures) {
  EXPECT_EQ(prelude::addFun()->arity(), 2u);
  EXPECT_EQ(prelude::multAndSumUpFun()->arity(), 2u);
  EXPECT_EQ(prelude::idFloatFun()->arity(), 1u);
  FunDeclPtr MAdd = prelude::multAndSumUpFun();
  const auto *U = cast<UserFun>(MAdd.get());
  EXPECT_TRUE(typeEquals(U->getParamTypes()[1],
                         tupleOf({float32(), float32()})));
}

TEST_F(IRUtilsTest, FunKindNamesAreStable) {
  EXPECT_STREQ(funKindName(FunKind::Map), "map");
  EXPECT_STREQ(funKindName(FunKind::MapLcl), "mapLcl");
  EXPECT_STREQ(funKindName(FunKind::GatherIndices), "gatherIndices");
  EXPECT_STREQ(funKindName(FunKind::ToPrivate), "toPrivate");
}

TEST_F(IRUtilsTest, AddressSpaceNames) {
  EXPECT_STREQ(addressSpaceName(AddressSpace::Global), "global");
  EXPECT_STREQ(addressSpaceName(AddressSpace::Local), "local");
  EXPECT_STREQ(addressSpaceName(AddressSpace::Private), "private");
  EXPECT_STREQ(addressSpaceName(AddressSpace::Undef), "undef");
}

} // namespace
