//===- MemGuardTest.cpp - Guarded-memory execution tests ------------------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Guarded-memory execution (ocl/MemGuard.h): planted out-of-bounds and
/// uninitialized accesses must surface as structured findings (with the
/// run completing), clean kernels and all twelve benchmarks must produce
/// none, and the checked launch must turn findings into diagnostics.
///
//===----------------------------------------------------------------------===//

#include "suite/Benchmark.h"
#include "cparse/CParser.h"
#include "ocl/Runtime.h"
#include "support/Diagnostics.h"

#include <gtest/gtest.h>

using namespace lift;
using namespace lift::ocl;

namespace {

codegen::CompiledKernel kernelFrom(const std::string &Src) {
  cparse::ParseContext Ctx;
  return wrapModule(cparse::parseModule(Src, Ctx));
}

LaunchConfig guarded(int64_t Global, int64_t Local) {
  LaunchConfig Cfg;
  Cfg.Global = {Global, 1, 1};
  Cfg.Local = {Local, 1, 1};
  Cfg.CheckMemory = true;
  return Cfg;
}

TEST(MemGuardTest, PlantedOobWriteIsCaughtAndDropped) {
  // The last work-item stores one element past the end of out.
  auto K = kernelFrom(R"(
kernel void oob(global float *in, global float *out) {
  int g = get_global_id(0);
  out[g + 1] = in[g];
}
)");
  Buffer In = Buffer::ofFloats({1, 2, 3, 4, 5, 6, 7, 8});
  Buffer Out = Buffer::zeros(8);
  RaceReport Races;
  GuardReport Guards;
  launch(K, {&In, &Out}, {}, guarded(8, 4), Races, Guards);

  ASSERT_EQ(Guards.oobWrites(), 1u) << Guards.summary();
  EXPECT_EQ(Guards.Findings[0].Location, "out[8]");
  EXPECT_GT(Guards.AccessesChecked, 0u);
  // The stray store was dropped; in-bounds stores still landed.
  EXPECT_FLOAT_EQ(Out.toFloats()[1], 1);
}

TEST(MemGuardTest, PlantedOobReadReturnsZeroAndIsCaught) {
  auto K = kernelFrom(R"(
kernel void oobr(global float *in, global float *out) {
  int g = get_global_id(0);
  out[g] = in[g + 1];
}
)");
  Buffer In = Buffer::ofFloats({1, 2, 3, 4});
  Buffer Out = Buffer::zeros(4);
  RaceReport Races;
  GuardReport Guards;
  launch(K, {&In, &Out}, {}, guarded(4, 2), Races, Guards);

  ASSERT_EQ(Guards.oobReads(), 1u) << Guards.summary();
  EXPECT_EQ(Guards.Findings[0].Location, "in[4]");
  // The out-of-bounds load produced zero, and the run completed.
  EXPECT_FLOAT_EQ(Out.toFloats()[3], 0);
  EXPECT_FLOAT_EQ(Out.toFloats()[0], 2);
}

TEST(MemGuardTest, UninitializedReadIsCaught) {
  // tmp[g] is written only for even items; odd items read what no store
  // ever wrote.
  auto K = kernelFrom(R"(
kernel void uninit(global float *tmp, global float *out) {
  int g = get_global_id(0);
  if (g % 2 == 0) {
    tmp[g] = 1.0f;
  }
  out[g] = tmp[g];
}
)");
  Buffer Tmp = Buffer::zeros(8);
  Buffer Out = Buffer::zeros(8);
  RaceReport Races;
  GuardReport Guards;
  launch(K, {&Tmp, &Out}, {}, guarded(8, 8), Races, Guards);

  EXPECT_EQ(Guards.uninitReads(), 4u) << Guards.summary();
  EXPECT_EQ(Guards.oobWrites(), 0u);
}

TEST(MemGuardTest, HostDataCountsAsInitialized) {
  auto K = kernelFrom(R"(
kernel void copy(global float *in, global float *out) {
  int g = get_global_id(0);
  out[g] = in[g];
}
)");
  Buffer In = Buffer::ofFloats({1, 2, 3, 4});
  Buffer Out = Buffer::zeros(4);
  RaceReport Races;
  GuardReport Guards;
  launch(K, {&In, &Out}, {}, guarded(4, 2), Races, Guards);
  EXPECT_TRUE(Guards.clean()) << Guards.summary();
}

TEST(MemGuardTest, InitializationPersistsAcrossLaunches) {
  // Stage 1 writes tmp; stage 2 reads it back. The bitmap lives with the
  // buffer, so the second launch sees stage 1's writes as initialized.
  auto Writer = kernelFrom(R"(
kernel void writer(global float *tmp) {
  tmp[get_global_id(0)] = 2.0f;
}
)");
  auto Reader = kernelFrom(R"(
kernel void reader(global float *tmp, global float *out) {
  int g = get_global_id(0);
  out[g] = tmp[g];
}
)");
  Buffer Tmp = Buffer::zeros(4);
  Buffer Out = Buffer::zeros(4);
  RaceReport R1, R2;
  GuardReport G1, G2;
  launch(Writer, {&Tmp}, {}, guarded(4, 2), R1, G1);
  launch(Reader, {&Tmp, &Out}, {}, guarded(4, 2), R2, G2);
  EXPECT_TRUE(G1.clean()) << G1.summary();
  EXPECT_TRUE(G2.clean()) << G2.summary();
}

TEST(MemGuardTest, ClearPoisonResetsInitBitmap) {
  // Regression: clearPoison() used to reset only the Poisoned flag,
  // leaving the init bitmap claiming the (now meaningless) contents of a
  // half-written buffer were valid. Clearing poison must also forget the
  // poisoned launch's writes, so a later guarded read is flagged.
  auto Writer = kernelFrom(R"(
kernel void writer(global float *tmp) {
  tmp[get_global_id(0)] = 2.0f;
}
)");
  auto Reader = kernelFrom(R"(
kernel void reader(global float *tmp, global float *out) {
  int g = get_global_id(0);
  out[g] = tmp[g];
}
)");
  Buffer Tmp = Buffer::zeros(4);
  Buffer Out = Buffer::zeros(4);
  RaceReport R1;
  GuardReport G1;
  launch(Writer, {&Tmp}, {}, guarded(4, 2), R1, G1);
  ASSERT_TRUE(G1.clean()) << G1.summary();

  // A mid-flight failure would have poisoned the buffer; recovery clears
  // the poison to reuse the storage.
  Tmp.Poisoned = true;
  Tmp.clearPoison();
  EXPECT_FALSE(Tmp.Poisoned);

  // The writer's init bits must be gone: all four reads are flagged.
  RaceReport R2;
  GuardReport G2;
  launch(Reader, {&Tmp, &Out}, {}, guarded(4, 2), R2, G2);
  EXPECT_EQ(G2.uninitReads(), 4u) << G2.summary();

  // Clearing poison on a never-poisoned buffer is a no-op: the bitmap
  // (here: host data, fully initialized) survives.
  Buffer Host = Buffer::ofFloats({1, 2, 3, 4});
  Host.clearPoison();
  RaceReport R3;
  GuardReport G3;
  launch(Reader, {&Host, &Out}, {}, guarded(4, 2), R3, G3);
  EXPECT_TRUE(G3.clean()) << G3.summary();
}

TEST(MemGuardTest, DuplicateFindingsAreDeduplicated) {
  // Every item of every group reads in[-1]: one finding, not global-size.
  auto K = kernelFrom(R"(
kernel void dup(global float *in, global float *out) {
  out[get_global_id(0)] = in[-1];
}
)");
  Buffer In = Buffer::ofFloats({1, 2, 3, 4});
  Buffer Out = Buffer::zeros(8);
  RaceReport Races;
  GuardReport Guards;
  launch(K, {&In, &Out}, {}, guarded(8, 4), Races, Guards);
  EXPECT_EQ(Guards.Findings.size(), 1u) << Guards.summary();
}

TEST(MemGuardTest, CheckedLaunchRecordsDiagnostics) {
  auto K = kernelFrom(R"(
kernel void oob(global float *in, global float *out) {
  int g = get_global_id(0);
  out[g + 1] = in[g];
}
)");
  Buffer In = Buffer::ofFloats({1, 2, 3, 4});
  Buffer Out = Buffer::zeros(4);
  DiagnosticEngine Engine;
  Expected<LaunchResult> R =
      launchChecked(K, {&In, &Out}, {}, guarded(4, 2), Engine);
  ASSERT_TRUE(bool(R));
  EXPECT_FALSE(R->clean());
  ASSERT_TRUE(Engine.hasErrors());
  bool Found = false;
  for (const Diagnostic &D : Engine.diagnostics())
    Found |= D.Code == DiagCode::RuntimeOutOfBounds;
  EXPECT_TRUE(Found) << Engine.render();
}

TEST(MemGuardTest, OfVectorsWidthMismatchIsADiagnostic) {
  try {
    Buffer::ofVectors({1, 2, 3, 4, 5}, 4); // 5 floats cannot pack as float4
    FAIL() << "expected a diagnostic";
  } catch (const DiagnosticError &E) {
    EXPECT_EQ(E.Diag.Code, DiagCode::HostBadBuffer) << E.Diag.render();
  }
}

//===----------------------------------------------------------------------===//
// Benchmarks under guarded memory
//===----------------------------------------------------------------------===//

class BenchMemTest : public ::testing::TestWithParam<int> {};

TEST_P(BenchMemTest, BenchmarksAreMemoryClean) {
  std::vector<bench::BenchmarkCase> All = bench::allBenchmarks(false);
  ASSERT_LT(static_cast<size_t>(GetParam()), All.size());
  bench::BenchmarkCase &Case = All[static_cast<size_t>(GetParam())];

  bench::RunOptions Check;
  Check.CheckMemory = true;

  // With barrier elimination (and all other optimizations) on.
  bench::Outcome Full = bench::runLift(Case, bench::OptConfig::Full, Check);
  EXPECT_TRUE(Full.Valid) << Case.Name;
  EXPECT_TRUE(Full.Guards.clean())
      << Case.Name << ": " << Full.Guards.summary();
  EXPECT_GT(Full.Guards.AccessesChecked, 0u);

  // With every optimization (barrier elimination included) off.
  bench::Outcome None = bench::runLift(Case, bench::OptConfig::None, Check);
  EXPECT_TRUE(None.Valid) << Case.Name;
  EXPECT_TRUE(None.Guards.clean())
      << Case.Name << ": " << None.Guards.summary();

  // The hand-written reference is memory-clean too.
  bench::Outcome Ref = bench::runReference(Case, Check);
  EXPECT_TRUE(Ref.Valid) << Case.Name;
  EXPECT_TRUE(Ref.Guards.clean()) << Case.Name << ": " << Ref.Guards.summary();
}

std::string benchName(const ::testing::TestParamInfo<int> &I) {
  static const char *Names[] = {"NBodyNvidia", "NBodyAmd", "MD",
                                "KMeans",      "NN",       "MriQ",
                                "Convolution", "Atax",     "Gemv",
                                "Gesummv",     "MMNvidia", "MMAmd"};
  return Names[static_cast<size_t>(I.param)];
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, BenchMemTest, ::testing::Range(0, 12),
                         benchName);

} // namespace
