//===- MoreE2ETest.cpp - Additional end-to-end coverage -----------------------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// End-to-end tests beyond the core pattern matrix: private-memory
/// staging, stride-gather coalescing, fused multi-stage pipelines,
/// vectorized tuples, and sequential-only compilation.
///
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"

#include <gtest/gtest.h>

using namespace lift;
using namespace lift::ir;
using namespace lift::ir::dsl;
using namespace lift::test;

namespace {

class MoreE2E : public ::testing::TestWithParam<OptLevel> {
protected:
  codegen::CompilerOptions opts(std::array<int64_t, 3> Global,
                                std::array<int64_t, 3> Local) {
    return optionsFor(GetParam(), Global, Local);
  }
};

TEST_P(MoreE2E, ToPrivateRegisterStaging) {
  // Each thread copies its 4-element chunk into private registers, then
  // reduces from there (register blocking in miniature).
  auto N = arith::sizeVar("N");
  ParamPtr X = param("x", arrayOf(float32(), N));
  LambdaPtr P = lambda(
      {X},
      pipe(ExprPtr(X), split(4), mapGlb(fun([&](ExprPtr Chunk) {
             ParamPtr Reg = param("reg");
             ExprPtr Copy =
                 pipe(Chunk, toPrivate(mapSeq(prelude::idFloatFun())));
             ExprPtr Use = pipe(
                 call(reduceSeq(prelude::addFun()), {litFloat(0.0f), Reg}),
                 toGlobal(mapSeq(prelude::idFloatFun())));
             return call(lambda({Reg}, Use), {Copy});
           })),
           join()));

  auto In = randomFloats(64, 21);
  auto R = runFloatProgram(P, {In}, 16, {{"N", 64}},
                           opts({16, 1, 1}, {4, 1, 1}));
  std::vector<float> Ref(16, 0.f);
  for (size_t I = 0; I != 64; ++I)
    Ref[I / 4] += In[I];
  EXPECT_LT(maxAbsError(R.Out, Ref), 1e-4);
  // The generated kernel must contain a private (unqualified) array.
  if (GetParam() == OptLevel::Full) {
    EXPECT_NE(R.Source.find("float tmp"), std::string::npos) << R.Source;
  }
}

TEST_P(MoreE2E, StrideGatherCoalescing) {
  // The GEMV coalescing trick: gather with a stride permutation, split,
  // reduce each part. The permutation must be its own inverse pair with
  // the split: thread t sums elements t, t+L, t+2L, ...
  const int64_t M = 64, L = 8;
  ParamPtr X = param("x", arrayOf(float32(), arith::cst(M)));
  LambdaPtr P = lambda(
      {X},
      pipe(ExprPtr(X), gather(strideIndex(arith::cst(M / L))),
           split(M / L), mapLcl(fun([&](ExprPtr Part) {
             return pipe(call(reduceSeq(prelude::addFun()),
                              {litFloat(0.0f), Part}),
                         toGlobal(mapSeq(prelude::idFloatFun())));
           })),
           join()));

  auto In = randomFloats(M, 22);
  auto R = runFloatProgram(P, {In}, L, {}, opts({L, 1, 1}, {L, 1, 1}));
  std::vector<float> Ref(L, 0.f);
  for (int64_t T = 0; T != L; ++T)
    for (int64_t J = 0; J != M / L; ++J)
      Ref[T] += In[T + J * L];
  EXPECT_LT(maxAbsError(R.Out, Ref), 1e-4);
}

TEST_P(MoreE2E, MultiStagePipelineThroughGlobalTemp) {
  // Two sequential mapGlb stages: the intermediate becomes a
  // compiler-introduced global temporary buffer.
  auto N = arith::sizeVar("N");
  ParamPtr X = param("x", arrayOf(float32(), N));
  FunDeclPtr Inc = userFun("inc", {"x"}, {float32()}, float32(),
                           "return x + 1.0f;");
  LambdaPtr P = lambda({X}, pipe(ExprPtr(X), mapGlb(prelude::squareFun()),
                                 mapGlb(Inc)));

  auto In = randomFloats(32, 23);
  auto R = runFloatProgram(P, {In}, 32, {{"N", 32}},
                           opts({32, 1, 1}, {8, 1, 1}));
  std::vector<float> Ref;
  for (float V : In)
    Ref.push_back(V * V + 1.f);
  EXPECT_LT(maxAbsError(R.Out, Ref), 1e-5);
}

TEST_P(MoreE2E, VectorizedZipMultiply) {
  // Vectorized dot-product step: zip two float4 streams, multiply
  // element-wise with a vectorized user function.
  auto N = arith::sizeVar("N");
  ParamPtr X = param("x", arrayOf(float32(), N));
  ParamPtr Y = param("y", arrayOf(float32(), N));
  FunDeclPtr MulPair = userFun(
      "mulPairV", {"p"},
      {tupleOf({vectorOf(ScalarKind::Float, 4),
                vectorOf(ScalarKind::Float, 4)})},
      vectorOf(ScalarKind::Float, 4), "return p._0 * p._1;");
  LambdaPtr P = lambda(
      {X, Y}, pipe(call(zip(), {pipe(ExprPtr(X), asVector(4)),
                                pipe(ExprPtr(Y), asVector(4))}),
                   mapGlb(MulPair), asScalar()));

  auto A = randomFloats(32, 24), B = randomFloats(32, 25);
  auto R = runFloatProgram(P, {A, B}, 32, {{"N", 32}},
                           opts({8, 1, 1}, {4, 1, 1}));
  std::vector<float> Ref;
  for (size_t I = 0; I != A.size(); ++I)
    Ref.push_back(A[I] * B[I]);
  EXPECT_LT(maxAbsError(R.Out, Ref), 1e-5);
}

TEST_P(MoreE2E, FullySequentialKernel) {
  // A single work item does everything: exercises mapSeq nesting without
  // parallel ids.
  ParamPtr X = param("x", array2D(float32(), arith::cst(4), arith::cst(8)));
  LambdaPtr P = lambda({X}, pipe(ExprPtr(X),
                                 mapSeq(mapSeq(prelude::squareFun())),
                                 join()));
  auto In = randomFloats(32, 26);
  auto R = runFloatProgram(P, {In}, 32, {}, opts({1, 1, 1}, {1, 1, 1}));
  std::vector<float> Ref;
  for (float V : In)
    Ref.push_back(V * V);
  EXPECT_LT(maxAbsError(R.Out, Ref), 1e-5);
}

TEST_P(MoreE2E, ReduceOfReduceRows) {
  // Nested reduction: sum of row sums equals total sum.
  ParamPtr X = param("x", array2D(float32(), arith::cst(8), arith::cst(16)));
  LambdaPtr P = lambda(
      {X},
      pipe(ExprPtr(X), mapSeq(fun([&](ExprPtr Row) {
             return call(reduceSeq(prelude::addFun()),
                         {litFloat(0.0f), Row});
           })),
           join(), fun([&](ExprPtr Partial) {
             return pipe(call(reduceSeq(prelude::addFun()),
                              {litFloat(0.0f), Partial}),
                         toGlobal(mapSeq(prelude::idFloatFun())));
           })));
  auto In = randomFloats(128, 27);
  auto R = runFloatProgram(P, {In}, 1, {}, opts({1, 1, 1}, {1, 1, 1}));
  double Ref = 0;
  for (float V : In)
    Ref += V;
  ASSERT_EQ(R.Out.size(), 1u);
  EXPECT_NEAR(R.Out[0], Ref, 1e-3);
}

TEST_P(MoreE2E, ScatterAfterComputeInWorkGroup) {
  // Compute then permute on the write path inside a work group.
  auto N = arith::sizeVar("N");
  ParamPtr X = param("x", arrayOf(float32(), N));
  LambdaPtr P = lambda(
      {X}, pipe(ExprPtr(X), split(16), mapWrg(fun([&](ExprPtr Chunk) {
              return pipe(Chunk, mapLcl(prelude::squareFun()),
                          scatter(reverseIndex()));
            })),
            join()));
  auto In = randomFloats(64, 28);
  auto R = runFloatProgram(P, {In}, 64, {{"N", 64}},
                           opts({64, 1, 1}, {16, 1, 1}));
  std::vector<float> Ref(64);
  for (size_t C = 0; C != 4; ++C)
    for (size_t I = 0; I != 16; ++I)
      Ref[C * 16 + (15 - I)] = In[C * 16 + I] * In[C * 16 + I];
  EXPECT_LT(maxAbsError(R.Out, Ref), 1e-5);
}

TEST_P(MoreE2E, OutputsIdenticalAcrossOptLevels) {
  // The ablation must be purely a performance knob: compile the same
  // program at this level and at Full and compare outputs exactly.
  auto N = arith::sizeVar("N");
  auto MakeProgram = [&]() {
    ParamPtr X = param("x", arrayOf(float32(), N));
    return lambda({X},
                  pipe(ExprPtr(X), split(16), mapWrg(fun([&](ExprPtr C) {
                         return pipe(C,
                                     toLocal(mapLcl(prelude::idFloatFun())),
                                     gather(reverseIndex()),
                                     toGlobal(mapLcl(prelude::squareFun())));
                       })),
                       join()));
  };
  auto In = randomFloats(64, 29);
  auto A = runFloatProgram(MakeProgram(), {In}, 64, {{"N", 64}},
                           opts({64, 1, 1}, {16, 1, 1}));
  auto B = runFloatProgram(MakeProgram(), {In}, 64, {{"N", 64}},
                           optionsFor(OptLevel::Full, {64, 1, 1},
                                      {16, 1, 1}));
  EXPECT_EQ(A.Out, B.Out);
}

TEST_P(MoreE2E, UnzipProjectsComponents) {
  // zip, map a pairwise op, then unzip-like consumption: unzip(zip(x,y))
  // projected with get reads the original arrays through commuted views.
  auto N = arith::sizeVar("N");
  ParamPtr X = param("x", arrayOf(float32(), N));
  ParamPtr Y = param("y", arrayOf(float32(), N));
  LambdaPtr P = lambda(
      {X, Y},
      pipe(call(get(1), {call(unzip(), {call(zip(), {X, Y})})}),
           mapGlb(prelude::squareFun())));
  auto A = randomFloats(32, 61), B = randomFloats(32, 62);
  auto R = runFloatProgram(P, {A, B}, 32, {{"N", 32}},
                           opts({8, 1, 1}, {4, 1, 1}));
  std::vector<float> Ref;
  for (float V : B)
    Ref.push_back(V * V);
  EXPECT_LT(maxAbsError(R.Out, Ref), 1e-6);
}

TEST_P(MoreE2E, ZipThreeArrays) {
  auto N = arith::sizeVar("N");
  ParamPtr X = param("x", arrayOf(float32(), N));
  ParamPtr Y = param("y", arrayOf(float32(), N));
  ParamPtr Z = param("z", arrayOf(float32(), N));
  FunDeclPtr Fma = userFun(
      "fma3", {"t"}, {tupleOf({float32(), float32(), float32()})},
      float32(), "return t._0 * t._1 + t._2;");
  LambdaPtr P = lambda({X, Y, Z},
                       pipe(call(zip3(), {X, Y, Z}), mapGlb(Fma)));

  auto A = randomFloats(32, 51), B = randomFloats(32, 52),
       C = randomFloats(32, 53);
  auto R = runFloatProgram(P, {A, B, C}, 32, {{"N", 32}},
                           opts({8, 1, 1}, {4, 1, 1}));
  std::vector<float> Ref;
  for (size_t I = 0; I != A.size(); ++I)
    Ref.push_back(A[I] * B[I] + C[I]);
  EXPECT_LT(maxAbsError(R.Out, Ref), 1e-5);
}

TEST_P(MoreE2E, SizePreservingIterate) {
  // iterate whose body keeps the length: repeated squaring in local
  // memory (no halving, so the runtime size variable stays constant).
  ParamPtr X = param("x", arrayOf(float32(), arith::cst(64)));
  LambdaPtr P = lambda(
      {X},
      pipe(ExprPtr(X), split(16), mapWrg(fun([&](ExprPtr Chunk) {
             return pipe(
                 Chunk, toLocal(mapLcl(prelude::idFloatFun())),
                 iterate(3, fun([&](ExprPtr Arr) {
                           return pipe(
                               Arr,
                               toLocal(mapLcl(prelude::squareFun())));
                         })),
                 toGlobal(mapLcl(prelude::idFloatFun())));
           })),
           join()));

  // Inputs near 1 so x^8 stays finite.
  std::vector<float> In(64);
  for (size_t I = 0; I != In.size(); ++I)
    In[I] = 0.9f + 0.2f * static_cast<float>(I % 10) / 10.f;
  auto R = runFloatProgram(P, {In}, 64, {}, opts({64, 1, 1}, {16, 1, 1}));
  std::vector<float> Ref;
  for (float V : In) {
    double X8 = V;
    for (int I = 0; I != 3; ++I)
      X8 = X8 * X8;
    Ref.push_back(static_cast<float>(X8));
  }
  EXPECT_LT(maxAbsError(R.Out, Ref), 1e-4);
}

TEST_P(MoreE2E, MapVecComponentwiseFallback) {
  // A non-simple user function (ternary) under mapVec: the code generator
  // must fall back to applying the scalar function per component
  // (section 3.2).
  auto N = arith::sizeVar("N");
  ParamPtr X = param("x", arrayOf(float32(), N));
  FunDeclPtr ClampPos = userFun("clampPos", {"x"}, {float32()}, float32(),
                                "return x < 0.0f ? 0.0f : x;");
  LambdaPtr P = lambda(
      {X}, pipe(ExprPtr(X), asVector(4), mapGlb(fun([&](ExprPtr V) {
              return call(mapVec(ClampPos), {V});
            })),
            asScalar()));

  auto In = randomFloats(32, 41);
  auto R = runFloatProgram(P, {In}, 32, {{"N", 32}},
                           opts({8, 1, 1}, {4, 1, 1}));
  std::vector<float> Ref;
  for (float V : In)
    Ref.push_back(V < 0 ? 0.f : V);
  EXPECT_LT(maxAbsError(R.Out, Ref), 1e-6);
  if (GetParam() == OptLevel::Full) {
    // The vector variant calls the scalar one per lane.
    EXPECT_NE(R.Source.find("clampPos_v4"), std::string::npos);
    EXPECT_NE(R.Source.find("clampPos(x.s0)"), std::string::npos)
        << R.Source;
  }
}

TEST_P(MoreE2E, MapVecSimpleBodyStaysVectorized) {
  auto N = arith::sizeVar("N");
  ParamPtr X = param("x", arrayOf(float32(), N));
  LambdaPtr P = lambda(
      {X}, pipe(ExprPtr(X), asVector(4), mapGlb(fun([&](ExprPtr V) {
              return call(mapVec(prelude::squareFun()), {V});
            })),
            asScalar()));
  auto In = randomFloats(16, 42);
  auto R = runFloatProgram(P, {In}, 16, {{"N", 16}},
                           opts({4, 1, 1}, {2, 1, 1}));
  if (GetParam() == OptLevel::Full) {
    EXPECT_EQ(R.Source.find(".s0"), std::string::npos) << R.Source;
  }
}

INSTANTIATE_TEST_SUITE_P(OptLevels, MoreE2E,
                         ::testing::Values(OptLevel::None,
                                           OptLevel::BarrierCfs,
                                           OptLevel::Full),
                         [](const ::testing::TestParamInfo<OptLevel> &I) {
                           switch (I.param) {
                           case OptLevel::None:
                             return std::string("None");
                           case OptLevel::BarrierCfs:
                             return std::string("BarrierCfs");
                           case OptLevel::Full:
                             return std::string("Full");
                           }
                           return std::string("Unknown");
                         });

} // namespace
