//===- NativeBackendTest.cpp - Native backend differential tier -----------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The native-vs-simulator differential tier (ctest -L native). The
/// native C++/OpenMP backend (src/native) lowers every float to double —
/// exactly the simulator's value model — so for every program in the
/// supported subset the two backends must agree bit-for-bit:
///
///  - all twelve paper benchmarks, at 1, 2 and 8 OpenMP threads, under
///    the full optimization configuration and with the hand-written
///    reference kernels;
///  - several hundred random well-typed programs from the shared
///    generator (Generator.h), including the local-memory staging case;
///  - float-literal torture kernels (the CPrinter round-trip bugfix):
///    literals that are not exactly representable must survive
///    print -> system compiler -> execute without drifting;
///  - injected toolchain faults (compile / dlopen / dlsym) must fail
///    cleanly into Expected<>, leak no temp files into the cache
///    directory, and leave both backends usable afterwards.
///
/// Every test skips cleanly when no system compiler is installed
/// (native::toolchainCompiler() empty).
///
//===----------------------------------------------------------------------===//

#include "Generator.h"
#include "TestHelpers.h"
#include "cast/CPrinter.h"
#include "native/Native.h"
#include "native/NativePrinter.h"
#include "ocl/FaultInject.h"
#include "suite/Benchmark.h"
#include "support/Diagnostics.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <unistd.h>
#include <limits>
#include <map>
#include <string>
#include <vector>

using namespace lift;
using namespace lift::ir;
using namespace lift::test;

namespace {

bool haveToolchain() { return !native::toolchainCompiler().empty(); }

#define SKIP_WITHOUT_TOOLCHAIN()                                               \
  do {                                                                         \
    if (!haveToolchain())                                                      \
      GTEST_SKIP() << "no system C++ compiler on PATH "                        \
                      "(set LIFT_NATIVE_CXX to override)";                     \
  } while (0)

/// Bit-level comparison: NaNs and signed zeros must agree too.
bool bitIdentical(const std::vector<float> &A, const std::vector<float> &B) {
  return A.size() == B.size() &&
         (A.empty() ||
          std::memcmp(A.data(), B.data(), A.size() * sizeof(float)) == 0);
}

//===----------------------------------------------------------------------===//
// Benchmarks: simulator and native agree bit-for-bit
//===----------------------------------------------------------------------===//

class BenchmarkDifferential
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BenchmarkDifferential, LiftStagesBitIdentical) {
  SKIP_WITHOUT_TOOLCHAIN();
  auto Cases = bench::allBenchmarks(/*Large=*/false);
  int Index = std::get<0>(GetParam());
  int Threads = std::get<1>(GetParam());
  ASSERT_LT(static_cast<size_t>(Index), Cases.size());
  const bench::BenchmarkCase &Case = Cases[static_cast<size_t>(Index)];

  bench::RunOptions Run;
  Run.Threads = 1; // the simulator side: serial, the determinism anchor
  DiagnosticEngine SimEngine;
  Expected<bench::Outcome> Sim =
      bench::runLiftChecked(Case, bench::OptConfig::Full, Run, SimEngine);
  ASSERT_TRUE(bool(Sim)) << Case.Name << ":\n" << SimEngine.render();
  EXPECT_TRUE(Sim->Valid) << Case.Name << " max error " << Sim->MaxError;

  Run.Threads = Threads;
  DiagnosticEngine NatEngine;
  Expected<bench::NativeOutcome> Nat = bench::runLiftNativeChecked(
      Case, bench::OptConfig::Full, Run, NatEngine);
  ASSERT_TRUE(bool(Nat)) << Case.Name << ":\n" << NatEngine.render();
  EXPECT_TRUE(Nat->Valid) << Case.Name << " max error " << Nat->MaxError;

  EXPECT_TRUE(bitIdentical(Sim->Output, Nat->Output))
      << Case.Name << ": native output differs from the simulator at "
      << Threads << " threads";
}

TEST_P(BenchmarkDifferential, ReferenceStagesBitIdentical) {
  SKIP_WITHOUT_TOOLCHAIN();
  auto Cases = bench::allBenchmarks(/*Large=*/false);
  int Index = std::get<0>(GetParam());
  int Threads = std::get<1>(GetParam());
  if (Threads != 1)
    GTEST_SKIP() << "reference kernels are swept once per benchmark";
  const bench::BenchmarkCase &Case = Cases[static_cast<size_t>(Index)];

  bench::RunOptions Run;
  Run.Threads = 1;
  DiagnosticEngine SimEngine;
  Expected<bench::Outcome> Sim =
      bench::runReferenceChecked(Case, Run, SimEngine);
  ASSERT_TRUE(bool(Sim)) << Case.Name << ":\n" << SimEngine.render();

  Run.Threads = 2;
  DiagnosticEngine NatEngine;
  Expected<bench::NativeOutcome> Nat =
      bench::runReferenceNativeChecked(Case, Run, NatEngine);
  ASSERT_TRUE(bool(Nat)) << Case.Name << ":\n" << NatEngine.render();
  EXPECT_TRUE(Nat->Valid) << Case.Name << " max error " << Nat->MaxError;

  EXPECT_TRUE(bitIdentical(Sim->Output, Nat->Output))
      << Case.Name << ": native reference output differs from the simulator";
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, BenchmarkDifferential,
                         ::testing::Combine(::testing::Range(0, 12),
                                            ::testing::Values(1, 2, 8)));

//===----------------------------------------------------------------------===//
// Random well-typed programs
//===----------------------------------------------------------------------===//

class GeneratorDifferential : public ::testing::TestWithParam<int> {};

TEST_P(GeneratorDifferential, BitIdenticalToSimulator) {
  SKIP_WITHOUT_TOOLCHAIN();
  constexpr int ProgramsPerSeed = 4;
  for (int I = 0; I != ProgramsPerSeed; ++I) {
    uint64_t Seed = static_cast<uint64_t>(GetParam()) * 977 + I;
    size_t OutCount = 0;
    bool TwoInputs = false;
    LambdaPtr P = generateWellTyped(Seed, OutCount, TwoInputs);

    DiagnosticEngine Engine;
    codegen::CompilerOptions Opts;
    Opts.GlobalSize = {16, 1, 1};
    Opts.LocalSize = {4, 1, 1};
    Expected<codegen::CompiledKernel> K =
        codegen::compileChecked(P, Opts, Engine);
    ASSERT_TRUE(bool(K)) << "seed " << Seed << ":\n" << Engine.render();

    auto launchOn = [&](bool Native,
                        std::vector<float> &Out) -> ::testing::AssertionResult {
      ocl::Buffer In = ocl::Buffer::ofFloats(randomFloats(48, Seed));
      ocl::Buffer In2 = ocl::Buffer::ofFloats(randomFloats(48, Seed + 7));
      ocl::Buffer OutBuf = ocl::Buffer::zeros(OutCount);
      std::vector<ocl::Buffer *> Bufs;
      Bufs.push_back(&In);
      if (TwoInputs)
        Bufs.push_back(&In2);
      Bufs.push_back(&OutBuf);
      ocl::LaunchConfig Cfg = ocl::LaunchConfig::fromOptions(Opts);
      Cfg.Threads = Native ? static_cast<int>(1 + Seed % 8) : 1;
      DiagnosticEngine E;
      bool Ok;
      if (Native)
        Ok = bool(native::launchNativeChecked(*K, Bufs, {{"N", 48}}, Cfg, E));
      else
        Ok = bool(ocl::launchChecked(*K, Bufs, {{"N", 48}}, Cfg, E));
      if (!Ok)
        return ::testing::AssertionFailure()
               << (Native ? "native" : "sim") << " launch failed (seed "
               << Seed << "):\n"
               << E.render();
      Out = OutBuf.toFlatFloats();
      return ::testing::AssertionSuccess();
    };

    std::vector<float> SimOut, NatOut;
    ASSERT_TRUE(launchOn(false, SimOut));
    ASSERT_TRUE(launchOn(true, NatOut));
    EXPECT_TRUE(bitIdentical(SimOut, NatOut))
        << "seed " << Seed << ": native output differs from the simulator";
  }
}

// 64 seeds x 4 programs = 256 differential programs (>= 200 per the
// acceptance floor), spanning every generator case including the
// local-memory staging programs (mapWrg / toLocal / mapLcl).
INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorDifferential,
                         ::testing::Range(0, 64));

//===----------------------------------------------------------------------===//
// Float-literal round trip (the CPrinter precision bugfix)
//===----------------------------------------------------------------------===//

TEST(NativeFloatLiterals, FormatterRoundTripsExactly) {
  // The regression that motivated max_digits10: literals printed with %g's
  // default 6 digits drift when re-parsed. Every finite double must
  // strtod back to the same bits; floats must strtof back.
  const double Doubles[] = {0.1,       1.0 / 3.0, 3.14159265358979323846,
                            1e-308,    1e308,     -0.0,
                            123456.78, 2.5e-15};
  for (double V : Doubles) {
    std::string S = lift::c::formatFloatLiteral(V, /*IsDouble=*/true);
    EXPECT_EQ(std::strtod(S.c_str(), nullptr), V) << S;
  }
  const float Floats[] = {0.1f, 0.30000001192092896f, 1e-38f, 3.402e38f};
  for (float V : Floats) {
    std::string S = lift::c::formatFloatLiteral(static_cast<double>(V),
                                             /*IsDouble=*/false);
    EXPECT_EQ(std::strtof(S.c_str(), nullptr), V) << S;
  }
  // Non-finite values must print as the OpenCL/C99 macros, not inf/nan
  // text that no C compiler accepts as a literal.
  EXPECT_NE(
      lift::c::formatFloatLiteral(std::numeric_limits<double>::infinity(), true)
          .find("INFINITY"),
      std::string::npos);
  EXPECT_NE(lift::c::formatFloatLiteral(
                std::numeric_limits<double>::quiet_NaN(), true)
                .find("NAN"),
            std::string::npos);
}

TEST(NativeFloatLiterals, TortureKernelBitIdentical) {
  SKIP_WITHOUT_TOOLCHAIN();
  // A reference-source kernel dense with literals that are not exactly
  // representable: if either printer rounds a literal, the differential
  // (and the golden check) catches it.
  bench::BenchmarkCase Case;
  Case.Name = "literal-torture";
  Case.WorkingBuffers.push_back(bench::BufferInit::floats(
      bench::randomFloats(64, 17)));
  Case.WorkingBuffers.push_back(bench::BufferInit::zeros(64));
  Case.OutputBuffer = 1;

  bench::Stage S;
  S.ReferenceSource = R"(
kernel void lit_torture(global float *restrict in,
                        global float *restrict out, int N) {
  int i = get_global_id(0);
  if (i < N) {
    float x = in[i];
    float a = x * 0.1f + 0.30000001192092896f;
    float b = a * 1.0000001f - 2.5e-15f;
    out[i] = b * 3.1415927f + 1e-38f;
  }
}
)";
  S.Global = {64, 1, 1};
  S.Local = {16, 1, 1};
  S.Buffers = {0, 1};
  S.Sizes = {{"N", 64}};
  Case.ReferenceStages.push_back(S);

  // Golden output computed in the simulator's value model (double all
  // the way; literals parsed as double).
  std::vector<float> In = bench::randomFloats(64, 17);
  Case.Expected.resize(64);
  for (size_t I = 0; I != 64; ++I) {
    double X = static_cast<double>(In[I]);
    double A = X * 0.1 + 0.30000001192092896;
    double B = A * 1.0000001 - 2.5e-15;
    Case.Expected[I] = static_cast<float>(B * 3.1415927 + 1e-38);
  }
  Case.Tolerance = 1e-6;

  bench::RunOptions Run;
  Run.Threads = 1;
  DiagnosticEngine SimEngine, NatEngine;
  Expected<bench::Outcome> Sim =
      bench::runReferenceChecked(Case, Run, SimEngine);
  ASSERT_TRUE(bool(Sim)) << SimEngine.render();
  EXPECT_TRUE(Sim->Valid) << "sim max error " << Sim->MaxError;
  Run.Threads = 2;
  Expected<bench::NativeOutcome> Nat =
      bench::runReferenceNativeChecked(Case, Run, NatEngine);
  ASSERT_TRUE(bool(Nat)) << NatEngine.render();
  EXPECT_TRUE(Nat->Valid) << "native max error " << Nat->MaxError;
  EXPECT_TRUE(bitIdentical(Sim->Output, Nat->Output));
}

//===----------------------------------------------------------------------===//
// Injected toolchain faults: clean failure, no leaks, usable afterwards
//===----------------------------------------------------------------------===//

class NativeFaultInjection : public ::testing::Test {
protected:
  std::string CacheDir;

  void SetUp() override {
    if (!haveToolchain())
      GTEST_SKIP() << "no system C++ compiler on PATH";
    // Per-process cache: ctest runs each test in its own process, and
    // concurrent tests sharing a directory would delete it from under
    // each other's compiles.
    CacheDir = ::testing::TempDir() + "lift-native-fault-cache-" +
               std::to_string(::getpid());
    ::setenv("LIFT_NATIVE_CACHE_DIR", CacheDir.c_str(), 1);
  }

  void TearDown() override {
    ocl::fault::disarm();
    ::unsetenv("LIFT_NATIVE_CACHE_DIR");
    std::error_code EC;
    std::filesystem::remove_all(CacheDir, EC);
  }

  /// No half-written temp files may survive an injected fault.
  void expectNoTempFiles() {
    std::error_code EC;
    for (const auto &Entry :
         std::filesystem::directory_iterator(CacheDir, EC))
      EXPECT_EQ(Entry.path().filename().string().find(".tmp"),
                std::string::npos)
          << "leaked temp file: " << Entry.path();
  }

  Expected<bench::NativeOutcome> launchNative(DiagnosticEngine &E) {
    bench::RunOptions Run;
    Run.Threads = 1;
    return bench::runLiftNativeChecked(bench::makeNN(false),
                                       bench::OptConfig::Full, Run, E);
  }
};

TEST_F(NativeFaultInjection, ToolchainSitesFailCleanly) {
  using ocl::fault::Site;
  for (Site S :
       {Site::NativeCompile, Site::NativeLoad, Site::NativeSym}) {
    // Fresh cache per site so the compile path really runs each time.
    std::error_code EC;
    std::filesystem::remove_all(CacheDir, EC);
    // Persistent outage: the toolchain sites sit under the transient
    // retry policy (support/Retry.h), which recovers a one-shot fault.
    ocl::fault::armAlways(S);
    DiagnosticEngine E;
    Expected<bench::NativeOutcome> R = launchNative(E);
    EXPECT_FALSE(bool(R)) << "site " << ocl::fault::siteName(S)
                          << " did not fail";
    bool SawInjected = false;
    for (const Diagnostic &D : E.diagnostics())
      SawInjected |= D.Code == DiagCode::RuntimeFaultInjected;
    EXPECT_TRUE(SawInjected)
        << "site " << ocl::fault::siteName(S) << " produced:\n"
        << E.render();
    expectNoTempFiles();
    ocl::fault::disarm();

    // Both backends recover immediately after the fault clears.
    DiagnosticEngine E2;
    Expected<bench::NativeOutcome> R2 = launchNative(E2);
    EXPECT_TRUE(bool(R2)) << E2.render();
    bench::RunOptions Run;
    Run.Threads = 1;
    DiagnosticEngine E3;
    Expected<bench::Outcome> Sim = bench::runLiftChecked(
        bench::makeNN(false), bench::OptConfig::Full, Run, E3);
    EXPECT_TRUE(bool(Sim)) << E3.render();
  }
}

/// Artifact-cache integrity: a cached .so whose bytes no longer match
/// the recorded content hash (torn write, disk corruption, a different
/// compiler clobbering the file) is evicted and recompiled with an
/// E0611 warning — and the relaunched benchmark still validates.
TEST_F(NativeFaultInjection, CorruptCachedObjectIsEvictedAndRecompiled) {
  namespace fs = std::filesystem;

  // Warm the cache and remember the artifacts.
  DiagnosticEngine E1;
  Expected<bench::NativeOutcome> Warm = launchNative(E1);
  ASSERT_TRUE(bool(Warm)) << E1.render();
  std::vector<fs::path> Objects;
  for (const auto &Entry : fs::directory_iterator(CacheDir)) {
    if (Entry.path().extension() == ".so") {
      Objects.push_back(Entry.path());
      // Every artifact carries its content-hash sidecar.
      fs::path Hash = Entry.path();
      Hash.replace_extension(".hash");
      EXPECT_TRUE(fs::exists(Hash)) << "missing sidecar for " << Entry.path();
    }
  }
  ASSERT_FALSE(Objects.empty()) << "warm launch cached no shared objects";

  // Swap every cached object for garbage. Replace via rename rather than
  // truncating in place: the warm launch still holds these objects mapped,
  // and yanking a mapped inode's pages out from under the process SIGBUSes
  // on the next fault-in (in dlclose's FINI walk, here) — a POSIX hazard no
  // integrity check can defend against. Rename-replace models the real
  // corruption (the path now serves wrong bytes) while the old inode stays
  // alive until the runtime evicts and unmaps it.
  for (const fs::path &So : Objects) {
    fs::path Tmp = So;
    Tmp += ".garbage";
    {
      std::ofstream Out(Tmp, std::ios::trunc | std::ios::binary);
      Out << "not an object file";
    }
    fs::rename(Tmp, So);
  }

  DiagnosticEngine E2;
  Expected<bench::NativeOutcome> Again = launchNative(E2);
  ASSERT_TRUE(bool(Again)) << E2.render();
  EXPECT_TRUE(Again->Valid);
  bool SawEviction = false;
  for (const Diagnostic &D : E2.diagnostics())
    SawEviction |= D.Code == DiagCode::NativeArtifactCorrupt;
  EXPECT_TRUE(SawEviction) << "no E0611 eviction warning:\n" << E2.render();
  EXPECT_FALSE(E2.hasErrors()) << E2.render();
  EXPECT_EQ(Warm->Output, Again->Output)
      << "recompilation after corruption changed the results";

  // A missing sidecar is the same condition (the hash was never
  // persisted): reuse is refused and the artifact recompiled.
  for (const fs::path &So : Objects) {
    fs::path Hash = So;
    Hash.replace_extension(".hash");
    fs::remove(Hash);
  }
  DiagnosticEngine E3;
  Expected<bench::NativeOutcome> Third = launchNative(E3);
  ASSERT_TRUE(bool(Third)) << E3.render();
  bool SawMissing = false;
  for (const Diagnostic &D : E3.diagnostics())
    SawMissing |= D.Code == DiagCode::NativeArtifactCorrupt;
  EXPECT_TRUE(SawMissing) << "missing sidecar went unnoticed:\n"
                          << E3.render();
  EXPECT_EQ(Warm->Output, Third->Output);
}

TEST_F(NativeFaultInjection, SeededSweepNeverLeaks) {
  // The soak-style mode: probabilistic faults across every site while the
  // native path runs repeatedly. Every launch either succeeds or fails
  // with recorded diagnostics; the cache directory stays temp-free.
  for (uint64_t Seed = 1; Seed <= 8; ++Seed) {
    ocl::fault::armSeeded(Seed);
    DiagnosticEngine E;
    Expected<bench::NativeOutcome> R = launchNative(E);
    if (!R) {
      EXPECT_TRUE(E.hasErrors()) << "silent failure at seed " << Seed;
    }
    expectNoTempFiles();
  }
  ocl::fault::disarm();
  DiagnosticEngine E;
  EXPECT_TRUE(bool(launchNative(E))) << E.render();
}

//===----------------------------------------------------------------------===//
// Data-dependent Lookup tables (gatherIndices) through lift_lookup
//===----------------------------------------------------------------------===//

// gatherIndices lowers to an arith Lookup (data-dependent index into a
// runtime table); the native backend routes it through the bounds-checked
// lift_lookup helper. Builds idx[16] selecting from x[8].
ir::LambdaPtr gatherProgram() {
  using namespace ir::dsl;
  auto N = arith::sizeVar("N");
  auto M = arith::sizeVar("M");
  ParamPtr Idx = param("idx", arrayOf(int32(), M));
  ParamPtr X = param("x", arrayOf(float32(), N));
  return lambda({Idx, X}, pipe(call(gatherIndices(), {Idx, X}),
                               mapGlb(prelude::idFloatFun())));
}

Expected<codegen::CompiledKernel> compileGather(DiagnosticEngine &Engine) {
  codegen::CompilerOptions Opts;
  Opts.GlobalSize = {8, 1, 1};
  Opts.LocalSize = {4, 1, 1};
  return codegen::compileChecked(gatherProgram(), Opts, Engine);
}

TEST(NativeLookup, GatherIndicesBitIdentical) {
  SKIP_WITHOUT_TOOLCHAIN();
  DiagnosticEngine Engine;
  Expected<codegen::CompiledKernel> K = compileGather(Engine);
  ASSERT_TRUE(bool(K)) << Engine.render();

  const std::vector<int> Indices = {5, 3, 7, 1, 0, 6, 2, 4,
                                    5, 5, 5, 5, 0, 1, 2, 3};
  const std::vector<float> In = randomFloats(8, 18);
  ocl::LaunchConfig Cfg;
  Cfg.Global = {8, 1, 1};
  Cfg.Local = {4, 1, 1};
  const std::map<std::string, int64_t> Sizes = {{"N", 8}, {"M", 16}};

  ocl::Buffer SimIdx = ocl::Buffer::ofInts(Indices);
  ocl::Buffer SimX = ocl::Buffer::ofFloats(In);
  ocl::Buffer SimOut = ocl::Buffer::zeros(Indices.size());
  ASSERT_TRUE(bool(ocl::launchChecked(*K, {&SimIdx, &SimX, &SimOut}, Sizes,
                                      Cfg, Engine)))
      << Engine.render();

  ocl::Buffer NatIdx = ocl::Buffer::ofInts(Indices);
  ocl::Buffer NatX = ocl::Buffer::ofFloats(In);
  ocl::Buffer NatOut = ocl::Buffer::zeros(Indices.size());
  ASSERT_TRUE(bool(native::launchNativeChecked(
      *K, {&NatIdx, &NatX, &NatOut}, Sizes, Cfg, Engine)))
      << Engine.render();

  EXPECT_TRUE(bitIdentical(SimOut.toFlatFloats(), NatOut.toFlatFloats()));
}

TEST(NativeLookup, OutOfBoundsMatchesSimulator) {
  SKIP_WITHOUT_TOOLCHAIN();
  DiagnosticEngine Engine;
  Expected<codegen::CompiledKernel> K = compileGather(Engine);
  ASSERT_TRUE(bool(K)) << Engine.render();

  // idx[3] == 9 reads past x[8): both runtimes must fail with the same
  // E0503 "load out of bounds" diagnostic (the lookup itself is in
  // bounds; the gathered load it feeds is not).
  const std::vector<int> Indices = {5, 3, 7, 9, 0, 6, 2, 4,
                                    5, 5, 5, 5, 0, 1, 2, 3};
  const std::vector<float> In = randomFloats(8, 18);
  ocl::LaunchConfig Cfg;
  Cfg.Global = {8, 1, 1};
  Cfg.Local = {4, 1, 1};
  const std::map<std::string, int64_t> Sizes = {{"N", 8}, {"M", 16}};

  {
    DiagnosticEngine E;
    ocl::Buffer Idx = ocl::Buffer::ofInts(Indices);
    ocl::Buffer X = ocl::Buffer::ofFloats(In);
    ocl::Buffer Out = ocl::Buffer::zeros(Indices.size());
    Expected<ocl::LaunchResult> R =
        ocl::launchChecked(*K, {&Idx, &X, &Out}, Sizes, Cfg, E);
    ASSERT_FALSE(bool(R)) << "simulator accepted an out-of-bounds lookup";
    EXPECT_TRUE(E.render().find("load out of bounds: index 9 of 8") !=
                std::string::npos)
        << E.render();
  }
  {
    DiagnosticEngine E;
    ocl::Buffer Idx = ocl::Buffer::ofInts(Indices);
    ocl::Buffer X = ocl::Buffer::ofFloats(In);
    ocl::Buffer Out = ocl::Buffer::zeros(Indices.size());
    Expected<native::NativeLaunchResult> R =
        native::launchNativeChecked(*K, {&Idx, &X, &Out}, Sizes, Cfg, E);
    ASSERT_FALSE(bool(R)) << "native backend accepted an out-of-bounds lookup";
    EXPECT_TRUE(E.render().find("load out of bounds: index 9 of 8") !=
                std::string::npos)
        << E.render();
    EXPECT_TRUE(Out.Poisoned);
  }
}

//===----------------------------------------------------------------------===//
// Host memory accounting across the marshalling boundary
//===----------------------------------------------------------------------===//

/// The native launch marshals every pointer parameter into flat word
/// arrays (plus a pre-launch copy of caller buffers for readback); that
/// transient footprint must show up in the host high-water mark and be
/// fully released when the launch returns. The gather kernel pins the
/// exact numbers: three caller buffers of 16 + 8 + 16 scalar elements,
/// one 64-bit word each, marshalled and saved.
TEST(NativeHostMemory, MarshallingChargesTheHostHighWater) {
  SKIP_WITHOUT_TOOLCHAIN();
  DiagnosticEngine Engine;
  Expected<codegen::CompiledKernel> K = compileGather(Engine);
  ASSERT_TRUE(bool(K)) << Engine.render();

  // Warm the shared-object cache so the measured launch does not also
  // account a first-time compile.
  const std::vector<int> Indices = {5, 3, 7, 1, 0, 6, 2, 4,
                                    5, 5, 5, 5, 0, 1, 2, 3};
  const std::vector<float> In = randomFloats(8, 18);
  ocl::LaunchConfig Cfg;
  Cfg.Global = {8, 1, 1};
  Cfg.Local = {4, 1, 1};
  const std::map<std::string, int64_t> Sizes = {{"N", 8}, {"M", 16}};
  {
    ocl::Buffer Idx = ocl::Buffer::ofInts(Indices);
    ocl::Buffer X = ocl::Buffer::ofFloats(In);
    ocl::Buffer Out = ocl::Buffer::zeros(Indices.size());
    ASSERT_TRUE(bool(native::launchNativeChecked(*K, {&Idx, &X, &Out}, Sizes,
                                                 Cfg, Engine)))
        << Engine.render();
  }

  ocl::resetHostBytesHighWater();
  const uint64_t Live0 = ocl::hostBytesLive();
  ASSERT_EQ(ocl::hostBytesHighWater(), Live0);

  constexpr uint64_t Elements = 16 + 8 + 16;
  {
    ocl::Buffer Idx = ocl::Buffer::ofInts(Indices);
    ocl::Buffer X = ocl::Buffer::ofFloats(In);
    ocl::Buffer Out = ocl::Buffer::zeros(Indices.size());
    const uint64_t TrackedBuffers = ocl::hostBytesLive() - Live0;
    EXPECT_EQ(TrackedBuffers, Elements * sizeof(ocl::Value));

    ASSERT_TRUE(bool(native::launchNativeChecked(*K, {&Idx, &X, &Out}, Sizes,
                                                 Cfg, Engine)))
        << Engine.render();

    // Arena words for every caller buffer plus a pre-launch copy of the
    // one buffer the kernel writes (out, 16 elements); idx and x are
    // proven read-only by the write-set analysis, so their copy and
    // readback are skipped entirely.
    const uint64_t Marshalled = (Elements + 16) * sizeof(uint64_t);
    EXPECT_EQ(ocl::hostBytesHighWater(), Live0 + TrackedBuffers + Marshalled);
    // The marshalling charge is released the moment the launch returns.
    EXPECT_EQ(ocl::hostBytesLive(), Live0 + TrackedBuffers);
  }
  EXPECT_EQ(ocl::hostBytesLive(), Live0);
}

} // namespace
