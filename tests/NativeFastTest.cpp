//===- NativeFastTest.cpp - Fast-mode native differential tier ------------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fast-mode differential tier (ctest -L native-fast). The native
/// backend's fast mode (NativeMode::Fast) trades the simulator's exact
/// double/int64 value model for natively-typed scalars (float/int32_t)
/// and -O3 -march=native. That trade is bounded by contract
/// (docs/NATIVE_BACKEND.md):
///
///  - exact mode stays bit-identical to the simulator on every program
///    fast mode runs — the two modes share one printer, so this guards
///    the mode split itself;
///  - fast-mode outputs stay within the documented tolerance
///    |a - b| <= 1e-4 + 1e-3 * |b| of the simulator (both-non-finite
///    values agree by class), across the twelve paper benchmarks and
///    256 random generator programs;
///  - runtime diagnostics are mode-independent: out-of-bounds lookups
///    and loads (E0502/E0503), data-dependent vector accesses (the
///    vload/vstore messages), and out-of-subset rejections (E0607)
///    render identically in exact and fast mode;
///  - data-dependent vector load/store indices — rejected as E0607
///    before the bounds-checked lowering — execute end-to-end and
///    report the interpreter's exact messages when out of bounds.
///
/// Every test skips cleanly when no system compiler is installed.
///
//===----------------------------------------------------------------------===//

#include "Generator.h"
#include "TestHelpers.h"
#include "native/Native.h"
#include "native/NativePrinter.h"
#include "suite/Benchmark.h"
#include "support/Diagnostics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <map>
#include <string>
#include <vector>

using namespace lift;
using namespace lift::ir;
using namespace lift::test;

namespace {

bool haveToolchain() { return !native::toolchainCompiler().empty(); }

#define SKIP_WITHOUT_TOOLCHAIN()                                               \
  do {                                                                         \
    if (!haveToolchain())                                                      \
      GTEST_SKIP() << "no system C++ compiler on PATH "                        \
                      "(set LIFT_NATIVE_CXX to override)";                     \
  } while (0)

bool bitIdentical(const std::vector<float> &A, const std::vector<float> &B) {
  return A.size() == B.size() &&
         (A.empty() ||
          std::memcmp(A.data(), B.data(), A.size() * sizeof(float)) == 0);
}

/// The documented fast-mode tolerance: |a - b| <= 1e-4 + 1e-3 * |b|,
/// where b is the simulator's (exact) value. Non-finite values must agree
/// as a class — fast mode may not turn a finite result into inf/NaN or
/// vice versa.
::testing::AssertionResult withinFastTolerance(const std::vector<float> &A,
                                               const std::vector<float> &B) {
  if (A.size() != B.size())
    return ::testing::AssertionFailure()
           << "size mismatch: " << A.size() << " vs " << B.size();
  for (size_t I = 0; I != A.size(); ++I) {
    if (!std::isfinite(A[I]) || !std::isfinite(B[I])) {
      if (std::isfinite(A[I]) != std::isfinite(B[I]))
        return ::testing::AssertionFailure()
               << "element " << I << ": " << A[I] << " vs " << B[I]
               << " (finiteness differs)";
      continue;
    }
    double Diff = std::fabs(static_cast<double>(A[I]) -
                            static_cast<double>(B[I]));
    if (Diff > 1e-4 + 1e-3 * std::fabs(static_cast<double>(B[I])))
      return ::testing::AssertionFailure()
             << "element " << I << ": " << A[I] << " vs " << B[I]
             << " (diff " << Diff << ")";
  }
  return ::testing::AssertionSuccess();
}

//===----------------------------------------------------------------------===//
// Benchmarks: fast mode within tolerance, exact mode still bit-identical
//===----------------------------------------------------------------------===//

class BenchmarkFastMode : public ::testing::TestWithParam<int> {};

TEST_P(BenchmarkFastMode, WithinToleranceOfSimulator) {
  SKIP_WITHOUT_TOOLCHAIN();
  auto Cases = bench::allBenchmarks(/*Large=*/false);
  const bench::BenchmarkCase &Case =
      Cases[static_cast<size_t>(GetParam())];

  bench::RunOptions Run;
  Run.Threads = 1;
  DiagnosticEngine SimEngine;
  Expected<bench::Outcome> Sim =
      bench::runLiftChecked(Case, bench::OptConfig::Full, Run, SimEngine);
  ASSERT_TRUE(bool(Sim)) << Case.Name << ":\n" << SimEngine.render();

  // Exact mode: the control group. Bit-identical, always.
  Run.NativeMode = native::NativeMode::Exact;
  DiagnosticEngine ExactEngine;
  Expected<bench::NativeOutcome> Exact = bench::runLiftNativeChecked(
      Case, bench::OptConfig::Full, Run, ExactEngine);
  ASSERT_TRUE(bool(Exact)) << Case.Name << ":\n" << ExactEngine.render();
  EXPECT_TRUE(bitIdentical(Sim->Output, Exact->Output))
      << Case.Name << ": exact mode diverged from the simulator";

  // Fast mode, serial and threaded: valid against the host golden
  // reference and within the documented tolerance of the simulator.
  for (int Threads : {1, 4}) {
    Run.Threads = Threads;
    Run.NativeMode = native::NativeMode::Fast;
    DiagnosticEngine FastEngine;
    Expected<bench::NativeOutcome> Fast = bench::runLiftNativeChecked(
        Case, bench::OptConfig::Full, Run, FastEngine);
    ASSERT_TRUE(bool(Fast)) << Case.Name << ":\n" << FastEngine.render();
    EXPECT_TRUE(Fast->Valid)
        << Case.Name << " fast max error " << Fast->MaxError;
    EXPECT_TRUE(withinFastTolerance(Fast->Output, Sim->Output))
        << Case.Name << " at " << Threads << " threads";
  }
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, BenchmarkFastMode,
                         ::testing::Range(0, 12));

//===----------------------------------------------------------------------===//
// Random well-typed programs (the same 256-program sweep as the exact
// tier, compared under the fast-mode tolerance)
//===----------------------------------------------------------------------===//

class GeneratorFastMode : public ::testing::TestWithParam<int> {};

TEST_P(GeneratorFastMode, WithinToleranceOfSimulator) {
  SKIP_WITHOUT_TOOLCHAIN();
  constexpr int ProgramsPerSeed = 4;
  for (int I = 0; I != ProgramsPerSeed; ++I) {
    uint64_t Seed = static_cast<uint64_t>(GetParam()) * 977 + I;
    size_t OutCount = 0;
    bool TwoInputs = false;
    LambdaPtr P = generateWellTyped(Seed, OutCount, TwoInputs);

    DiagnosticEngine Engine;
    codegen::CompilerOptions Opts;
    Opts.GlobalSize = {16, 1, 1};
    Opts.LocalSize = {4, 1, 1};
    Expected<codegen::CompiledKernel> K =
        codegen::compileChecked(P, Opts, Engine);
    ASSERT_TRUE(bool(K)) << "seed " << Seed << ":\n" << Engine.render();

    auto launch = [&](bool Native, native::NativeMode Mode,
                      std::vector<float> &Out) -> ::testing::AssertionResult {
      ocl::Buffer In = ocl::Buffer::ofFloats(randomFloats(48, Seed));
      ocl::Buffer In2 = ocl::Buffer::ofFloats(randomFloats(48, Seed + 7));
      ocl::Buffer OutBuf = ocl::Buffer::zeros(OutCount);
      std::vector<ocl::Buffer *> Bufs;
      Bufs.push_back(&In);
      if (TwoInputs)
        Bufs.push_back(&In2);
      Bufs.push_back(&OutBuf);
      ocl::LaunchConfig Cfg = ocl::LaunchConfig::fromOptions(Opts);
      Cfg.Threads = Native ? static_cast<int>(1 + Seed % 4) : 1;
      DiagnosticEngine E;
      bool Ok;
      if (Native)
        Ok = bool(native::launchNativeChecked(*K, Bufs, {{"N", 48}}, Cfg, E,
                                              Mode));
      else
        Ok = bool(ocl::launchChecked(*K, Bufs, {{"N", 48}}, Cfg, E));
      if (!Ok)
        return ::testing::AssertionFailure()
               << (Native ? "native" : "sim") << " launch failed (seed "
               << Seed << "):\n"
               << E.render();
      Out = OutBuf.toFlatFloats();
      return ::testing::AssertionSuccess();
    };

    std::vector<float> SimOut, FastOut;
    ASSERT_TRUE(launch(false, native::NativeMode::Exact, SimOut));
    ASSERT_TRUE(launch(true, native::NativeMode::Fast, FastOut));
    EXPECT_TRUE(withinFastTolerance(FastOut, SimOut)) << "seed " << Seed;
  }
}

// 64 seeds x 4 programs = 256 fast-mode differential programs, the same
// corpus the exact tier sweeps bit-identically.
INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorFastMode, ::testing::Range(0, 64));

//===----------------------------------------------------------------------===//
// Data-dependent vector loads (gatherIndices over float4)
//===----------------------------------------------------------------------===//

/// gatherIndices over a vectorized array: every element load is a float4
/// vload whose index contains a runtime Lookup — the construct the
/// native backend used to reject as E0607 and now lowers through
/// lift_vload_chk. idx[M] selects float4s from x (N floats = N/4
/// vectors).
ir::LambdaPtr vecGatherProgram() {
  using namespace ir::dsl;
  auto N = arith::sizeVar("N");
  auto M = arith::sizeVar("M");
  ParamPtr Idx = param("idx", arrayOf(int32(), M));
  ParamPtr X = param("x", arrayOf(float32(), N));
  return lambda({Idx, X},
                pipe(call(gatherIndices(), {Idx, pipe(ExprPtr(X),
                                                      asVector(4))}),
                     mapGlb(prelude::idFloat4Fun()), asScalar()));
}

Expected<codegen::CompiledKernel> compileVecGather(DiagnosticEngine &Engine) {
  codegen::CompilerOptions Opts;
  Opts.GlobalSize = {8, 1, 1};
  Opts.LocalSize = {4, 1, 1};
  return codegen::compileChecked(vecGatherProgram(), Opts, Engine);
}

const std::map<std::string, int64_t> kGatherSizes = {{"N", 32}, {"M", 8}};

ocl::LaunchConfig gatherConfig() {
  ocl::LaunchConfig Cfg;
  Cfg.Global = {8, 1, 1};
  Cfg.Local = {4, 1, 1};
  return Cfg;
}

TEST(NativeVectorGather, InBoundsMatchesSimulator) {
  SKIP_WITHOUT_TOOLCHAIN();
  DiagnosticEngine Engine;
  Expected<codegen::CompiledKernel> K = compileVecGather(Engine);
  ASSERT_TRUE(bool(K)) << Engine.render();

  const std::vector<int> Indices = {5, 3, 7, 1, 0, 6, 2, 4};
  const std::vector<float> In = randomFloats(32, 21);

  ocl::Buffer SimIdx = ocl::Buffer::ofInts(Indices);
  ocl::Buffer SimX = ocl::Buffer::ofFloats(In);
  ocl::Buffer SimOut = ocl::Buffer::zeros(32);
  ASSERT_TRUE(bool(ocl::launchChecked(*K, {&SimIdx, &SimX, &SimOut},
                                      kGatherSizes, gatherConfig(), Engine)))
      << Engine.render();

  // Exact mode: bit-identical through the checked vload path.
  {
    ocl::Buffer Idx = ocl::Buffer::ofInts(Indices);
    ocl::Buffer X = ocl::Buffer::ofFloats(In);
    ocl::Buffer Out = ocl::Buffer::zeros(32);
    ASSERT_TRUE(bool(native::launchNativeChecked(
        *K, {&Idx, &X, &Out}, kGatherSizes, gatherConfig(), Engine,
        native::NativeMode::Exact)))
        << Engine.render();
    EXPECT_TRUE(bitIdentical(SimOut.toFlatFloats(), Out.toFlatFloats()));
  }
  // Fast mode: a pure permutation, so float32 marshalling round-trips
  // the input bits and the result is still bit-identical.
  {
    ocl::Buffer Idx = ocl::Buffer::ofInts(Indices);
    ocl::Buffer X = ocl::Buffer::ofFloats(In);
    ocl::Buffer Out = ocl::Buffer::zeros(32);
    ASSERT_TRUE(bool(native::launchNativeChecked(
        *K, {&Idx, &X, &Out}, kGatherSizes, gatherConfig(), Engine,
        native::NativeMode::Fast)))
        << Engine.render();
    EXPECT_TRUE(bitIdentical(SimOut.toFlatFloats(), Out.toFlatFloats()));
  }
}

TEST(NativeVectorGather, RandomPatternsMatchSimulator) {
  SKIP_WITHOUT_TOOLCHAIN();
  DiagnosticEngine Engine;
  Expected<codegen::CompiledKernel> K = compileVecGather(Engine);
  ASSERT_TRUE(bool(K)) << Engine.render();

  // 16 random in-bounds gather patterns per mode, seeds disjoint from
  // the shared generator's.
  for (uint64_t Seed = 1; Seed <= 16; ++Seed) {
    std::vector<int> Indices(8);
    uint64_t S = Seed * 2654435761u + 1;
    for (int &I : Indices) {
      S ^= S << 13;
      S ^= S >> 7;
      S ^= S << 17;
      I = static_cast<int>(S % 8);
    }
    const std::vector<float> In = randomFloats(32, Seed + 100);

    ocl::Buffer SimIdx = ocl::Buffer::ofInts(Indices);
    ocl::Buffer SimX = ocl::Buffer::ofFloats(In);
    ocl::Buffer SimOut = ocl::Buffer::zeros(32);
    ASSERT_TRUE(bool(ocl::launchChecked(*K, {&SimIdx, &SimX, &SimOut},
                                        kGatherSizes, gatherConfig(),
                                        Engine)))
        << Engine.render();

    for (native::NativeMode Mode :
         {native::NativeMode::Exact, native::NativeMode::Fast}) {
      ocl::Buffer Idx = ocl::Buffer::ofInts(Indices);
      ocl::Buffer X = ocl::Buffer::ofFloats(In);
      ocl::Buffer Out = ocl::Buffer::zeros(32);
      ASSERT_TRUE(bool(native::launchNativeChecked(
          *K, {&Idx, &X, &Out}, kGatherSizes, gatherConfig(), Engine, Mode)))
          << Engine.render();
      EXPECT_TRUE(bitIdentical(SimOut.toFlatFloats(), Out.toFlatFloats()))
          << "seed " << Seed << " mode "
          << (Mode == native::NativeMode::Fast ? "fast" : "exact");
    }
  }
}

TEST(NativeVectorGather, OutOfBoundsMatchesSimulatorInBothModes) {
  SKIP_WITHOUT_TOOLCHAIN();
  DiagnosticEngine Engine;
  Expected<codegen::CompiledKernel> K = compileVecGather(Engine);
  ASSERT_TRUE(bool(K)) << Engine.render();

  // idx[2] == 8 reads float4 #8 of x[32) = vectors [0,8) — component
  // offset 32 is out of bounds. The interpreter's detail-free message.
  const std::vector<int> Indices = {5, 3, 8, 1, 0, 6, 2, 4};
  const std::vector<float> In = randomFloats(32, 22);

  std::string SimRendered;
  {
    DiagnosticEngine E;
    ocl::Buffer Idx = ocl::Buffer::ofInts(Indices);
    ocl::Buffer X = ocl::Buffer::ofFloats(In);
    ocl::Buffer Out = ocl::Buffer::zeros(32);
    ASSERT_FALSE(bool(ocl::launchChecked(*K, {&Idx, &X, &Out}, kGatherSizes,
                                         gatherConfig(), E)))
        << "simulator accepted an out-of-bounds vector gather";
    SimRendered = E.render();
    EXPECT_NE(SimRendered.find("vload out of bounds"), std::string::npos)
        << SimRendered;
  }
  for (native::NativeMode Mode :
       {native::NativeMode::Exact, native::NativeMode::Fast}) {
    DiagnosticEngine E;
    ocl::Buffer Idx = ocl::Buffer::ofInts(Indices);
    ocl::Buffer X = ocl::Buffer::ofFloats(In);
    ocl::Buffer Out = ocl::Buffer::zeros(32);
    ASSERT_FALSE(bool(native::launchNativeChecked(
        *K, {&Idx, &X, &Out}, kGatherSizes, gatherConfig(), E, Mode)))
        << "native accepted an out-of-bounds vector gather";
    EXPECT_NE(E.render().find("vload out of bounds"), std::string::npos)
        << E.render();
    EXPECT_TRUE(Out.Poisoned);
  }
}

//===----------------------------------------------------------------------===//
// Data-dependent vector stores
//===----------------------------------------------------------------------===//

/// Codegen cannot yet produce a data-dependent vstore from IR (writing
/// through gatherIndices is rejected at compile time), so the scatter
/// kernel is derived from the compiled gather kernel by AST surgery:
/// every vstore(value-with-gathered-vload, affine) becomes
/// vstore(affine-vload, gathered) — out[idx[i]] = x[i]. Both the
/// simulator and the native backend execute the rewritten AST, so the
/// differential comparison is still meaningful.
class ScatterRewriter {
public:
  static bool rewrite(codegen::CompiledKernel &K) {
    if (!K.Module.Kernel || !K.Module.Kernel->Body)
      return false;
    ScatterRewriter R;
    c::BlockPtr NewBody = R.rewriteBlock(K.Module.Kernel->Body);
    if (!R.Rewrote)
      return false;
    auto NewKernel = std::make_shared<c::CFunction>(*K.Module.Kernel);
    NewKernel->Body = std::move(NewBody);
    K.Module.Kernel = std::move(NewKernel);
    K.Slots = nullptr; // slot numbering is recomputed on first launch
    return true;
  }

private:
  bool Rewrote = false;

  static bool arithHasLookup(const arith::Expr &E) {
    if (!E)
      return false;
    switch (E->getKind()) {
    case arith::ExprKind::Lookup:
      return true;
    case arith::ExprKind::Sum:
      for (const arith::Expr &Op :
           static_cast<const arith::SumNode &>(*E).getOperands())
        if (arithHasLookup(Op))
          return true;
      return false;
    case arith::ExprKind::Prod:
      for (const arith::Expr &Op :
           static_cast<const arith::ProdNode &>(*E).getOperands())
        if (arithHasLookup(Op))
          return true;
      return false;
    case arith::ExprKind::IntDiv: {
      const auto &D = static_cast<const arith::IntDivNode &>(*E);
      return arithHasLookup(D.getNumerator()) ||
             arithHasLookup(D.getDenominator());
    }
    case arith::ExprKind::Mod: {
      const auto &M = static_cast<const arith::ModNode &>(*E);
      return arithHasLookup(M.getDividend()) ||
             arithHasLookup(M.getDivisor());
    }
    case arith::ExprKind::Pow:
      return arithHasLookup(
          static_cast<const arith::PowNode &>(*E).getBase());
    default:
      return false;
    }
  }

  static bool exprHasLookup(const c::CExprPtr &E) {
    if (!E)
      return false;
    if (E->getKind() == c::CExprKind::ArithValue)
      return arithHasLookup(
          static_cast<const c::ArithValue &>(*E).getValue());
    return false;
  }

  /// Finds the first VectorLoad in \p E whose index is data-dependent.
  static const c::VectorLoad *findGatheredLoad(const c::CExprPtr &E) {
    if (!E)
      return nullptr;
    if (E->getKind() == c::CExprKind::VectorLoad) {
      const auto &VL = static_cast<const c::VectorLoad &>(*E);
      if (exprHasLookup(VL.getIndex()))
        return &VL;
    }
    if (E->getKind() == c::CExprKind::Call)
      for (const c::CExprPtr &A :
           static_cast<const c::Call &>(*E).getArgs())
        if (const c::VectorLoad *VL = findGatheredLoad(A))
          return VL;
    return nullptr;
  }

  c::CStmtPtr rewriteStmt(const c::CStmtPtr &S) {
    switch (S->getKind()) {
    case c::CStmtKind::Block:
      return rewriteBlock(std::static_pointer_cast<const c::Block>(S));
    case c::CStmtKind::For: {
      const auto &F = static_cast<const c::For &>(*S);
      return std::make_shared<c::For>(F.getIV(), F.getInit(), F.getCond(),
                                      F.getStep(),
                                      rewriteBlock(F.getBody()));
    }
    case c::CStmtKind::ExprStmt: {
      const auto &ES = static_cast<const c::ExprStmt &>(*S);
      const c::CExprPtr &E = ES.getExpr();
      if (E->getKind() != c::CExprKind::VectorStore)
        return S;
      const auto &VS = static_cast<const c::VectorStore &>(*E);
      const c::VectorLoad *VL = findGatheredLoad(VS.getValue());
      if (!VL || exprHasLookup(VS.getIndex()))
        return S;
      // Swap the indices: load becomes affine, store becomes gathered.
      auto NewLoad = std::make_shared<c::VectorLoad>(
          VL->getWidth(), VS.getIndex(), VL->getPointer());
      auto NewStore = std::make_shared<c::VectorStore>(
          VS.getWidth(), std::move(NewLoad), VL->getIndex(),
          VS.getPointer());
      Rewrote = true;
      return std::make_shared<c::ExprStmt>(std::move(NewStore));
    }
    default:
      return S;
    }
  }

  c::BlockPtr rewriteBlock(const c::BlockPtr &B) {
    std::vector<c::CStmtPtr> Stmts;
    for (const c::CStmtPtr &S : B->getStmts())
      Stmts.push_back(rewriteStmt(S));
    return std::make_shared<c::Block>(std::move(Stmts));
  }
};

Expected<codegen::CompiledKernel>
compileVecScatter(DiagnosticEngine &Engine) {
  Expected<codegen::CompiledKernel> K = compileVecGather(Engine);
  if (!K)
    return K;
  if (!ScatterRewriter::rewrite(*K))
    throwDiag(DiagCode::NativeUnsupported, DiagLocation(),
              "scatter rewrite found no gathered vstore to derive");
  return K;
}

TEST(NativeVectorScatter, InBoundsMatchesSimulator) {
  SKIP_WITHOUT_TOOLCHAIN();
  DiagnosticEngine Engine;
  Expected<codegen::CompiledKernel> K = compileVecScatter(Engine);
  ASSERT_TRUE(bool(K)) << Engine.render();

  const std::vector<int> Indices = {5, 3, 7, 1, 0, 6, 2, 4};
  const std::vector<float> In = randomFloats(32, 23);

  ocl::Buffer SimIdx = ocl::Buffer::ofInts(Indices);
  ocl::Buffer SimX = ocl::Buffer::ofFloats(In);
  ocl::Buffer SimOut = ocl::Buffer::zeros(32);
  ASSERT_TRUE(bool(ocl::launchChecked(*K, {&SimIdx, &SimX, &SimOut},
                                      kGatherSizes, gatherConfig(), Engine)))
      << Engine.render();
  // Sanity: the rewrite scatters — out[idx[i]*4+k] == x[i*4+k].
  std::vector<float> SimFlat = SimOut.toFlatFloats();
  for (size_t I = 0; I != Indices.size(); ++I)
    for (size_t C = 0; C != 4; ++C)
      ASSERT_EQ(SimFlat[static_cast<size_t>(Indices[I]) * 4 + C],
                In[I * 4 + C])
          << "scatter rewrite did not permute the writes";

  for (native::NativeMode Mode :
       {native::NativeMode::Exact, native::NativeMode::Fast}) {
    ocl::Buffer Idx = ocl::Buffer::ofInts(Indices);
    ocl::Buffer X = ocl::Buffer::ofFloats(In);
    ocl::Buffer Out = ocl::Buffer::zeros(32);
    ASSERT_TRUE(bool(native::launchNativeChecked(
        *K, {&Idx, &X, &Out}, kGatherSizes, gatherConfig(), Engine, Mode)))
        << Engine.render();
    EXPECT_TRUE(bitIdentical(SimFlat, Out.toFlatFloats()))
        << "mode " << (Mode == native::NativeMode::Fast ? "fast" : "exact");
  }
}

TEST(NativeVectorScatter, OutOfBoundsMatchesSimulatorInBothModes) {
  SKIP_WITHOUT_TOOLCHAIN();
  DiagnosticEngine Engine;
  Expected<codegen::CompiledKernel> K = compileVecScatter(Engine);
  ASSERT_TRUE(bool(K)) << Engine.render();

  const std::vector<int> Indices = {5, 3, 9, 1, 0, 6, 2, 4}; // 9 * 4 >= 32
  const std::vector<float> In = randomFloats(32, 24);

  {
    DiagnosticEngine E;
    ocl::Buffer Idx = ocl::Buffer::ofInts(Indices);
    ocl::Buffer X = ocl::Buffer::ofFloats(In);
    ocl::Buffer Out = ocl::Buffer::zeros(32);
    ASSERT_FALSE(bool(ocl::launchChecked(*K, {&Idx, &X, &Out}, kGatherSizes,
                                         gatherConfig(), E)))
        << "simulator accepted an out-of-bounds vector scatter";
    EXPECT_NE(E.render().find("vstore out of bounds"), std::string::npos)
        << E.render();
  }
  for (native::NativeMode Mode :
       {native::NativeMode::Exact, native::NativeMode::Fast}) {
    DiagnosticEngine E;
    ocl::Buffer Idx = ocl::Buffer::ofInts(Indices);
    ocl::Buffer X = ocl::Buffer::ofFloats(In);
    ocl::Buffer Out = ocl::Buffer::zeros(32);
    ASSERT_FALSE(bool(native::launchNativeChecked(
        *K, {&Idx, &X, &Out}, kGatherSizes, gatherConfig(), E, Mode)))
        << "native accepted an out-of-bounds vector scatter";
    EXPECT_NE(E.render().find("vstore out of bounds"), std::string::npos)
        << E.render();
    EXPECT_TRUE(Out.Poisoned);
  }
}

//===----------------------------------------------------------------------===//
// Diagnostics parity across modes
//===----------------------------------------------------------------------===//

/// The scalar gather program of the exact tier: idx[3] == 9 feeds a load
/// past x[8), the interpreter's "load out of bounds: index 9 of 8"
/// (E0503 with details). Fast mode must render it identically.
ir::LambdaPtr scalarGatherProgram() {
  using namespace ir::dsl;
  auto N = arith::sizeVar("N");
  auto M = arith::sizeVar("M");
  ParamPtr Idx = param("idx", arrayOf(int32(), M));
  ParamPtr X = param("x", arrayOf(float32(), N));
  return lambda({Idx, X}, pipe(call(gatherIndices(), {Idx, X}),
                               mapGlb(prelude::idFloatFun())));
}

TEST(NativeFastDiagnostics, RuntimeOutOfBoundsRendersIdentically) {
  SKIP_WITHOUT_TOOLCHAIN();
  DiagnosticEngine Engine;
  codegen::CompilerOptions Opts;
  Opts.GlobalSize = {8, 1, 1};
  Opts.LocalSize = {4, 1, 1};
  Expected<codegen::CompiledKernel> K =
      codegen::compileChecked(scalarGatherProgram(), Opts, Engine);
  ASSERT_TRUE(bool(K)) << Engine.render();

  const std::vector<int> Indices = {5, 3, 7, 9, 0, 6, 2, 4,
                                    5, 5, 5, 5, 0, 1, 2, 3};
  const std::vector<float> In = randomFloats(8, 18);
  ocl::LaunchConfig Cfg;
  Cfg.Global = {8, 1, 1};
  Cfg.Local = {4, 1, 1};
  const std::map<std::string, int64_t> Sizes = {{"N", 8}, {"M", 16}};

  auto errorLine = [](const DiagnosticEngine &E) -> std::string {
    for (const Diagnostic &D : E.diagnostics())
      if (D.Severity == DiagSeverity::Error)
        return diagCodeId(D.Code) + ": " + D.Message;
    return "";
  };

  DiagnosticEngine SimE;
  {
    ocl::Buffer Idx = ocl::Buffer::ofInts(Indices);
    ocl::Buffer X = ocl::Buffer::ofFloats(In);
    ocl::Buffer Out = ocl::Buffer::zeros(Indices.size());
    ASSERT_FALSE(
        bool(ocl::launchChecked(*K, {&Idx, &X, &Out}, Sizes, Cfg, SimE)));
  }
  const std::string SimError = errorLine(SimE);
  EXPECT_NE(SimError.find("load out of bounds: index 9 of 8"),
            std::string::npos)
      << SimError;

  for (native::NativeMode Mode :
       {native::NativeMode::Exact, native::NativeMode::Fast}) {
    DiagnosticEngine E;
    ocl::Buffer Idx = ocl::Buffer::ofInts(Indices);
    ocl::Buffer X = ocl::Buffer::ofFloats(In);
    ocl::Buffer Out = ocl::Buffer::zeros(Indices.size());
    ASSERT_FALSE(bool(native::launchNativeChecked(*K, {&Idx, &X, &Out},
                                                  Sizes, Cfg, E, Mode)));
    EXPECT_EQ(errorLine(E), SimError)
        << "mode " << (Mode == native::NativeMode::Fast ? "fast" : "exact");
  }
}

TEST(NativeFastDiagnostics, LookupOutOfBoundsRendersIdentically) {
  SKIP_WITHOUT_TOOLCHAIN();
  DiagnosticEngine Engine;
  Expected<codegen::CompiledKernel> K = compileVecGather(Engine);
  ASSERT_TRUE(bool(K)) << Engine.render();

  // A negative gather index is out of the lookup table's own range
  // (E0502) — reported before any load is attempted.
  const std::vector<int> Indices = {5, 3, -1, 1, 0, 6, 2, 4};
  const std::vector<float> In = randomFloats(32, 25);

  auto errorOf = [&](bool Native, native::NativeMode Mode) -> std::string {
    DiagnosticEngine E;
    ocl::Buffer Idx = ocl::Buffer::ofInts(Indices);
    ocl::Buffer X = ocl::Buffer::ofFloats(In);
    ocl::Buffer Out = ocl::Buffer::zeros(32);
    bool Ok = Native
                  ? bool(native::launchNativeChecked(*K, {&Idx, &X, &Out},
                                                     kGatherSizes,
                                                     gatherConfig(), E, Mode))
                  : bool(ocl::launchChecked(*K, {&Idx, &X, &Out},
                                            kGatherSizes, gatherConfig(), E));
    if (Ok)
      return "<launch unexpectedly succeeded>";
    for (const Diagnostic &D : E.diagnostics())
      if (D.Severity == DiagSeverity::Error)
        return diagCodeId(D.Code) + ": " + D.Message;
    return "<no error recorded>";
  };

  const std::string Sim = errorOf(false, native::NativeMode::Exact);
  EXPECT_NE(Sim.find("E0503"), std::string::npos) << Sim;
  EXPECT_EQ(errorOf(true, native::NativeMode::Exact), Sim);
  EXPECT_EQ(errorOf(true, native::NativeMode::Fast), Sim);
}

TEST(NativeFastDiagnostics, UnsupportedConstructRendersIdenticallyE0607) {
  // Out-of-subset rejection is a printer property and needs no
  // toolchain: both modes must throw the same E0607 for a kernel that
  // calls a function the module does not define.
  c::CModule Module;
  auto Kernel = std::make_shared<c::CFunction>();
  Kernel->Name = "k";
  Kernel->IsKernel = true;
  std::vector<c::CStmtPtr> Stmts;
  Stmts.push_back(std::make_shared<c::ExprStmt>(
      std::make_shared<c::Call>("bogus", std::vector<c::CExprPtr>{})));
  Kernel->Body = std::make_shared<c::Block>(std::move(Stmts));
  Module.Kernel = Kernel;

  codegen::CompiledKernel K;
  K.Module = Module;

  auto messageOf = [&](native::NativeMode Mode) -> std::string {
    try {
      native::printNativeModule(K, Mode);
      return "<no error>";
    } catch (const DiagnosticError &E) {
      EXPECT_EQ(E.Diag.Code, DiagCode::NativeUnsupported);
      return E.Diag.Message;
    }
  };

  const std::string Exact = messageOf(native::NativeMode::Exact);
  EXPECT_NE(Exact.find("unknown function 'bogus'"), std::string::npos)
      << Exact;
  EXPECT_EQ(messageOf(native::NativeMode::Fast), Exact);
}

} // namespace
