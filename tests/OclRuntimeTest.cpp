//===- OclRuntimeTest.cpp - Tests for the simulated OpenCL runtime -----------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exercises the lockstep interpreter directly with hand-written parsed
/// kernels: work-item built-ins, barrier lockstep semantics, local memory
/// sharing, vectors, user function calls, and the cost accounting.
///
//===----------------------------------------------------------------------===//

#include "cparse/CParser.h"
#include "support/Casting.h"
#include "ocl/Runtime.h"

#include <cmath>
#include <gtest/gtest.h>

using namespace lift;
using namespace lift::ocl;

namespace {

codegen::CompiledKernel kernelFrom(const std::string &Src) {
  cparse::ParseContext Ctx;
  return wrapModule(cparse::parseModule(Src, Ctx));
}

TEST(OclRuntimeTest, WorkItemBuiltins) {
  auto K = kernelFrom(R"(
kernel void ids(global float *out) {
  int g = get_global_id(0);
  out[g] = get_group_id(0) * 1000 + get_local_id(0) * 10
         + get_local_size(0);
}
)");
  Buffer Out = Buffer::zeros(8);
  LaunchConfig Cfg;
  Cfg.Global = {8, 1, 1};
  Cfg.Local = {4, 1, 1};
  launch(K, {&Out}, {}, Cfg);
  auto R = Out.toFloats();
  EXPECT_FLOAT_EQ(R[0], 4);      // group 0, local 0
  EXPECT_FLOAT_EQ(R[3], 34);     // group 0, local 3
  EXPECT_FLOAT_EQ(R[5], 1014);   // group 1, local 1
}

TEST(OclRuntimeTest, LocalMemoryIsSharedWithinGroup) {
  auto K = kernelFrom(R"(
kernel void share(global float *out) {
  local float tmp[4];
  int l = get_local_id(0);
  int g = get_global_id(0);
  tmp[l] = l * 1.0f;
  barrier(CLK_LOCAL_MEM_FENCE);
  out[g] = tmp[3 - l];
}
)");
  Buffer Out = Buffer::zeros(8);
  LaunchConfig Cfg;
  Cfg.Global = {8, 1, 1};
  Cfg.Local = {4, 1, 1};
  launch(K, {&Out}, {}, Cfg);
  auto R = Out.toFloats();
  EXPECT_FLOAT_EQ(R[0], 3);
  EXPECT_FLOAT_EQ(R[1], 2);
  EXPECT_FLOAT_EQ(R[7], 0);
}

TEST(OclRuntimeTest, BarrierInUniformLoopLocksteps) {
  // Tree reduction: only correct if barriers synchronize the group.
  auto K = kernelFrom(R"(
kernel void tree(global float *in, global float *out) {
  local float tmp[8];
  int l = get_local_id(0);
  tmp[l] = in[l];
  barrier(CLK_LOCAL_MEM_FENCE);
  for (int s = 4; s > 0; s = s / 2) {
    if (l < s) {
      tmp[l] = tmp[l] + tmp[l + s];
    }
    barrier(CLK_LOCAL_MEM_FENCE);
  }
  if (l == 0) {
    out[0] = tmp[0];
  }
}
)");
  Buffer In = Buffer::ofFloats({1, 2, 3, 4, 5, 6, 7, 8});
  Buffer Out = Buffer::zeros(1);
  LaunchConfig Cfg;
  Cfg.Global = {8, 1, 1};
  Cfg.Local = {8, 1, 1};
  launch(K, {&In, &Out}, {}, Cfg);
  EXPECT_FLOAT_EQ(Out.toFloats()[0], 36);
}

TEST(OclRuntimeTest, NonUniformBarrierIsFatal) {
  auto K = kernelFrom(R"(
kernel void bad(global float *out) {
  int l = get_local_id(0);
  if (l < 2) {
    barrier(CLK_LOCAL_MEM_FENCE);
  }
  out[l] = 0.0f;
}
)");
  Buffer Out = Buffer::zeros(4);
  LaunchConfig Cfg;
  Cfg.Global = {4, 1, 1};
  Cfg.Local = {4, 1, 1};
  EXPECT_DEATH(launch(K, {&Out}, {}, Cfg), "non-uniform");
}

TEST(OclRuntimeTest, OutOfBoundsIsFatal) {
  auto K = kernelFrom(R"(
kernel void oob(global float *out, int N) {
  out[N] = 1.0f;
}
)");
  Buffer Out = Buffer::zeros(4);
  LaunchConfig Cfg;
  EXPECT_DEATH(launch(K, {&Out}, {{"N", 4}}, Cfg), "out of bounds");
}

TEST(OclRuntimeTest, VectorsAndMath) {
  auto K = kernelFrom(R"(
kernel void vec(global float4 *in, global float *out) {
  int g = get_global_id(0);
  float4 v = in[g];
  float4 w = v * v + (float4)(1.0f, 1.0f, 1.0f, 1.0f);
  out[g] = sqrt(w.x + w.y + w.z + w.w);
}
)");
  Buffer In = Buffer::ofVectors({1, 2, 3, 4}, 4);
  Buffer Out = Buffer::zeros(1);
  LaunchConfig Cfg;
  launch(K, {&In, &Out}, {}, Cfg);
  EXPECT_NEAR(Out.toFloats()[0], std::sqrt(1 + 4 + 9 + 16 + 4.0), 1e-5);
}

TEST(OclRuntimeTest, UserFunctionCalls) {
  auto K = kernelFrom(R"(
float axpy(float a, float x, float y) {
  return a * x + y;
}

kernel void k(global float *xs, global float *out) {
  int g = get_global_id(0);
  out[g] = axpy(2.0f, xs[g], 1.0f);
}
)");
  Buffer X = Buffer::ofFloats({1, 2, 3, 4});
  Buffer Out = Buffer::zeros(4);
  LaunchConfig Cfg;
  Cfg.Global = {4, 1, 1};
  Cfg.Local = {2, 1, 1};
  launch(K, {&X, &Out}, {}, Cfg);
  auto R = Out.toFloats();
  EXPECT_FLOAT_EQ(R[0], 3);
  EXPECT_FLOAT_EQ(R[3], 9);
}

TEST(OclRuntimeTest, CostAccounting) {
  auto K = kernelFrom(R"(
kernel void cost(global float *in, global float *out) {
  int g = get_global_id(0);
  out[g] = in[g] + 1.0f;
}
)");
  Buffer In = Buffer::ofFloats(std::vector<float>(16, 2.f));
  Buffer Out = Buffer::zeros(16);
  LaunchConfig Cfg;
  Cfg.Global = {16, 1, 1};
  Cfg.Local = {4, 1, 1};
  CostReport C = launch(K, {&In, &Out}, {}, Cfg);
  // One load + one store per work item.
  EXPECT_EQ(C.GlobalAccesses, 32u);
  EXPECT_EQ(C.Barriers, 0u);
  EXPECT_GT(C.ArithOps, 0u);
}

TEST(OclRuntimeTest, DivModCounted) {
  auto K = kernelFrom(R"(
kernel void dm(global float *out, int N) {
  int g = get_global_id(0);
  out[g / N * N + g % N] = 1.0f;
}
)");
  Buffer Out = Buffer::zeros(8);
  LaunchConfig Cfg;
  Cfg.Global = {8, 1, 1};
  Cfg.Local = {8, 1, 1};
  CostReport C = launch(K, {&Out}, {{"N", 8}}, Cfg);
  EXPECT_EQ(C.DivModOps, 16u); // one / and one % per work item
}

TEST(OclRuntimeTest, BarrierCostPerWorkItem) {
  auto K = kernelFrom(R"(
kernel void b(global float *out) {
  int g = get_global_id(0);
  barrier(CLK_LOCAL_MEM_FENCE);
  out[g] = 0.0f;
}
)");
  Buffer Out = Buffer::zeros(8);
  LaunchConfig Cfg;
  Cfg.Global = {8, 1, 1};
  Cfg.Local = {4, 1, 1};
  CostReport C = launch(K, {&Out}, {}, Cfg);
  EXPECT_EQ(C.Barriers, 8u);
}

TEST(OclRuntimeTest, MissingSizeArgumentIsFatal) {
  auto K = kernelFrom("kernel void k(global float *o, int N) { o[0] = N; }");
  Buffer Out = Buffer::zeros(1);
  LaunchConfig Cfg;
  EXPECT_DEATH(launch(K, {&Out}, {}, Cfg), "missing size argument");
}

TEST(OclRuntimeTest, TwoDimensionalNDRange) {
  auto K = kernelFrom(R"(
kernel void k2(global float *out) {
  int x = get_global_id(0);
  int y = get_global_id(1);
  out[y * get_global_size(0) + x] = y * 100 + x;
}
)");
  Buffer Out = Buffer::zeros(12);
  LaunchConfig Cfg;
  Cfg.Global = {4, 3, 1};
  Cfg.Local = {2, 1, 1};
  launch(K, {&Out}, {}, Cfg);
  auto R = Out.toFloats();
  EXPECT_FLOAT_EQ(R[0], 0);
  EXPECT_FLOAT_EQ(R[5], 101);
  EXPECT_FLOAT_EQ(R[11], 203);
}

} // namespace
