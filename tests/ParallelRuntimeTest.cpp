//===- ParallelRuntimeTest.cpp - Determinism of the parallel runtime -----===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
//
// The simulated runtime executes work-groups on a worker pool
// (LaunchConfig::Threads). The design guarantee (docs/PARALLEL_RUNTIME.md)
// is that the thread count is unobservable: output buffers are
// bit-identical, cost reports identical, and race/memory findings
// identical at any thread count — including under --perturb-schedule,
// whose RNG is seeded per work-group exactly so schedules don't depend on
// which worker runs which group. This suite pins that guarantee across
// the full benchmark suite.
//
//===----------------------------------------------------------------------===//

#include "ocl/FaultInject.h"
#include "ocl/ThreadPool.h"
#include "suite/Benchmark.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <dirent.h>
#include <fstream>

using namespace lift;

namespace {

void expectSameCost(const ocl::CostReport &A, const ocl::CostReport &B,
                    const std::string &What) {
  EXPECT_EQ(A.GlobalAccesses, B.GlobalAccesses) << What;
  EXPECT_EQ(A.LocalAccesses, B.LocalAccesses) << What;
  EXPECT_EQ(A.PrivateAccesses, B.PrivateAccesses) << What;
  EXPECT_EQ(A.ArithOps, B.ArithOps) << What;
  EXPECT_EQ(A.DivModOps, B.DivModOps) << What;
  EXPECT_EQ(A.MathCalls, B.MathCalls) << What;
  EXPECT_EQ(A.Calls, B.Calls) << What;
  EXPECT_EQ(A.Barriers, B.Barriers) << What;
  EXPECT_EQ(A.LoopIters, B.LoopIters) << What;
}

/// Bit-identical outputs: == on the flattened float vectors, not a
/// tolerance comparison.
void expectSameRun(const bench::Outcome &Serial, const bench::Outcome &Pool,
                   const std::string &What) {
  EXPECT_TRUE(Pool.Valid) << What;
  EXPECT_EQ(Serial.Output, Pool.Output) << What << ": outputs differ";
  expectSameCost(Serial.Cost, Pool.Cost, What + ": cost reports differ");
  EXPECT_EQ(Serial.Races.summary(), Pool.Races.summary()) << What;
  EXPECT_EQ(Serial.Races.IntervalsChecked, Pool.Races.IntervalsChecked)
      << What;
  EXPECT_EQ(Serial.Races.AccessesRecorded, Pool.Races.AccessesRecorded)
      << What;
  EXPECT_EQ(Serial.Guards.summary(), Pool.Guards.summary()) << What;
  EXPECT_EQ(Serial.Guards.AccessesChecked, Pool.Guards.AccessesChecked)
      << What;
}

class ParallelRuntimeTest : public ::testing::TestWithParam<int> {};

TEST_P(ParallelRuntimeTest, ThreadCountIsUnobservable) {
  std::vector<bench::BenchmarkCase> All = bench::allBenchmarks(false);
  ASSERT_LT(static_cast<size_t>(GetParam()), All.size());
  bench::BenchmarkCase &Case = All[static_cast<size_t>(GetParam())];

  // Plain runs: serial baseline vs the pool at 2, 4 and 8 workers.
  bench::RunOptions Serial;
  Serial.Threads = 1;
  bench::Outcome Base = bench::runLift(Case, bench::OptConfig::Full, Serial);
  ASSERT_TRUE(Base.Valid) << Case.Name;
  ASSERT_FALSE(Base.Output.empty()) << Case.Name;

  for (int Threads : {2, 4, 8}) {
    bench::RunOptions Pool;
    Pool.Threads = Threads;
    bench::Outcome Out = bench::runLift(Case, bench::OptConfig::Full, Pool);
    expectSameRun(Base, Out,
                  Case.Name + " at " + std::to_string(Threads) + " threads");
  }

  // Checked runs: the race detector, guarded memory and the perturbed
  // schedule must report the same findings (none, for the suite) and the
  // same statistics regardless of the thread count.
  bench::RunOptions Checked;
  Checked.Threads = 1;
  Checked.CheckRaces = true;
  Checked.CheckMemory = true;
  Checked.PerturbSchedule = true;
  Checked.ScheduleSeed = 7;
  bench::Outcome CheckedBase =
      bench::runLift(Case, bench::OptConfig::Full, Checked);
  ASSERT_TRUE(CheckedBase.Valid) << Case.Name;
  EXPECT_GT(CheckedBase.Races.IntervalsChecked, 0u) << Case.Name;

  Checked.Threads = 4;
  bench::Outcome CheckedPool =
      bench::runLift(Case, bench::OptConfig::Full, Checked);
  expectSameRun(CheckedBase, CheckedPool,
                Case.Name + " checked+perturbed at 4 threads");
}

//===----------------------------------------------------------------------===//
// Pool churn soak
//===----------------------------------------------------------------------===//

// The liftd daemon keeps one process alive across thousands of launches,
// so pool bring-up must be repeatable indefinitely — including bring-ups
// that fail under an injected fault and are retried. This soak cycles
// tryRun hundreds of times with a one-shot PoolStart fault armed each
// round and pins two invariants: the one-shot fault stays invisible
// (the retry succeeds and runs every worker), and neither threads nor
// file descriptors accumulate across the churn.

size_t countOpenFds() {
  size_t N = 0;
  if (DIR *D = opendir("/proc/self/fd")) {
    while (readdir(D))
      ++N;
    closedir(D);
  }
  return N;
}

size_t countThreads() {
  std::ifstream In("/proc/self/status");
  std::string Line;
  while (std::getline(In, Line))
    if (Line.rfind("Threads:", 0) == 0)
      return static_cast<size_t>(std::strtoul(Line.c_str() + 8, nullptr, 10));
  return 0;
}

TEST(ThreadPoolChurnSoak, BringUpFaultsLeakNothing) {
  ocl::fault::disarm();
  ocl::ThreadPool &Pool = ocl::ThreadPool::global();

  constexpr int Cycles = 300;
  constexpr unsigned Workers = 4;

  // Warm the pool and the fd table first so lazily created resources
  // (worker threads, /proc handles) don't read as leaks.
  for (int I = 0; I < 10; ++I) {
    std::atomic<unsigned> Ran{0};
    ASSERT_TRUE(Pool.tryRun(Workers, [&](unsigned) { ++Ran; }));
    ASSERT_EQ(Ran.load(), Workers);
  }
  size_t BaseThreads = countThreads();
  size_t BaseFds = countOpenFds();

  for (int I = 0; I < Cycles; ++I) {
    // One-shot bring-up fault: the pool's internal bounded retry absorbs
    // it, so the dispatch succeeds and runs every worker exactly once.
    ocl::fault::arm(ocl::fault::Site::PoolStart, 1);
    std::atomic<unsigned> Ran{0};
    ASSERT_TRUE(Pool.tryRun(Workers, [&](unsigned) { ++Ran; }))
        << "cycle " << I << ": one-shot fault must stay invisible";
    EXPECT_EQ(Ran.load(), Workers) << "cycle " << I;
  }

  // Persistent bring-up outage: tryRun gives up after the bounded retry,
  // without having run any work — and without leaking per-attempt state.
  for (int I = 0; I < 50; ++I) {
    ocl::fault::armAlways(ocl::fault::Site::PoolStart);
    std::atomic<unsigned> Ran{0};
    EXPECT_FALSE(Pool.tryRun(Workers, [&](unsigned) { ++Ran; }))
        << "cycle " << I;
    EXPECT_EQ(Ran.load(), 0u) << "a failed bring-up must not run work";
    ocl::fault::disarm();
    ASSERT_TRUE(Pool.tryRun(Workers, [&](unsigned) { ++Ran; }));
    EXPECT_EQ(Ran.load(), Workers) << "recovery cycle " << I;
  }
  ocl::fault::disarm();

  EXPECT_EQ(countThreads(), BaseThreads)
      << "pool churn must not accumulate threads";
  EXPECT_EQ(countOpenFds(), BaseFds)
      << "pool churn must not accumulate file descriptors";

  // The PR 7 contract on the full launch path: a one-shot PoolStart
  // fault is invisible behind the runtime's serial fallback — the run
  // still succeeds and its results are bit-identical.
  std::vector<bench::BenchmarkCase> All = bench::allBenchmarks(false);
  ASSERT_FALSE(All.empty());
  bench::RunOptions Serial;
  Serial.Threads = 1;
  bench::Outcome Base = bench::runLift(All[0], bench::OptConfig::Full, Serial);
  ASSERT_TRUE(Base.Valid);
  for (int I = 0; I < 5; ++I) {
    ocl::fault::arm(ocl::fault::Site::PoolStart, 1);
    bench::RunOptions Pooled;
    Pooled.Threads = 4;
    bench::Outcome Out = bench::runLift(All[0], bench::OptConfig::Full, Pooled);
    expectSameRun(Base, Out, "one-shot PoolStart cycle " + std::to_string(I));
  }
  ocl::fault::disarm();
}

std::string parallelBenchName(const ::testing::TestParamInfo<int> &I) {
  static const char *Names[] = {"NBodyNvidia", "NBodyAmd", "MD",
                                "KMeans",      "NN",       "MriQ",
                                "Convolution", "Atax",     "Gemv",
                                "Gesummv",     "MMNvidia", "MMAmd"};
  return Names[I.param];
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, ParallelRuntimeTest,
                         ::testing::Range(0, 12), parallelBenchName);

} // namespace
