//===- ParallelRuntimeTest.cpp - Determinism of the parallel runtime -----===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
//
// The simulated runtime executes work-groups on a worker pool
// (LaunchConfig::Threads). The design guarantee (docs/PARALLEL_RUNTIME.md)
// is that the thread count is unobservable: output buffers are
// bit-identical, cost reports identical, and race/memory findings
// identical at any thread count — including under --perturb-schedule,
// whose RNG is seeded per work-group exactly so schedules don't depend on
// which worker runs which group. This suite pins that guarantee across
// the full benchmark suite.
//
//===----------------------------------------------------------------------===//

#include "suite/Benchmark.h"

#include <gtest/gtest.h>

using namespace lift;

namespace {

void expectSameCost(const ocl::CostReport &A, const ocl::CostReport &B,
                    const std::string &What) {
  EXPECT_EQ(A.GlobalAccesses, B.GlobalAccesses) << What;
  EXPECT_EQ(A.LocalAccesses, B.LocalAccesses) << What;
  EXPECT_EQ(A.PrivateAccesses, B.PrivateAccesses) << What;
  EXPECT_EQ(A.ArithOps, B.ArithOps) << What;
  EXPECT_EQ(A.DivModOps, B.DivModOps) << What;
  EXPECT_EQ(A.MathCalls, B.MathCalls) << What;
  EXPECT_EQ(A.Calls, B.Calls) << What;
  EXPECT_EQ(A.Barriers, B.Barriers) << What;
  EXPECT_EQ(A.LoopIters, B.LoopIters) << What;
}

/// Bit-identical outputs: == on the flattened float vectors, not a
/// tolerance comparison.
void expectSameRun(const bench::Outcome &Serial, const bench::Outcome &Pool,
                   const std::string &What) {
  EXPECT_TRUE(Pool.Valid) << What;
  EXPECT_EQ(Serial.Output, Pool.Output) << What << ": outputs differ";
  expectSameCost(Serial.Cost, Pool.Cost, What + ": cost reports differ");
  EXPECT_EQ(Serial.Races.summary(), Pool.Races.summary()) << What;
  EXPECT_EQ(Serial.Races.IntervalsChecked, Pool.Races.IntervalsChecked)
      << What;
  EXPECT_EQ(Serial.Races.AccessesRecorded, Pool.Races.AccessesRecorded)
      << What;
  EXPECT_EQ(Serial.Guards.summary(), Pool.Guards.summary()) << What;
  EXPECT_EQ(Serial.Guards.AccessesChecked, Pool.Guards.AccessesChecked)
      << What;
}

class ParallelRuntimeTest : public ::testing::TestWithParam<int> {};

TEST_P(ParallelRuntimeTest, ThreadCountIsUnobservable) {
  std::vector<bench::BenchmarkCase> All = bench::allBenchmarks(false);
  ASSERT_LT(static_cast<size_t>(GetParam()), All.size());
  bench::BenchmarkCase &Case = All[static_cast<size_t>(GetParam())];

  // Plain runs: serial baseline vs the pool at 2, 4 and 8 workers.
  bench::RunOptions Serial;
  Serial.Threads = 1;
  bench::Outcome Base = bench::runLift(Case, bench::OptConfig::Full, Serial);
  ASSERT_TRUE(Base.Valid) << Case.Name;
  ASSERT_FALSE(Base.Output.empty()) << Case.Name;

  for (int Threads : {2, 4, 8}) {
    bench::RunOptions Pool;
    Pool.Threads = Threads;
    bench::Outcome Out = bench::runLift(Case, bench::OptConfig::Full, Pool);
    expectSameRun(Base, Out,
                  Case.Name + " at " + std::to_string(Threads) + " threads");
  }

  // Checked runs: the race detector, guarded memory and the perturbed
  // schedule must report the same findings (none, for the suite) and the
  // same statistics regardless of the thread count.
  bench::RunOptions Checked;
  Checked.Threads = 1;
  Checked.CheckRaces = true;
  Checked.CheckMemory = true;
  Checked.PerturbSchedule = true;
  Checked.ScheduleSeed = 7;
  bench::Outcome CheckedBase =
      bench::runLift(Case, bench::OptConfig::Full, Checked);
  ASSERT_TRUE(CheckedBase.Valid) << Case.Name;
  EXPECT_GT(CheckedBase.Races.IntervalsChecked, 0u) << Case.Name;

  Checked.Threads = 4;
  bench::Outcome CheckedPool =
      bench::runLift(Case, bench::OptConfig::Full, Checked);
  expectSameRun(CheckedBase, CheckedPool,
                Case.Name + " checked+perturbed at 4 threads");
}

std::string parallelBenchName(const ::testing::TestParamInfo<int> &I) {
  static const char *Names[] = {"NBodyNvidia", "NBodyAmd", "MD",
                                "KMeans",      "NN",       "MriQ",
                                "Convolution", "Atax",     "Gemv",
                                "Gesummv",     "MMNvidia", "MMAmd"};
  return Names[I.param];
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, ParallelRuntimeTest,
                         ::testing::Range(0, 12), parallelBenchName);

} // namespace
