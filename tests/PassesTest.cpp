//===- PassesTest.cpp - Address space inference and barrier elimination -------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "ir/DSL.h"
#include "ir/Prelude.h"
#include "ir/TypeInference.h"
#include "passes/AddressSpaceInference.h"
#include "passes/BarrierElimination.h"
#include "support/Casting.h"

#include <gtest/gtest.h>

using namespace lift;
using namespace lift::ir;
using namespace lift::ir::dsl;

namespace {

class AddressSpaceTest : public ::testing::Test {
protected:
  std::shared_ptr<const arith::VarNode> N = arith::sizeVar("N");

  void analyze(const LambdaPtr &P) {
    inferProgramTypes(P);
    passes::inferAddressSpaces(P);
  }
};

TEST_F(AddressSpaceTest, ParametersScalarPrivateArrayGlobal) {
  ParamPtr X = param("x", arrayOf(float32(), N));
  ParamPtr A = param("alpha", float32());
  LambdaPtr P = lambda({X, A}, pipe(ExprPtr(X), mapGlb(prelude::squareFun())));
  analyze(P);
  EXPECT_EQ(X->AS, AddressSpace::Global);
  EXPECT_EQ(A->AS, AddressSpace::Private);
}

TEST_F(AddressSpaceTest, LiteralsArePrivate) {
  ParamPtr X = param("x", arrayOf(float32(), N));
  ExprPtr Init = litFloat(0.0f);
  LambdaPtr P =
      lambda({X}, call(reduceSeq(prelude::addFun()), {Init, X}));
  analyze(P);
  EXPECT_EQ(Init->AS, AddressSpace::Private);
}

TEST_F(AddressSpaceTest, ReduceWritesInitializerSpace) {
  // Algorithm 1, line 23: the reduction has the initializer's space.
  ParamPtr X = param("x", arrayOf(float32(), N));
  ExprPtr Reduce = call(reduceSeq(prelude::addFun()), {litFloat(0.0f), X});
  LambdaPtr P = lambda({X}, Reduce);
  analyze(P);
  EXPECT_EQ(Reduce->AS, AddressSpace::Private);
}

TEST_F(AddressSpaceTest, ToLocalRedirectsNestedWrites) {
  ParamPtr X = param("x", arrayOf(float32(), N));
  ExprPtr Copy = pipe(ExprPtr(X), split(16),
                      mapWrg(fun([&](ExprPtr Chunk) {
                        return pipe(Chunk,
                                    toLocal(mapLcl(prelude::idFloatFun())));
                      })),
                      join());
  LambdaPtr P = lambda({X}, Copy);
  analyze(P);
  // The mapWrg body's result lives in local memory.
  const auto *WrgCall = cast<FunCall>(
      cast<FunCall>(Copy.get())->getArgs()[0].get());
  EXPECT_EQ(WrgCall->AS, AddressSpace::Local);
}

TEST_F(AddressSpaceTest, ToLocalReachesWritersInsideWrappedBody) {
  // Algorithm 1 line 10: within the wrapped function's body, writeTo
  // propagates through argument chains — the mapLcl below the join of the
  // tile-copy composition still writes local memory.
  ParamPtr X = param("x", arrayOf(float32(), arith::cst(64)));
  ExprPtr InnerMapCall;
  LambdaPtr Copy = fun([&](ExprPtr Row) {
    InnerMapCall = call(mapLcl(mapSeq(prelude::idFloatFun())),
                        {call(split(4), {Row})});
    return pipe(InnerMapCall, join());
  });
  LambdaPtr P = lambda(
      {X}, pipe(ExprPtr(X), split(64),
                mapWrg(fun([&](ExprPtr Chunk) {
                  return pipe(Chunk, split(8), toLocal(mapLcl(Copy)), join(),
                              toGlobal(mapLcl(prelude::squareFun())));
                })),
                join()));
  analyze(P);
  EXPECT_EQ(InnerMapCall->AS, AddressSpace::Local);
}

TEST_F(AddressSpaceTest, ToGlobalOverridesInnerDefault) {
  ParamPtr X = param("x", arrayOf(float32(), N));
  ExprPtr Out = pipe(ExprPtr(X), split(16),
                     mapWrg(fun([&](ExprPtr Chunk) {
                       return pipe(Chunk,
                                   toLocal(mapLcl(prelude::idFloatFun())),
                                   toGlobal(mapLcl(prelude::squareFun())));
                     })),
                     join());
  LambdaPtr P = lambda({X}, Out);
  analyze(P);
  EXPECT_EQ(cast<FunCall>(Out.get())->getArgs()[0]->AS,
            AddressSpace::Global);
}

//===----------------------------------------------------------------------===//
// Barrier elimination
//===----------------------------------------------------------------------===//

class BarrierTest : public ::testing::Test {
protected:
  std::shared_ptr<const arith::VarNode> N = arith::sizeVar("N");

  unsigned analyze(const LambdaPtr &P) {
    inferProgramTypes(P);
    passes::inferAddressSpaces(P);
    return passes::eliminateBarriers(P);
  }

  /// Collects the EmitBarrier flags of all mapLcl in the program, in
  /// data-flow order of their chain.
  static void collectFlags(const ExprPtr &E, std::vector<bool> &Out) {
    const auto *C = dyn_cast<FunCall>(E.get());
    if (!C)
      return;
    for (const ExprPtr &A : C->getArgs())
      collectFlags(A, Out);
    collectFun(C->getFun(), Out);
  }

  static void collectFun(const FunDeclPtr &F, std::vector<bool> &Out) {
    if (const auto *L = dyn_cast<MapLcl>(F.get())) {
      collectFun(L->getF(), Out);
      Out.push_back(L->EmitBarrier);
      return;
    }
    if (const auto *M = dyn_cast<AbstractMap>(F.get())) {
      collectFun(M->getF(), Out);
      return;
    }
    if (const auto *La = dyn_cast<Lambda>(F.get())) {
      collectFlags(La->getBody(), Out);
      return;
    }
    if (const auto *W = dyn_cast<AddressSpaceWrapper>(F.get())) {
      collectFun(W->getF(), Out);
      return;
    }
    if (const auto *R = dyn_cast<ReduceSeq>(F.get())) {
      collectFun(R->getF(), Out);
      return;
    }
    if (const auto *I = dyn_cast<Iterate>(F.get())) {
      collectFun(I->getF(), Out);
      return;
    }
  }

  std::vector<bool> flags(const LambdaPtr &P) {
    std::vector<bool> Out;
    collectFlags(P->getBody(), Out);
    return Out;
  }
};

TEST_F(BarrierTest, ConsecutiveMapLclWithoutSharingDropsFirstBarrier) {
  ParamPtr X = param("x", arrayOf(float32(), N));
  LambdaPtr P = lambda(
      {X}, pipe(ExprPtr(X), split(16), mapWrg(fun([&](ExprPtr Chunk) {
              return pipe(Chunk, toLocal(mapLcl(prelude::idFloatFun())),
                          // No layout pattern in between: same elements.
                          toGlobal(mapLcl(prelude::squareFun())));
            })),
            join()));
  unsigned Eliminated = analyze(P);
  EXPECT_EQ(Eliminated, 1u);
  std::vector<bool> F = flags(P);
  ASSERT_EQ(F.size(), 2u);
  EXPECT_FALSE(F[0]); // copy's barrier eliminated
  EXPECT_TRUE(F[1]);  // final barrier kept
}

TEST_F(BarrierTest, LayoutPatternBetweenKeepsBarrier) {
  ParamPtr X = param("x", arrayOf(float32(), N));
  LambdaPtr P = lambda(
      {X}, pipe(ExprPtr(X), split(16), mapWrg(fun([&](ExprPtr Chunk) {
              return pipe(Chunk, toLocal(mapLcl(prelude::idFloatFun())),
                          // gather reshuffles: threads read others' data.
                          gather(reverseIndex()),
                          toGlobal(mapLcl(prelude::squareFun())));
            })),
            join()));
  unsigned Eliminated = analyze(P);
  EXPECT_EQ(Eliminated, 0u);
  std::vector<bool> F = flags(P);
  ASSERT_EQ(F.size(), 2u);
  EXPECT_TRUE(F[0]);
  EXPECT_TRUE(F[1]);
}

TEST_F(BarrierTest, ZipBranchesKeepOnlyOneBarrier) {
  ParamPtr X = param("x", arrayOf(float32(), N));
  ParamPtr Y = param("y", arrayOf(float32(), N));
  FunDeclPtr AddPair = userFun("addPair", {"p"},
                               {tupleOf({float32(), float32()})}, float32(),
                               "return p._0 + p._1;");
  LambdaPtr P = lambda(
      {X, Y},
      pipe(call(zip(), {X, Y}), split(16), mapWrg(fun([&](ExprPtr Chunk) {
             ExprPtr A = pipe(Chunk, mapSeq(get(0)),
                              toLocal(mapLcl(prelude::idFloatFun())));
             ExprPtr B = pipe(Chunk, mapSeq(get(1)),
                              toLocal(mapLcl(prelude::idFloatFun())));
             return pipe(call(zip(), {A, B}),
                         toGlobal(mapLcl(AddPair)));
           })),
           join()));
  unsigned Eliminated = analyze(P);
  EXPECT_EQ(Eliminated, 1u);
}

TEST_F(BarrierTest, IterateBoundaryIsConservative) {
  ParamPtr X = param("x", arrayOf(float32(), arith::cst(64)));
  LambdaPtr P = lambda(
      {X},
      pipe(ExprPtr(X), split(64), mapWrg(fun([&](ExprPtr Chunk) {
             return pipe(
                 Chunk, toLocal(mapLcl(prelude::idFloatFun())),
                 iterate(6, fun([&](ExprPtr Arr) {
                           return pipe(
                               Arr, split(2), mapLcl(fun([&](ExprPtr Two) {
                                 return pipe(
                                     call(reduceSeq(prelude::addFun()),
                                          {litFloat(0.0f), Two}),
                                     toLocal(mapSeq(prelude::idFloatFun())));
                               })),
                               join());
                         })),
                 split(1), toGlobal(mapLcl(mapSeq(prelude::idFloatFun()))),
                 join());
           })),
           join()));
  analyze(P);
  std::vector<bool> F = flags(P);
  // All barriers around the iterate's data sharing must be kept.
  for (bool Kept : F)
    EXPECT_TRUE(Kept);
}

} // namespace
