//===- RaceDetectorTest.cpp - Tests for dynamic race detection ----------------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exercises the happens-before data-race and barrier-divergence detector
/// of the simulated runtime: clean kernels report clean, missing barriers
/// are flagged (even when the fixed lockstep schedule masks them), the
/// perturbed schedule exposes them in the output too, divergent barriers
/// are reported, and the full benchmark suite is race-free with barrier
/// elimination both on and off.
///
//===----------------------------------------------------------------------===//

#include "cparse/CParser.h"
#include "ocl/Runtime.h"
#include "suite/Benchmark.h"

#include <gtest/gtest.h>

using namespace lift;
using namespace lift::ocl;

namespace {

codegen::CompiledKernel kernelFrom(const std::string &Src) {
  cparse::ParseContext Ctx;
  return wrapModule(cparse::parseModule(Src, Ctx));
}

LaunchConfig checked(std::array<int64_t, 3> Global,
                     std::array<int64_t, 3> Local, bool Perturb = false,
                     uint64_t Seed = 1) {
  LaunchConfig Cfg;
  Cfg.Global = Global;
  Cfg.Local = Local;
  Cfg.CheckRaces = true;
  Cfg.PerturbSchedule = Perturb;
  Cfg.ScheduleSeed = Seed;
  return Cfg;
}

const char *TileKernel = R"(
kernel void tile(global float *in, global float *out) {
  local float tmp[4];
  int l = get_local_id(0);
  int g = get_global_id(0);
  tmp[l] = in[g];
  barrier(CLK_LOCAL_MEM_FENCE);
  out[g] = tmp[3 - l];
}
)";

/// The same kernel with the barrier removed: the cross-item read of tmp
/// races with the writes.
const char *TileKernelNoBarrier = R"(
kernel void tile(global float *in, global float *out) {
  local float tmp[4];
  int l = get_local_id(0);
  int g = get_global_id(0);
  tmp[l] = in[g];
  out[g] = tmp[3 - l];
}
)";

TEST(RaceDetectorTest, CleanKernelReportsClean) {
  auto K = kernelFrom(TileKernel);
  Buffer In = Buffer::ofFloats({1, 2, 3, 4, 5, 6, 7, 8});
  Buffer Out = Buffer::zeros(8);
  RaceReport Report;
  launch(K, {&In, &Out}, {}, checked({8, 1, 1}, {4, 1, 1}), Report);
  EXPECT_TRUE(Report.clean()) << Report.summary();
  EXPECT_GT(Report.IntervalsChecked, 0u);
  EXPECT_GT(Report.AccessesRecorded, 0u);
  EXPECT_FLOAT_EQ(Out.toFloats()[0], 4);
}

TEST(RaceDetectorTest, MissingBarrierIsARace) {
  auto K = kernelFrom(TileKernelNoBarrier);
  Buffer In = Buffer::ofFloats({1, 2, 3, 4, 5, 6, 7, 8});
  Buffer Out = Buffer::zeros(8);
  RaceReport Report;
  launch(K, {&In, &Out}, {}, checked({8, 1, 1}, {4, 1, 1}), Report);
  ASSERT_GT(Report.races(), 0u);
  EXPECT_EQ(Report.divergences(), 0u);
  // The conflicting location is the local tile, named in the finding.
  bool MentionsTile = false;
  for (const RaceFinding &F : Report.Findings) {
    EXPECT_EQ(F.K, RaceFinding::ReadWrite);
    MentionsTile |= F.Location.find("tmp[") != std::string::npos;
  }
  EXPECT_TRUE(MentionsTile);
}

TEST(RaceDetectorTest, GlobalWriteWriteRace) {
  auto K = kernelFrom(R"(
kernel void clash(global float *out) {
  out[0] = get_local_id(0) * 1.0f;
}
)");
  Buffer Out = Buffer::zeros(1);
  RaceReport Report;
  launch(K, {&Out}, {}, checked({4, 1, 1}, {4, 1, 1}), Report);
  ASSERT_GT(Report.races(), 0u);
  EXPECT_EQ(Report.Findings[0].K, RaceFinding::WriteWrite);
  EXPECT_NE(Report.Findings[0].ItemA, Report.Findings[0].ItemB);
}

TEST(RaceDetectorTest, CrossGroupWriteWriteIsFlagged) {
  // Both work-groups write out[0]; no intra-group conflict exists (only
  // one item per group touches it), so only the cross-group pass can see
  // the hazard.
  auto K = kernelFrom(R"(
kernel void xg(global float *out) {
  int l = get_local_id(0);
  int w = get_group_id(0);
  if (l == 0) {
    out[0] = w * 1.0f;
  }
}
)");
  Buffer Out = Buffer::zeros(4);
  RaceReport Report;
  launch(K, {&Out}, {}, checked({8, 1, 1}, {4, 1, 1}), Report);
  ASSERT_GT(Report.races(), 0u) << Report.summary();
  ASSERT_EQ(Report.Findings.size(), 1u) << Report.summary();
  EXPECT_EQ(Report.Findings[0].K, RaceFinding::CrossGroup);
  EXPECT_EQ(Report.Findings[0].ItemA, 0); // group indices, not items
  EXPECT_EQ(Report.Findings[0].ItemB, 1);
  EXPECT_NE(Report.Findings[0].Detail.find("work-groups 0 and 1"),
            std::string::npos)
      << Report.Findings[0].Detail;
  EXPECT_NE(Report.Findings[0].Detail.find("both wrote"), std::string::npos)
      << Report.Findings[0].Detail;
}

TEST(RaceDetectorTest, CrossGroupWriteReadIsFlagged) {
  // Group 0 writes out[0]; group 1 reads it — ordering between groups is
  // not defined, so this is a hazard even though each group is race-free.
  auto K = kernelFrom(R"(
kernel void xgrw(global float *out, global float *res) {
  int l = get_local_id(0);
  int w = get_group_id(0);
  if (w == 0) {
    if (l == 0) {
      out[0] = 5.0f;
    }
  }
  if (w == 1) {
    if (l == 0) {
      res[0] = out[0];
    }
  }
}
)");
  Buffer Out = Buffer::zeros(1);
  Buffer Res = Buffer::zeros(1);
  RaceReport Report;
  launch(K, {&Out, &Res}, {}, checked({8, 1, 1}, {4, 1, 1}), Report);
  ASSERT_EQ(Report.Findings.size(), 1u) << Report.summary();
  EXPECT_EQ(Report.Findings[0].K, RaceFinding::CrossGroup);
  EXPECT_NE(Report.Findings[0].Detail.find("one wrote, one read"),
            std::string::npos)
      << Report.Findings[0].Detail;
}

TEST(RaceDetectorTest, DisjointGroupFootprintsAreCrossGroupClean) {
  // Each group owns its own slice of the output: the cross-group pass
  // must stay silent.
  auto K = kernelFrom(R"(
kernel void own(global float *in, global float *out) {
  int g = get_global_id(0);
  out[g] = in[g] + 1.0f;
}
)");
  Buffer In = Buffer::ofFloats({1, 2, 3, 4, 5, 6, 7, 8});
  Buffer Out = Buffer::zeros(8);
  RaceReport Report;
  launch(K, {&In, &Out}, {}, checked({8, 1, 1}, {4, 1, 1}), Report);
  EXPECT_TRUE(Report.clean()) << Report.summary();
}

TEST(RaceDetectorTest, CrossGroupFindingMapsToE0514) {
  auto K = kernelFrom(R"(
kernel void xg(global float *out) {
  int l = get_local_id(0);
  int w = get_group_id(0);
  if (l == 0) {
    out[0] = w * 1.0f;
  }
}
)");
  Buffer Out = Buffer::zeros(4);
  DiagnosticEngine Engine;
  Expected<LaunchResult> R =
      launchChecked(K, {&Out}, {}, checked({8, 1, 1}, {4, 1, 1}), Engine);
  ASSERT_TRUE(bool(R)) << Engine.render();
  EXPECT_FALSE(R->Races.clean());
  bool Found = false;
  for (const Diagnostic &D : Engine.diagnostics())
    Found |= D.Code == DiagCode::RuntimeCrossGroupRace;
  EXPECT_TRUE(Found) << Engine.render();
}

TEST(RaceDetectorTest, PrivatePerItemAccessesDoNotRace) {
  // Every item touches only its own global element and private variables.
  auto K = kernelFrom(R"(
kernel void own(global float *out) {
  int g = get_global_id(0);
  float acc = 0.0f;
  for (int i = 0; i < 4; i++) {
    acc = acc + out[g];
    out[g] = acc;
  }
}
)");
  Buffer Out = Buffer::zeros(8);
  RaceReport Report;
  launch(K, {&Out}, {}, checked({8, 1, 1}, {4, 1, 1}), Report);
  EXPECT_TRUE(Report.clean()) << Report.summary();
}

TEST(RaceDetectorTest, DivergentBranchBarrierReported) {
  // Unchecked runs abort on this (OclRuntimeTest.NonUniformBarrierIsFatal);
  // checked runs record barrier divergence and continue.
  auto K = kernelFrom(R"(
kernel void bad(global float *out) {
  int l = get_local_id(0);
  if (l < 2) {
    barrier(CLK_LOCAL_MEM_FENCE);
  }
  out[l] = 0.0f;
}
)");
  Buffer Out = Buffer::zeros(4);
  RaceReport Report;
  launch(K, {&Out}, {}, checked({4, 1, 1}, {4, 1, 1}), Report);
  ASSERT_GT(Report.divergences(), 0u);
  bool Found = false;
  for (const RaceFinding &F : Report.Findings)
    Found |= F.K == RaceFinding::BarrierDivergence &&
             F.Detail.find("non-uniform branch") != std::string::npos;
  EXPECT_TRUE(Found);
}

TEST(RaceDetectorTest, FunctionBarrierArrivalMismatch) {
  // A barrier hidden in a function called from a loop condition executes
  // per work-item, outside lockstep; only items 0 and 1 reach it. The
  // arrival tallies disagree at the next interval boundary.
  auto K = kernelFrom(R"(
float condbar(int l) {
  if (l < 2) {
    barrier(CLK_LOCAL_MEM_FENCE);
  }
  return 2.0f;
}
kernel void hidden(global float *out) {
  int l = get_local_id(0);
  float x = 0.0f;
  for (int i = 0; i < condbar(l); i++) {
    x = x + 1.0f;
  }
  barrier(CLK_LOCAL_MEM_FENCE);
  out[l] = x;
}
)");
  Buffer Out = Buffer::zeros(4);
  RaceReport Report;
  launch(K, {&Out}, {}, checked({4, 1, 1}, {4, 1, 1}), Report);
  EXPECT_GT(Report.divergences(), 0u) << Report.summary();
}

TEST(RaceDetectorTest, UnsupportedBarrierPositionNamesKernelAndStmt) {
  // A barrier reached through a call in an assignment cannot run in
  // lockstep; the diagnostic names the kernel and the offending statement.
  auto K = kernelFrom(R"(
float syncing() {
  barrier(CLK_LOCAL_MEM_FENCE);
  return 1.0f;
}
kernel void callbar(global float *out) {
  int l = get_local_id(0);
  out[l] = syncing();
}
)");
  Buffer Out = Buffer::zeros(4);
  LaunchConfig Cfg;
  Cfg.Global = {4, 1, 1};
  Cfg.Local = {4, 1, 1};
  EXPECT_DEATH(launch(K, {&Out}, {}, Cfg),
               "unsupported statement position in kernel 'callbar'");
}

TEST(RaceDetectorTest, PlainCheckedLaunchAbortsOnRace) {
  // Without a report out-parameter, a checked launch that finds a defect
  // aborts with the summary.
  auto K = kernelFrom(TileKernelNoBarrier);
  Buffer In = Buffer::ofFloats({1, 2, 3, 4, 5, 6, 7, 8});
  Buffer Out = Buffer::zeros(8);
  EXPECT_DEATH(launch(K, {&In, &Out}, {}, checked({8, 1, 1}, {4, 1, 1})),
               "race check failed");
}

TEST(RaceDetectorTest, PerturbedScheduleKeepsCleanKernelsCorrect) {
  auto K = kernelFrom(TileKernel);
  for (uint64_t Seed : {1ull, 7ull, 42ull}) {
    Buffer In = Buffer::ofFloats({1, 2, 3, 4, 5, 6, 7, 8});
    Buffer Out = Buffer::zeros(8);
    RaceReport Report;
    launch(K, {&In, &Out}, {},
           checked({8, 1, 1}, {4, 1, 1}, /*Perturb=*/true, Seed), Report);
    EXPECT_TRUE(Report.clean()) << Report.summary();
    auto R = Out.toFloats();
    EXPECT_FLOAT_EQ(R[0], 4);
    EXPECT_FLOAT_EQ(R[3], 1);
    EXPECT_FLOAT_EQ(R[4], 8);
  }
}

TEST(RaceDetectorTest, PerturbedScheduleIsReproducible) {
  auto K = kernelFrom(TileKernelNoBarrier);
  auto Run = [&](uint64_t Seed) {
    Buffer In = Buffer::ofFloats({1, 2, 3, 4, 5, 6, 7, 8});
    Buffer Out = Buffer::zeros(8);
    RaceReport Report;
    launch(K, {&In, &Out}, {},
           checked({8, 1, 1}, {4, 1, 1}, /*Perturb=*/true, Seed), Report);
    return std::make_pair(Report.Findings.size(), Out.toFloats());
  };
  auto A = Run(3), B = Run(3);
  EXPECT_EQ(A.first, B.first);
  EXPECT_EQ(A.second, B.second);
}

//===----------------------------------------------------------------------===//
// Benchmark suite: barrier elimination is safe; a stripped barrier is not.
//===----------------------------------------------------------------------===//

class BenchRaceTest : public ::testing::TestWithParam<int> {};

TEST_P(BenchRaceTest, BenchmarksAreRaceFree) {
  std::vector<bench::BenchmarkCase> All = bench::allBenchmarks(false);
  ASSERT_LT(static_cast<size_t>(GetParam()), All.size());
  bench::BenchmarkCase &Case = All[static_cast<size_t>(GetParam())];

  bench::RunOptions Check;
  Check.CheckRaces = true;

  // With barrier elimination (and all other optimizations) on.
  bench::Outcome Full = bench::runLift(Case, bench::OptConfig::Full, Check);
  EXPECT_TRUE(Full.Valid) << Case.Name;
  EXPECT_TRUE(Full.Races.clean()) << Case.Name << ": " << Full.Races.summary();
  EXPECT_GT(Full.Races.IntervalsChecked, 0u);

  // With every optimization (barrier elimination included) off.
  bench::Outcome None = bench::runLift(Case, bench::OptConfig::None, Check);
  EXPECT_TRUE(None.Valid) << Case.Name;
  EXPECT_TRUE(None.Races.clean()) << Case.Name << ": " << None.Races.summary();

  // The hand-written reference is race-free too.
  bench::Outcome Ref = bench::runReference(Case, Check);
  EXPECT_TRUE(Ref.Valid) << Case.Name;
  EXPECT_TRUE(Ref.Races.clean()) << Case.Name << ": " << Ref.Races.summary();

  // A perturbed (but legal) schedule neither breaks validation nor
  // introduces findings.
  Check.PerturbSchedule = true;
  Check.ScheduleSeed = 99;
  bench::Outcome Perturbed =
      bench::runLift(Case, bench::OptConfig::Full, Check);
  EXPECT_TRUE(Perturbed.Valid) << Case.Name;
  EXPECT_TRUE(Perturbed.Races.clean())
      << Case.Name << ": " << Perturbed.Races.summary();
}

std::string benchName(const ::testing::TestParamInfo<int> &I) {
  static const char *Names[] = {"NBodyNvidia", "NBodyAmd", "MD",
                                "KMeans",      "NN",       "MriQ",
                                "Convolution", "Atax",     "Gemv",
                                "Gesummv",     "MMNvidia", "MMAmd"};
  return Names[I.param];
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, BenchRaceTest, ::testing::Range(0, 12),
                         benchName);

TEST(BenchRaceTest, StrippedBarrierMatmulIsFlagged) {
  // Remove the barrier between the cooperative tile loads and the reads
  // that consume them in the tiled matmul reference kernel.
  bench::BenchmarkCase Case = bench::makeMM(false);
  ASSERT_EQ(Case.ReferenceStages.size(), 1u);
  std::string &Src = Case.ReferenceStages[0].ReferenceSource;
  const std::string BarrierStmt = "barrier(CLK_LOCAL_MEM_FENCE);";
  size_t Pos = Src.find(BarrierStmt);
  ASSERT_NE(Pos, std::string::npos);
  while (Pos != std::string::npos) {
    Src.erase(Pos, BarrierStmt.size());
    Pos = Src.find(BarrierStmt);
  }

  bench::RunOptions Check;
  Check.CheckRaces = true;

  // The fixed statement-lockstep schedule masks the bug: every item's tile
  // stores complete before any item's loads. The output validates — but
  // the detector still flags the race.
  bench::Outcome Fixed = bench::runReference(Case, Check);
  EXPECT_TRUE(Fixed.Valid) << "fixed schedule should mask the missing "
                              "barrier; max rel err "
                           << Fixed.MaxError;
  EXPECT_GT(Fixed.Races.races(), 0u) << Fixed.Races.summary();

  // Under a perturbed schedule the race also corrupts the output: early
  // items read tile elements their neighbours have not written yet.
  Check.PerturbSchedule = true;
  Check.ScheduleSeed = 5;
  bench::Outcome Perturbed = bench::runReference(Case, Check);
  EXPECT_GT(Perturbed.Races.races(), 0u) << Perturbed.Races.summary();
  EXPECT_FALSE(Perturbed.Valid)
      << "perturbed schedule unexpectedly produced a correct result";

  // The intact kernel is clean under the same perturbed schedule.
  bench::BenchmarkCase Intact = bench::makeMM(false);
  bench::Outcome Ok = bench::runReference(Intact, Check);
  EXPECT_TRUE(Ok.Valid);
  EXPECT_TRUE(Ok.Races.clean()) << Ok.Races.summary();
}

} // namespace
