//===- ResilienceTest.cpp - Mid-execution faults and degradation ----------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The graceful-degradation matrix (docs/RELIABILITY.md): mid-execution
/// fault injection swept over the benchmark suite at several thread
/// counts (every injected barrier / group-dispatch / step-chunk fault
/// must unwind as a clean Expected<> failure with a thread-count-
/// invariant E0515 diagnostic and poisoned buffers, never a hang or
/// abort); the native-to-simulator fallback (E0610) with bit-identical
/// results; quarantine of corrupt tuning-cache entries (E0608) and
/// atomic cache writes (E0609); and the deterministic bounded-retry
/// policy (support/Retry.h) that distinguishes the two: transient
/// failures recover invisibly, persistent outages degrade with a
/// warning. Runs under `ctest -L resilience`.
///
//===----------------------------------------------------------------------===//

#include "codegen/Compiler.h"
#include "ir/DSL.h"
#include "ir/Prelude.h"
#include "ocl/FaultInject.h"
#include "ocl/Runtime.h"
#include "suite/Benchmark.h"
#include "support/Diagnostics.h"
#include "support/Retry.h"
#include "tune/Cache.h"
#include "tune/Tuner.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <string>
#include <unistd.h>
#include <vector>

using namespace lift;
using namespace lift::bench;
namespace fault = lift::ocl::fault;
namespace fs = std::filesystem;

namespace {

/// Disarms the fault harness no matter how a test exits.
struct DisarmGuard {
  ~DisarmGuard() { fault::disarm(); }
};

bool hasCode(const DiagnosticEngine &Engine, DiagCode Code) {
  for (const Diagnostic &D : Engine.diagnostics())
    if (D.Code == Code)
      return true;
  return false;
}

/// The rendered text of the first E0515 diagnostic (empty when none).
std::string midExecMessage(const DiagnosticEngine &Engine) {
  for (const Diagnostic &D : Engine.diagnostics())
    if (D.Code == DiagCode::RuntimeFaultMidExec)
      return D.render();
  return std::string();
}

/// First / middle / last of a 1-based occurrence range, deduplicated.
std::set<uint64_t> sweepPoints(uint64_t Total) {
  return {1, (Total + 1) / 2, Total};
}

//===----------------------------------------------------------------------===//
// Mid-execution fault sweep over the benchmark suite
//===----------------------------------------------------------------------===//

/// One benchmark per parameter so failures name the workload and ctest
/// can spread the sweep across cores.
class MidExecSweep : public ::testing::TestWithParam<int> {};

/// Barrier crossings and group dispatches happen the same number of
/// times at every thread count, so the n-th occurrence is a
/// deterministic event: injecting it must fail cleanly with E0515, and
/// the diagnostic must be bit-identical whether one worker or eight hit
/// the fault.
TEST_P(MidExecSweep, BarrierAndDispatchFaultsAreThreadCountInvariant) {
  DisarmGuard Guard;
  BenchmarkCase Case = allBenchmarks(false)[GetParam()];

  const int ThreadCounts[] = {1, 2, 8};

  // Discover the sweep bounds at one thread count, then pin that the
  // totals are thread-count-invariant (they count work, not workers).
  std::map<fault::Site, uint64_t> Totals;
  for (int Threads : ThreadCounts) {
    RunOptions Run;
    Run.Threads = Threads;
    fault::countOnly();
    DiagnosticEngine Engine;
    Expected<Outcome> Base = runLiftChecked(Case, OptConfig::Full, Run, Engine);
    ASSERT_TRUE(bool(Base)) << Case.Name << ":\n" << Engine.render();
    for (fault::Site S : {fault::Site::Barrier, fault::Site::GroupDispatch}) {
      uint64_t N = fault::occurrences(S);
      if (Threads == 1)
        Totals[S] = N;
      else
        EXPECT_EQ(Totals[S], N)
            << Case.Name << ": " << fault::siteName(S)
            << " occurrence count changed with " << Threads << " threads";
    }
    fault::disarm();
  }
  ASSERT_GT(Totals[fault::Site::GroupDispatch], 0u)
      << Case.Name << ": no group dispatches recorded";

  for (fault::Site S : {fault::Site::Barrier, fault::Site::GroupDispatch}) {
    if (Totals[S] == 0)
      continue; // benchmark has no barriers
    for (uint64_t Nth : sweepPoints(Totals[S])) {
      std::set<std::string> Messages;
      for (int Threads : ThreadCounts) {
        RunOptions Run;
        Run.Threads = Threads;
        fault::arm(S, Nth);
        DiagnosticEngine Engine;
        Expected<Outcome> R =
            runLiftChecked(Case, OptConfig::Full, Run, Engine);
        fault::disarm();
        EXPECT_FALSE(bool(R))
            << Case.Name << ": survived injected " << fault::siteName(S)
            << " fault #" << Nth << " at " << Threads << " threads";
        EXPECT_TRUE(hasCode(Engine, DiagCode::RuntimeFaultMidExec))
            << Case.Name << " (" << fault::siteName(S) << " #" << Nth
            << ", " << Threads << " threads):\n" << Engine.render();
        Messages.insert(midExecMessage(Engine));
      }
      EXPECT_EQ(Messages.size(), 1u)
          << Case.Name << ": the E0515 diagnostic for " << fault::siteName(S)
          << " #" << Nth << " depends on the thread count";
    }
  }
}

/// The step-chunk checkpoint (the interpreter's back edge, every
/// TickInterval steps per worker) only ticks on bounded runs. Its
/// occurrence count is per-worker and so legitimately varies with the
/// thread count — the sweep re-counts per thread count and checks the
/// clean-failure invariant at first / middle / last.
TEST_P(MidExecSweep, StepChunkCheckpointsFailCleanlyAtEveryThreadCount) {
  DisarmGuard Guard;
  BenchmarkCase Case = allBenchmarks(false)[GetParam()];

  bool Swept = false;
  for (int Threads : {1, 2, 8}) {
    RunOptions Run;
    Run.Threads = Threads;
    Run.Limits.MaxSteps = 50000000; // bind the budget: enables the hook

    fault::countOnly();
    {
      DiagnosticEngine Engine;
      Expected<Outcome> Base =
          runLiftChecked(Case, OptConfig::Full, Run, Engine);
      ASSERT_TRUE(bool(Base)) << Case.Name << ":\n" << Engine.render();
    }
    uint64_t Total = fault::occurrences(fault::Site::StepChunk);
    fault::disarm();
    if (Total == 0)
      continue; // run shorter than one tick interval at this width

    Swept = true;
    for (uint64_t Nth : sweepPoints(Total)) {
      fault::arm(fault::Site::StepChunk, Nth);
      DiagnosticEngine Engine;
      Expected<Outcome> R = runLiftChecked(Case, OptConfig::Full, Run, Engine);
      uint64_t Seen = fault::occurrences(fault::Site::StepChunk);
      fault::disarm();
      if (bool(R)) {
        // Each worker keeps a private step countdown, so a parallel run
        // may batch its checkpoints differently than the counting run
        // and legitimately finish before the n-th occurrence. Serial
        // runs have no such freedom, and a run that did reach the n-th
        // occurrence must have failed at it.
        EXPECT_GT(Threads, 1)
            << Case.Name << ": a serial run survived step-chunk fault #"
            << Nth;
        EXPECT_LT(Seen, Nth)
            << Case.Name << ": survived step-chunk fault #" << Nth
            << " at " << Threads << " threads despite reaching it";
        EXPECT_TRUE(R->Valid) << Case.Name;
      } else {
        EXPECT_TRUE(hasCode(Engine, DiagCode::RuntimeFaultMidExec))
            << Case.Name << " (step chunk #" << Nth << ", " << Threads
            << " threads):\n" << Engine.render();
        // The injection outranks the step budget: never misreported as
        // E0510.
        EXPECT_FALSE(hasCode(Engine, DiagCode::RuntimeStepLimit))
            << Case.Name << ":\n" << Engine.render();
      }
    }
  }
  if (!Swept)
    GTEST_SKIP() << Case.Name
                 << " finishes inside one tick interval at every width";
}

INSTANTIATE_TEST_SUITE_P(Benchmarks, MidExecSweep, ::testing::Range(0, 12));

//===----------------------------------------------------------------------===//
// Buffer poisoning and recovery after a cancelled launch
//===----------------------------------------------------------------------===//

/// A launch cancelled mid-execution leaves partially-written buffers:
/// they must come back poisoned (E0601 on reuse) and usable again only
/// after the host explicitly accepts or rewrites them.
TEST(MidExecPoisoning, CancelledLaunchPoisonsBuffersUntilCleared) {
  DisarmGuard Guard;
  using namespace ir;
  using namespace ir::dsl;

  // A barrier-dense kernel: each work-group stages its row through local
  // memory (one barrier per copy) and squares it back out.
  ParamPtr X = param("x", arrayOf(float32(), arith::cst(16)));
  LambdaPtr P = lambda(
      {X}, pipe(ExprPtr(X), split(4), mapWrg(fun([&](ExprPtr Row) {
             return pipe(Row, toLocal(mapLcl(prelude::idFloatFun())),
                         toGlobal(mapLcl(prelude::squareFun())));
           })),
           join()));

  DiagnosticEngine CompileEngine;
  codegen::CompilerOptions Opts;
  Opts.GlobalSize = {16, 1, 1};
  Opts.LocalSize = {4, 1, 1};
  Expected<codegen::CompiledKernel> K =
      codegen::compileChecked(P, Opts, CompileEngine);
  ASSERT_TRUE(bool(K)) << CompileEngine.render();

  std::vector<float> In(16);
  for (size_t I = 0; I != In.size(); ++I)
    In[I] = static_cast<float>(I) * 0.5f;
  ocl::Buffer InBuf = ocl::Buffer::ofFloats(In);
  ocl::Buffer OutBuf = ocl::Buffer::zeros(16);
  std::vector<ocl::Buffer *> Bufs = {&InBuf, &OutBuf};
  ocl::LaunchConfig Cfg = ocl::LaunchConfig::fromOptions(Opts);
  Cfg.Threads = 2;

  // Trip the first barrier crossing: the launch fails with E0515 and a
  // note that the buffers are poisoned.
  fault::arm(fault::Site::Barrier, 1);
  DiagnosticEngine FaultEngine;
  Expected<ocl::LaunchResult> R =
      ocl::launchChecked(*K, Bufs, {}, Cfg, FaultEngine);
  fault::disarm();
  ASSERT_FALSE(bool(R)) << "survived the injected barrier fault";
  EXPECT_TRUE(hasCode(FaultEngine, DiagCode::RuntimeFaultMidExec))
      << FaultEngine.render();
  EXPECT_NE(midExecMessage(FaultEngine).find("poisoned"), std::string::npos)
      << FaultEngine.render();
  EXPECT_TRUE(InBuf.Poisoned);
  EXPECT_TRUE(OutBuf.Poisoned);

  // Reusing a poisoned buffer is refused (E0601)...
  DiagnosticEngine ReuseEngine;
  EXPECT_FALSE(bool(ocl::launchChecked(*K, Bufs, {}, Cfg, ReuseEngine)));
  EXPECT_TRUE(hasCode(ReuseEngine, DiagCode::HostBadBuffer))
      << ReuseEngine.render();

  // ...until the host explicitly accepts the contents; the retried
  // launch then rewrites everything and succeeds with correct results.
  InBuf.clearPoison();
  OutBuf.clearPoison();
  DiagnosticEngine RetryEngine;
  Expected<ocl::LaunchResult> Again =
      ocl::launchChecked(*K, Bufs, {}, Cfg, RetryEngine);
  ASSERT_TRUE(bool(Again)) << RetryEngine.render();
  EXPECT_FALSE(OutBuf.Poisoned);
  std::vector<float> Out = OutBuf.toFlatFloats();
  ASSERT_EQ(Out.size(), In.size());
  for (size_t I = 0; I != Out.size(); ++I)
    EXPECT_EQ(Out[I], In[I] * In[I]) << "element " << I;
}

//===----------------------------------------------------------------------===//
// Transient faults recover through the retry policy
//===----------------------------------------------------------------------===//

/// A one-shot pool bring-up fault is the model transient failure: the
/// bring-up retry (support/Retry.h) absorbs it invisibly — the launch
/// stays parallel, nothing degrades, no warning is emitted. (Contrast
/// FaultInjectTest.PoolFailureDegradesToSerialWithIdenticalResults,
/// where a persistent outage exhausts the retries and falls back.)
TEST(RetryRecovery, OneShotPoolFaultIsAbsorbedWithoutFallback) {
  DisarmGuard Guard;
  RunOptions Run;
  Run.Threads = 4;

  // Find a benchmark whose launch actually consults the pool.
  int Which = -1;
  for (int C = 0; C != 12 && Which < 0; ++C) {
    fault::countOnly();
    DiagnosticEngine Engine;
    Expected<Outcome> R = runLiftChecked(allBenchmarks(false)[C],
                                         OptConfig::Full, Run, Engine);
    ASSERT_TRUE(bool(R)) << Engine.render();
    if (fault::occurrences(fault::Site::PoolStart) > 0)
      Which = C;
    fault::disarm();
  }
  ASSERT_GE(Which, 0) << "no benchmark consulted the pool-dispatch site";
  BenchmarkCase Case = allBenchmarks(false)[Which];

  DiagnosticEngine CleanEngine;
  Expected<Outcome> Clean =
      runLiftChecked(Case, OptConfig::Full, Run, CleanEngine);
  ASSERT_TRUE(bool(Clean)) << CleanEngine.render();

  fault::arm(fault::Site::PoolStart, 1);
  DiagnosticEngine FaultEngine;
  Expected<Outcome> Retried =
      runLiftChecked(Case, OptConfig::Full, Run, FaultEngine);
  fault::disarm();
  ASSERT_TRUE(bool(Retried))
      << Case.Name << ": one-shot pool fault was not absorbed:\n"
      << FaultEngine.render();
  EXPECT_TRUE(Retried->Valid) << Case.Name;
  EXPECT_FALSE(hasCode(FaultEngine, DiagCode::RuntimePoolFallback))
      << Case.Name
      << ": bring-up retry should recover without degrading to serial:\n"
      << FaultEngine.render();
  EXPECT_EQ(Clean->Output, Retried->Output)
      << Case.Name << ": the recovered run changed the results";
}

//===----------------------------------------------------------------------===//
// Native backend failure degrades to the simulator, bit-identically
//===----------------------------------------------------------------------===//

class NativeFallbackMatrix : public ::testing::TestWithParam<int> {
protected:
  std::string CacheDir;

  void SetUp() override {
    // Private artifact cache: the persistent compile outage below must
    // not evict another process's healthy artifacts.
    CacheDir = ::testing::TempDir() + "lift-resilience-native-cache-" +
               std::to_string(::getpid());
    ::setenv("LIFT_NATIVE_CACHE_DIR", CacheDir.c_str(), 1);
  }
  void TearDown() override {
    fault::disarm();
    ::unsetenv("LIFT_NATIVE_CACHE_DIR");
    std::error_code EC;
    fs::remove_all(CacheDir, EC);
  }
};

/// With the native toolchain persistently down (injected compile outage
/// — the same path covers a genuinely missing toolchain), every
/// benchmark must still produce a result: runLiftNativeOrSimChecked
/// warns (E0610) and re-runs on the simulator, bit-identical to a
/// simulator-only run. Exercised on all 12 benchmarks.
TEST_P(NativeFallbackMatrix, CompileOutageFallsBackBitIdentically) {
  DisarmGuard Guard;
  BenchmarkCase Case = allBenchmarks(false)[GetParam()];
  RunOptions Run;
  Run.Threads = 2;

  DiagnosticEngine SimEngine;
  Expected<Outcome> SimOnly =
      runLiftChecked(Case, OptConfig::Full, Run, SimEngine);
  ASSERT_TRUE(bool(SimOnly)) << Case.Name << ":\n" << SimEngine.render();

  // A persistent outage: one-shot faults would be recovered by the
  // toolchain retry policy before the fallback ever engages.
  fault::armAlways(fault::Site::NativeCompile);
  DiagnosticEngine Engine;
  bool UsedFallback = false;
  Expected<Outcome> R = runLiftNativeOrSimChecked(Case, OptConfig::Full, Run,
                                                  Engine, &UsedFallback);
  fault::disarm();

  ASSERT_TRUE(bool(R)) << Case.Name << ": fallback did not engage:\n"
                       << Engine.render();
  EXPECT_TRUE(UsedFallback) << Case.Name;
  EXPECT_TRUE(R->Valid) << Case.Name;
  EXPECT_TRUE(hasCode(Engine, DiagCode::NativeFallback))
      << Case.Name << ": no E0610 warning:\n" << Engine.render();
  EXPECT_FALSE(Engine.hasErrors())
      << Case.Name << ": the absorbed native failure leaked an error:\n"
      << Engine.render();
  EXPECT_EQ(SimOnly->Output, R->Output)
      << Case.Name << ": fallback output differs from a simulator-only run";
}

INSTANTIATE_TEST_SUITE_P(Benchmarks, NativeFallbackMatrix,
                         ::testing::Range(0, 12));

//===----------------------------------------------------------------------===//
// Tuning-cache corruption, quarantine, and atomic writes
//===----------------------------------------------------------------------===//

class TuneCacheResilience : public ::testing::Test {
protected:
  fs::path Dir;
  tune::Workload W;
  tune::TuneConfig C;

  void SetUp() override {
    using namespace ir;
    using namespace ir::dsl;
    Dir = fs::temp_directory_path() /
          ("lift-resilience-tune-" + std::to_string(::getpid()));
    fs::remove_all(Dir);

    // The tiny workload of TuneTest: map(square) over [float]32, small
    // enough for the exhaustive search to stay fast.
    W.Name = "resilience-tune-tiny";
    ParamPtr X = param("x", arrayOf(float32(), arith::cst(32)));
    W.Program = lambda({X}, pipe(ExprPtr(X), map(prelude::squareFun())));
    std::vector<float> In(32);
    for (size_t I = 0; I != In.size(); ++I)
      In[I] = static_cast<float>(I % 13) * 0.25f - 1.f;
    W.Inputs = {In};
    W.OutCount = 32;
    W.BaseGlobal = {32, 1, 1};
    W.BaseLocal = {8, 1, 1};
    W.OuterN = 32;

    C.CacheDir = Dir.string();
  }

  void TearDown() override {
    fault::disarm();
    std::error_code EC;
    fs::remove_all(Dir, EC);
  }

  /// Runs the search cold and returns the stored result; the cache file
  /// exists afterwards.
  tune::TuneResult populate() {
    DiagnosticEngine Engine;
    Expected<tune::TuneResult> R = tune::tuneWorkload(W, C, Engine);
    EXPECT_TRUE(bool(R)) << Engine.render();
    EXPECT_TRUE(fs::exists(tune::tuneCachePath(W, C)));
    return *R;
  }

  /// No temporary files may linger in the cache directory.
  void expectNoTempFiles() {
    std::error_code EC;
    for (const auto &Entry : fs::directory_iterator(Dir, EC))
      EXPECT_EQ(Entry.path().filename().string().find(".tmp"),
                std::string::npos)
          << "leaked temp file: " << Entry.path();
  }
};

TEST_F(TuneCacheResilience, GarbageEntryIsQuarantinedAndTreatedAsMiss) {
  populate();
  const std::string Path = tune::tuneCachePath(W, C);
  {
    std::ofstream Out(Path, std::ios::trunc);
    Out << "{ this is not json ]";
  }

  tune::TuneResult R;
  DiagnosticEngine Engine;
  EXPECT_FALSE(tune::loadCachedResult(W, C, R, &Engine))
      << "a garbage entry was treated as a hit";
  EXPECT_TRUE(hasCode(Engine, DiagCode::CacheEntryQuarantined))
      << Engine.render();
  EXPECT_FALSE(Engine.hasErrors()) << Engine.render();
  // Quarantined: set aside, not deleted — the evidence survives for
  // inspection, and the path is free for the next store.
  EXPECT_FALSE(fs::exists(Path));
  EXPECT_TRUE(fs::exists(Path + ".corrupt"));

  // The subsequent search repopulates the entry and hits warm again.
  DiagnosticEngine E2;
  Expected<tune::TuneResult> Repopulated = tune::tuneWorkload(W, C, E2);
  ASSERT_TRUE(bool(Repopulated)) << E2.render();
  EXPECT_FALSE(Repopulated->CacheHit);
  DiagnosticEngine E3;
  Expected<tune::TuneResult> Warm = tune::tuneWorkload(W, C, E3);
  ASSERT_TRUE(bool(Warm)) << E3.render();
  EXPECT_TRUE(Warm->CacheHit);
}

TEST_F(TuneCacheResilience, TruncatedEntryIsQuarantined) {
  populate();
  const std::string Path = tune::tuneCachePath(W, C);
  std::string Contents;
  {
    std::ifstream InFile(Path);
    std::ostringstream SS;
    SS << InFile.rdbuf();
    Contents = SS.str();
  }
  ASSERT_GT(Contents.size(), 8u);
  {
    // A torn write: the JSON breaks off mid-document.
    std::ofstream Out(Path, std::ios::trunc);
    Out << Contents.substr(0, Contents.size() / 3);
  }

  tune::TuneResult R;
  DiagnosticEngine Engine;
  EXPECT_FALSE(tune::loadCachedResult(W, C, R, &Engine));
  EXPECT_TRUE(hasCode(Engine, DiagCode::CacheEntryQuarantined))
      << Engine.render();
  EXPECT_TRUE(fs::exists(Path + ".corrupt"));
}

TEST_F(TuneCacheResilience, ReadFaultIsAPlainMissLeavingTheFileIntact) {
  tune::TuneResult Stored = populate();
  const std::string Path = tune::tuneCachePath(W, C);
  const auto Size = fs::file_size(Path);

  // An injected read fault models EINTR/EIO, not corruption: the entry
  // must NOT be quarantined — the file is healthy and the next read
  // will see it.
  fault::arm(fault::Site::CacheRead, 1);
  tune::TuneResult R;
  DiagnosticEngine Engine;
  EXPECT_FALSE(tune::loadCachedResult(W, C, R, &Engine));
  fault::disarm();
  EXPECT_FALSE(hasCode(Engine, DiagCode::CacheEntryQuarantined))
      << Engine.render();
  EXPECT_TRUE(fs::exists(Path));
  EXPECT_EQ(fs::file_size(Path), Size);

  DiagnosticEngine E2;
  tune::TuneResult AfterR;
  EXPECT_TRUE(tune::loadCachedResult(W, C, AfterR, &E2)) << E2.render();
  EXPECT_EQ(AfterR.HasBest, Stored.HasBest);
  if (Stored.HasBest) {
    EXPECT_EQ(AfterR.Best.key(), Stored.Best.key());
  }
}

TEST_F(TuneCacheResilience, WriteOutageWarnsAndLeavesNoPartialFile) {
  // The result to store comes from a cache-free search.
  tune::TuneConfig NoCache = C;
  NoCache.UseCache = false;
  DiagnosticEngine SearchEngine;
  Expected<tune::TuneResult> R = tune::tuneWorkload(W, NoCache, SearchEngine);
  ASSERT_TRUE(bool(R)) << SearchEngine.render();

  // Persistent write outage: the retry policy exhausts, the store warns
  // (E0609) and reports failure — and no file, whole or torn, appears.
  fault::armAlways(fault::Site::CacheWrite);
  DiagnosticEngine Engine;
  EXPECT_FALSE(tune::storeCachedResult(W, C, *R, &Engine));
  fault::disarm();
  EXPECT_TRUE(hasCode(Engine, DiagCode::CacheWriteFailed)) << Engine.render();
  EXPECT_FALSE(Engine.hasErrors()) << Engine.render();
  EXPECT_FALSE(fs::exists(tune::tuneCachePath(W, C)));
  if (fs::exists(Dir))
    expectNoTempFiles();

  // A one-shot write fault is transient: the retry recovers it and the
  // store lands atomically.
  fault::arm(fault::Site::CacheWrite, 1);
  DiagnosticEngine E2;
  EXPECT_TRUE(tune::storeCachedResult(W, C, *R, &E2)) << E2.render();
  fault::disarm();
  EXPECT_TRUE(fs::exists(tune::tuneCachePath(W, C)));
  expectNoTempFiles();

  tune::TuneResult Loaded;
  DiagnosticEngine E3;
  EXPECT_TRUE(tune::loadCachedResult(W, C, Loaded, &E3)) << E3.render();
  EXPECT_EQ(Loaded.HasBest, R->HasBest);
}

//===----------------------------------------------------------------------===//
// The retry policy itself: deterministic, bounded, correctly classified
//===----------------------------------------------------------------------===//

TEST(RetryPolicy, BackoffScheduleIsDeterministic) {
  retry::Policy P;
  P.BaseUs = 100;
  P.Seed = 12345;

  retry::Backoff A(P), B(P);
  for (int I = 0; I != 8; ++I) {
    uint64_t DA = A.nextDelayUs();
    EXPECT_EQ(DA, B.nextDelayUs()) << "attempt " << I;
    // Exponential base term plus jitter in [0, BaseUs).
    uint64_t Base = P.BaseUs << (I > 16 ? 16 : I);
    EXPECT_GE(DA, Base) << "attempt " << I;
    EXPECT_LT(DA, Base + P.BaseUs) << "attempt " << I;
  }

  // A different seed jitters differently somewhere in the schedule.
  retry::Policy Q = P;
  Q.Seed = 54321;
  retry::Backoff C1(P), C2(Q);
  bool Differs = false;
  for (int I = 0; I != 8; ++I)
    Differs |= C1.nextDelayUs() != C2.nextDelayUs();
  EXPECT_TRUE(Differs) << "the seed does not reach the jitter";
}

TEST(RetryPolicy, ClassifiesTransientVersusPermanent) {
  // Transient: injected faults and cache I/O — a real host sees these as
  // spurious ENOMEM/EINTR-class conditions.
  EXPECT_TRUE(retry::isTransient(DiagCode::RuntimeFaultInjected));
  EXPECT_TRUE(retry::isTransient(DiagCode::RuntimeFaultMidExec));
  EXPECT_TRUE(retry::isTransient(DiagCode::RuntimePoolFallback));
  EXPECT_TRUE(retry::isTransient(DiagCode::CacheEntryQuarantined));
  EXPECT_TRUE(retry::isTransient(DiagCode::CacheWriteFailed));
  // Permanent: retrying cannot conjure a toolchain or fix a program.
  EXPECT_FALSE(retry::isTransient(DiagCode::NativeToolchainMissing));
  EXPECT_FALSE(retry::isTransient(DiagCode::NativeCompileFailed));
  EXPECT_FALSE(retry::isTransient(DiagCode::NativeLoadFailed));
  EXPECT_FALSE(retry::isTransient(DiagCode::NativeSymbolMissing));
  EXPECT_FALSE(retry::isTransient(DiagCode::NativeUnsupported));
  EXPECT_FALSE(retry::isTransient(DiagCode::HostBadBuffer));
  EXPECT_FALSE(retry::isTransient(DiagCode::TypeMismatch));
}

TEST(RetryPolicy, RecoversTransientFailuresWithinTheBudget) {
  retry::Policy P;
  P.MaxAttempts = 3;
  P.BaseUs = 1; // keep the test's sleeps negligible
  int Calls = 0;
  int V = retry::runWithRetry(P, "flaky op", [&] {
    if (++Calls < 3)
      throwDiag(DiagCode::RuntimeFaultInjected, DiagLocation(),
                "injected transient failure");
    return 7;
  });
  EXPECT_EQ(V, 7);
  EXPECT_EQ(Calls, 3);
}

TEST(RetryPolicy, PermanentFailuresFailFast) {
  retry::Policy P;
  P.MaxAttempts = 5;
  P.BaseUs = 1;
  int Calls = 0;
  try {
    retry::runWithRetry(P, "doomed op", [&]() -> int {
      ++Calls;
      throwDiag(DiagCode::NativeToolchainMissing, DiagLocation(),
                "no toolchain");
    });
    FAIL() << "a permanent failure was swallowed";
  } catch (const DiagnosticError &E) {
    EXPECT_EQ(E.Diag.Code, DiagCode::NativeToolchainMissing);
  }
  EXPECT_EQ(Calls, 1) << "a permanent failure was retried";
}

TEST(RetryPolicy, ExhaustionAnnotatesTheAttemptCount) {
  retry::Policy P;
  P.MaxAttempts = 3;
  P.BaseUs = 1;
  int Calls = 0;
  try {
    retry::runWithRetry(P, "stuck op", [&]() -> int {
      ++Calls;
      throwDiag(DiagCode::RuntimeFaultInjected, DiagLocation(),
                "injected transient failure");
    });
    FAIL() << "an exhausted retry budget was swallowed";
  } catch (const DiagnosticError &E) {
    EXPECT_EQ(E.Diag.Code, DiagCode::RuntimeFaultInjected);
    bool SawNote = false;
    for (const std::string &N : E.Diag.Notes)
      SawNote |= N.find("stuck op failed after 3 attempts") !=
                 std::string::npos;
    EXPECT_TRUE(SawNote) << E.what();
  }
  EXPECT_EQ(Calls, 3);
}

TEST(RetryPolicy, EnvironmentOverridesAreReadPerCall) {
  ::setenv("LIFT_RETRY_ATTEMPTS", "5", 1);
  ::setenv("LIFT_RETRY_BASE_US", "7", 1);
  ::setenv("LIFT_RETRY_SEED", "9", 1);
  retry::Policy P = retry::Policy::fromEnv();
  EXPECT_EQ(P.MaxAttempts, 5u);
  EXPECT_EQ(P.BaseUs, 7u);
  EXPECT_EQ(P.Seed, 9u);
  ::unsetenv("LIFT_RETRY_ATTEMPTS");
  ::unsetenv("LIFT_RETRY_BASE_US");
  ::unsetenv("LIFT_RETRY_SEED");
  retry::Policy D = retry::Policy::fromEnv();
  EXPECT_EQ(D.MaxAttempts, retry::Policy().MaxAttempts);
  EXPECT_EQ(D.BaseUs, retry::Policy().BaseUs);
  EXPECT_EQ(D.Seed, retry::Policy().Seed);
}

} // namespace
