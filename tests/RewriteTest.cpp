//===- RewriteTest.cpp - Tests for the rewrite rules --------------------------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Each rule must preserve types (checked by inference) and semantics
/// (checked by compiling and executing the rewritten programs).
///
//===----------------------------------------------------------------------===//

#include "TestHelpers.h"
#include "ir/Printer.h"
#include "rewrite/Rules.h"
#include "support/Casting.h"

#include <gtest/gtest.h>

using namespace lift;
using namespace lift::ir;
using namespace lift::ir::dsl;
using namespace lift::rewrite;
using namespace lift::test;

namespace {

class RewriteTest : public ::testing::Test {
protected:
  std::shared_ptr<const arith::VarNode> N = arith::sizeVar("N");
};

TEST_F(RewriteTest, MapFusionFusesAdjacentMaps) {
  ParamPtr X = param("x", arrayOf(float32(), N));
  ExprPtr E = pipe(ExprPtr(X), map(prelude::squareFun()),
                   map(prelude::squareFun()));
  EXPECT_EQ(countMatches(mapFusion(), E), 1u);
  ExprPtr Fused = applyOnce(mapFusion(), E);
  ASSERT_NE(Fused, nullptr);
  // One map remains, with a composed lambda inside.
  const auto *C = cast<FunCall>(Fused.get());
  EXPECT_EQ(C->getFun()->getKind(), FunKind::Map);
  EXPECT_FALSE(isa<FunCall>(C->getArgs()[0]));
}

TEST_F(RewriteTest, SplitJoinEliminationRemovesRoundTrip) {
  ParamPtr X = param("x", arrayOf(float32(), N));
  ExprPtr E = pipe(ExprPtr(X), split(8), join());
  ExprPtr R = applyOnce(splitJoinElimination(), E);
  ASSERT_NE(R, nullptr);
  EXPECT_EQ(R.get(), X.get());
}

TEST_F(RewriteTest, SplitJoinIntroductionRoundTripsWithElimination) {
  ParamPtr X = param("x", arrayOf(float32(), N));
  ExprPtr E = pipe(ExprPtr(X), map(prelude::squareFun()));
  ExprPtr Tiled = applyOnce(splitJoinIntroduction(arith::cst(16)), E);
  ASSERT_NE(Tiled, nullptr);
  EXPECT_EQ(countMatches(splitJoinElimination(), Tiled), 0u);
  EXPECT_NE(printExpr(Tiled).find("split(16)"), std::string::npos);
}

TEST_F(RewriteTest, MappingRulesReplaceHighLevelMap) {
  ParamPtr X = param("x", arrayOf(float32(), N));
  ExprPtr E = pipe(ExprPtr(X), map(prelude::squareFun()));
  ExprPtr Glb = applyOnce(mapToMapGlb(0), E);
  ASSERT_NE(Glb, nullptr);
  EXPECT_EQ(cast<FunCall>(Glb.get())->getFun()->getKind(), FunKind::MapGlb);

  ExprPtr WrgLcl = applyOnce(mapToWrgLcl(arith::cst(32)), E);
  ASSERT_NE(WrgLcl, nullptr);
  std::string Printed = printExpr(WrgLcl);
  EXPECT_NE(Printed.find("mapWrg0"), std::string::npos);
  EXPECT_NE(Printed.find("mapLcl0"), std::string::npos);
}

TEST_F(RewriteTest, ReduceMapFusionRemovesProducer) {
  ParamPtr X = param("x", arrayOf(float32(), N));
  ExprPtr E = call(reduceSeq(prelude::addFun()),
                   {litFloat(0.0f),
                    pipe(ExprPtr(X), mapSeq(prelude::squareFun()))});
  ExprPtr R = applyOnce(reduceMapFusion(), E);
  ASSERT_NE(R, nullptr);
  const auto *C = cast<FunCall>(R.get());
  EXPECT_EQ(C->getFun()->getKind(), FunKind::ReduceSeq);
  // The producer map is gone: the reduce consumes x directly.
  EXPECT_EQ(C->getArgs()[1].get(), X.get());
}

TEST_F(RewriteTest, RulesDoNotMatchElsewhere) {
  ParamPtr X = param("x", arrayOf(float32(), N));
  ExprPtr E = pipe(ExprPtr(X), mapSeq(prelude::squareFun()));
  EXPECT_EQ(applyOnce(mapFusion(), E), nullptr);
  EXPECT_EQ(applyOnce(splitJoinElimination(), E), nullptr);
  EXPECT_EQ(applyOnce(mapToMapGlb(0), E), nullptr);
}

//===----------------------------------------------------------------------===//
// Semantics preservation: lowered programs compute the same results
//===----------------------------------------------------------------------===//

TEST_F(RewriteTest, LoweredProgramsExecuteCorrectly) {
  // High-level portable program: square then double.
  FunDeclPtr Twice = ir::dsl::userFun("twice", {"x"}, {float32()},
                                      float32(), "return x + x;");
  auto MakeHighLevel = [&]() {
    ParamPtr X = param("x", arrayOf(float32(), arith::cst(128)));
    return lambda({X}, pipe(ExprPtr(X), map(prelude::squareFun()),
                            map(Twice)));
  };

  auto In = randomFloats(128, 3);
  std::vector<float> Ref;
  for (float V : In)
    Ref.push_back(2 * V * V);

  // Strategy A: flat global threads.
  LambdaPtr Glb = lowerProgram(MakeHighLevel(), /*UseWorkGroups=*/false);
  auto RG = runFloatProgram(Glb, {In}, 128, {},
                            optionsFor(OptLevel::Full, {32, 1, 1},
                                       {8, 1, 1}));
  EXPECT_LT(maxAbsError(RG.Out, Ref), 1e-5);

  // Strategy B: work-group hierarchy.
  LambdaPtr Wrg = lowerProgram(MakeHighLevel(), /*UseWorkGroups=*/true,
                               arith::cst(16));
  auto RW = runFloatProgram(Wrg, {In}, 128, {},
                            optionsFor(OptLevel::Full, {128, 1, 1},
                                       {16, 1, 1}));
  EXPECT_LT(maxAbsError(RW.Out, Ref), 1e-5);
}

TEST_F(RewriteTest, LoweringFusesBeforeMapping) {
  FunDeclPtr Twice = ir::dsl::userFun("twice", {"x"}, {float32()},
                                      float32(), "return x + x;");
  ParamPtr X = param("x", arrayOf(float32(), arith::cst(64)));
  LambdaPtr P = lambda({X}, pipe(ExprPtr(X), map(prelude::squareFun()),
                                 map(Twice)));
  LambdaPtr Lowered = lowerProgram(P, false);
  std::string Printed = printProgram(Lowered);
  // Exactly one parallel map; no high-level map and no intermediate.
  EXPECT_EQ(Printed.find("map("), std::string::npos);
  EXPECT_NE(Printed.find("mapGlb0"), std::string::npos);
}

TEST_F(RewriteTest, HighLevelMapIsRejectedByCodegen) {
  ParamPtr X = param("x", arrayOf(float32(), arith::cst(16)));
  LambdaPtr P = lambda({X}, pipe(ExprPtr(X), map(prelude::squareFun())));
  codegen::CompilerOptions O;
  EXPECT_DEATH(codegen::compile(P, O), "unlowered high-level map");
}

TEST_F(RewriteTest, DotProductLoweringPipeline) {
  // The [18] story end-to-end: the portable dot product is lowered with
  // rewrite rules and matches a host reference.
  auto MakeHighLevel = [&]() {
    ParamPtr X = param("x", arrayOf(float32(), arith::cst(256)));
    ParamPtr Y = param("y", arrayOf(float32(), arith::cst(256)));
    // reduce(+) . map(*) . zip — the motivating example of section 3.1.
    return lambda(
        {X, Y},
        pipe(call(reduceSeq(prelude::addFun()),
                  {litFloat(0.0f),
                   pipe(call(zip(), {X, Y}),
                        map(prelude::multFun2Tuple()))}),
             toGlobal(mapSeq(prelude::idFloatFun()))));
  };

  LambdaPtr Lowered = lowerProgram(MakeHighLevel(), false);
  auto A = randomFloats(256, 5), B = randomFloats(256, 6);
  double Ref = 0;
  for (size_t I = 0; I != A.size(); ++I)
    Ref += static_cast<double>(A[I]) * B[I];

  auto R = runFloatProgram(Lowered, {A, B}, 1, {},
                           optionsFor(OptLevel::Full, {1, 1, 1}, {1, 1, 1}));
  ASSERT_EQ(R.Out.size(), 1u);
  EXPECT_NEAR(R.Out[0], Ref, 1e-3);
}

} // namespace
