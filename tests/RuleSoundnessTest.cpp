//===- RuleSoundnessTest.cpp - Differential testing of rewrite rules ------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Differential soundness testing of every rewrite rule: each rule in
/// rewrite::allRules() claims to be semantics-preserving, so applying it
/// at *any* matching position of a well-typed high-level program must not
/// change the program's results. For random programs from the shared
/// generator (Generator.h, GenMode::HighLevel) this tier applies each
/// rule at every matching position in turn (rewrite::applyAt), lowers the
/// original and the rewritten program with the same default pipeline,
/// executes both on the simulated runtime, and demands bit-identical
/// outputs.
///
/// Rules with placement preconditions (the parallel mapping rules: e.g.
/// mapGlb may only distribute a dimension once) are allowed to produce
/// candidates that the verifier or the compiler *cleanly rejects* — that
/// is the contract hardened in this PR (same-dimension nesting checks in
/// passes::Verify, E0405 from the checked rewrite entry points). What no
/// rule application may ever do is produce a program that compiles, runs
/// cleanly, and computes different bits.
///
/// Runs in the "check" tier (so the sanitized CI job covers it) under the
/// additional "rules" label for standalone runs: ctest -L rules.
///
//===----------------------------------------------------------------------===//

#include "Generator.h"
#include "TestHelpers.h"
#include "codegen/Compiler.h"
#include "ocl/Runtime.h"
#include "rewrite/Rules.h"
#include "support/Diagnostics.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

using namespace lift;
using namespace lift::ir;
using namespace lift::test;

namespace {

/// Executes \p Lowered and returns its output bits, or false with the
/// engine's rendering of why it was rejected. Race checking is off: a
/// program whose every map went sequential is executed redundantly by all
/// work-items (same-value overlapping writes), which is benign here —
/// only the bits matter.
bool execute(const LambdaPtr &Lowered,
             const std::vector<std::vector<float>> &Inputs, size_t OutCount,
             std::vector<float> &Out, std::string &Why) {
  DiagnosticEngine Engine;
  codegen::CompilerOptions Opts;
  Opts.GlobalSize = {16, 1, 1};
  Opts.LocalSize = {4, 1, 1};
  Opts.VerifyEach = true;
  Expected<codegen::CompiledKernel> K =
      codegen::compileChecked(Lowered, Opts, Engine);
  if (!K) {
    Why = "compile: " + Engine.render();
    return false;
  }
  std::vector<ocl::Buffer> Bufs;
  for (const std::vector<float> &In : Inputs)
    Bufs.push_back(ocl::Buffer::ofFloats(In));
  Bufs.push_back(ocl::Buffer::zeros(OutCount));
  std::vector<ocl::Buffer *> Ptrs;
  for (ocl::Buffer &B : Bufs)
    Ptrs.push_back(&B);
  ocl::LaunchConfig Cfg = ocl::LaunchConfig::fromOptions(Opts);
  Cfg.CheckMemory = true;
  Cfg.Limits.MaxSteps = 50'000'000;
  Cfg.Limits.TimeoutMs = 30'000;
  Expected<ocl::LaunchResult> R =
      ocl::launchChecked(*K, Ptrs, {{"N", 48}}, Cfg, Engine);
  if (!R) {
    Why = "launch: " + Engine.render();
    return false;
  }
  if (!R->Guards.clean()) {
    Why = "guards: " + R->Guards.summary();
    return false;
  }
  Out = Bufs.back().toFloats();
  return true;
}

bool sameBits(const std::vector<float> &A, const std::vector<float> &B) {
  return A.size() == B.size() &&
         (A.empty() ||
          std::memcmp(A.data(), B.data(), A.size() * sizeof(float)) == 0);
}

/// Lowers with the default pipeline, absorbing thrown diagnostics into a
/// clean rejection.
bool lowerQuiet(const LambdaPtr &P, LambdaPtr &Out, std::string &Why) {
  try {
    Out = rewrite::lowerProgram(P, /*UseWorkGroups=*/false);
    return true;
  } catch (const DiagnosticError &E) {
    Why = "lowering: " + E.Diag.Message;
    return false;
  }
}

class RuleSoundness : public ::testing::TestWithParam<int> {};

/// For each random high-level program: establish the reference bits via
/// the default lowering, then sweep every rule over every matching
/// position. Each rewritten program either executes to the exact
/// reference bits or is rejected with a diagnostic — never silently
/// miscompiles.
TEST_P(RuleSoundness, EveryRuleAtEveryPositionPreservesSemantics) {
  constexpr int ProgramsPerSeed = 4;
  constexpr unsigned MaxPositionsPerRule = 6;
  const std::vector<rewrite::Rule> Rules = rewrite::allRules();

  for (int I = 0; I != ProgramsPerSeed; ++I) {
    uint64_t Seed = static_cast<uint64_t>(GetParam()) * 977 + I;
    size_t OutCount = 0;
    bool TwoInputs = false;
    LambdaPtr P =
        generateWellTyped(Seed, OutCount, TwoInputs, GenMode::HighLevel);

    std::vector<std::vector<float>> Inputs;
    Inputs.push_back(randomFloats(48, Seed));
    if (TwoInputs)
      Inputs.push_back(randomFloats(48, Seed + 7));

    // Reference: the default lowering of the untouched program.
    LambdaPtr RefLowered;
    std::string Why;
    ASSERT_TRUE(lowerQuiet(P, RefLowered, Why))
        << "default lowering rejected a generated program (seed " << Seed
        << "): " << Why;
    std::vector<float> RefOut;
    ASSERT_TRUE(execute(RefLowered, Inputs, OutCount, RefOut, Why))
        << "reference execution failed (seed " << Seed << "): " << Why;

    unsigned Executed = 0;
    for (const rewrite::Rule &R : Rules) {
      for (unsigned K = 0; K != MaxPositionsPerRule; ++K) {
        ExprPtr NewBody = rewrite::applyAt(R, P->getBody(), K);
        if (!NewBody)
          break; // fewer than K+1 matching positions
        LambdaPtr Rewritten = dsl::lambda(P->getParams(), NewBody);

        LambdaPtr Lowered;
        if (!lowerQuiet(Rewritten, Lowered, Why))
          continue; // clean rejection: placement precondition violated
        std::vector<float> Out;
        if (!execute(Lowered, Inputs, OutCount, Out, Why))
          continue; // clean rejection by verify/compile/launch
        ++Executed;
        EXPECT_TRUE(sameBits(RefOut, Out))
            << "rule '" << R.Name << "' at position " << K
            << " changed the results (seed " << Seed << ")";
      }
    }
    // The sweep must not be vacuous: at least the sequential mapping of
    // the outermost map is always executable.
    EXPECT_GE(Executed, 1u)
        << "no rule application executed for seed " << Seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RuleSoundness, ::testing::Range(0, 24));

} // namespace
