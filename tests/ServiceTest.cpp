//===- ServiceTest.cpp - liftd daemon end-to-end tests -------------------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
//
// End-to-end coverage of the liftd compile-and-run service
// (docs/SERVICE.md): admission control and deterministic E0701 shedding,
// request isolation (responses bit-identical to solo liftc runs at any
// worker count, failing neighbors contained), cancellation when a client
// disconnects mid-request, content-addressed dedupe with single-flight
// collapsing, kill -9 crash recovery through hash-verified artifacts,
// graceful SIGTERM drain, and the four service fault-injection sites
// (accept / request read / request write / queue admit) swept one-shot
// (the client's retry makes them invisible) and always-on (bounded clean
// failure, never a hang or abort).
//
// Most tests run the Server in-process so counters can be asserted
// directly; the crash-recovery test fork/execs the real liftd binary so
// kill -9 kills a real process.
//
//===----------------------------------------------------------------------===//

#include "ocl/FaultInject.h"
#include "service/Client.h"
#include "service/Server.h"
#include "support/FileLock.h"
#include "support/Retry.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <dirent.h>
#include <fstream>
#include <sstream>
#include <string>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>
#include <vector>

using namespace lift;
using namespace lift::service;

namespace {

//===----------------------------------------------------------------------===//
// Test scaffolding
//===----------------------------------------------------------------------===//

std::string readFile(const std::string &Path) {
  std::ifstream In(Path);
  EXPECT_TRUE(In.good()) << Path;
  std::stringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

std::string exampleSource(const char *Name) {
  return readFile(std::string(LIFT_EXAMPLES_DIR) + "/" + Name);
}

/// Unique scratch directory, removed on destruction.
struct TempDir {
  std::string Path;
  TempDir() {
    char Buf[] = "/tmp/lift-service-test-XXXXXX";
    Path = ::mkdtemp(Buf);
  }
  ~TempDir() {
    std::string Cmd = "rm -rf '" + Path + "'";
    if (std::system(Cmd.c_str()) != 0) {
    }
  }
  std::string file(const std::string &Name) const { return Path + "/" + Name; }
};

/// In-process daemon with the test-friendly defaults.
struct TestServer {
  TempDir Dir;
  ServerOptions Opts;
  std::unique_ptr<Server> S;

  explicit TestServer(int Workers = 2, int QueueDepth = 16) {
    Opts.SocketPath = Dir.file("liftd.sock");
    Opts.Workers = Workers;
    Opts.QueueDepth = QueueDepth;
    Opts.RetryAfterMs = 1;
  }

  bool start() {
    S = std::make_unique<Server>(Opts);
    std::string Err;
    bool Ok = S->start(Err);
    EXPECT_TRUE(Ok) << Err;
    return Ok;
  }

  ClientOptions client() const {
    ClientOptions C;
    C.SocketPath = Opts.SocketPath;
    C.TimeoutMs = 120000; // tests under sanitizers can be slow
    return C;
  }

  ~TestServer() {
    if (S) {
      S->requestShutdown();
      S->wait();
    }
  }
};

Request execRequestFor(const std::string &Source, int64_t N,
                       bool Run = true) {
  Request R;
  R.Kind = Op::Exec;
  R.Exec.Source = Source;
  R.Exec.Run = Run;
  R.Exec.Opts.GlobalSize = {512, 1, 1};
  R.Exec.Opts.LocalSize = {64, 1, 1};
  R.Exec.Sizes["N"] = N;
  return R;
}

/// Tight retry policy so always-on faults fail fast instead of sleeping
/// through the default backoff.
struct RetryEnv {
  RetryEnv(const char *Attempts, const char *BaseUs) {
    ::setenv("LIFT_RETRY_ATTEMPTS", Attempts, 1);
    ::setenv("LIFT_RETRY_BASE_US", BaseUs, 1);
  }
  ~RetryEnv() {
    ::unsetenv("LIFT_RETRY_ATTEMPTS");
    ::unsetenv("LIFT_RETRY_BASE_US");
  }
};

/// Polls \p Pred every millisecond until it holds or \p DeadlineMs passes.
bool waitFor(const std::function<bool()> &Pred, int64_t DeadlineMs = 20000) {
  auto End =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(DeadlineMs);
  while (std::chrono::steady_clock::now() < End) {
    if (Pred())
      return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return Pred();
}

/// Raw client socket for the tests that need to misbehave (disconnect
/// mid-request, send garbage frames).
int rawConnect(const std::string &SocketPath) {
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0)
    return -1;
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, SocketPath.c_str(), SocketPath.size() + 1);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    ::close(Fd);
    return -1;
  }
  return Fd;
}

bool rawSendLine(int Fd, std::string Line) {
  Line += '\n';
  size_t Sent = 0;
  while (Sent < Line.size()) {
    ssize_t N = ::send(Fd, Line.data() + Sent, Line.size() - Sent,
                       MSG_NOSIGNAL);
    if (N <= 0)
      return false;
    Sent += static_cast<size_t>(N);
  }
  return true;
}

std::string rawRecvLine(int Fd) {
  std::string Reply;
  char Buf[65536];
  for (;;) {
    ssize_t N = ::recv(Fd, Buf, sizeof(Buf), 0);
    if (N <= 0)
      return Reply;
    Reply.append(Buf, static_cast<size_t>(N));
    size_t Nl = Reply.find('\n');
    if (Nl != std::string::npos) {
      Reply.resize(Nl);
      return Reply;
    }
  }
}

int64_t statValue(const Response &R, const std::string &Key) {
  for (const auto &KV : R.Stats)
    if (KV.first == Key)
      return KV.second;
  return -1;
}

//===----------------------------------------------------------------------===//
// Protocol basics
//===----------------------------------------------------------------------===//

TEST(ServiceTest, PingStatsAndShutdown) {
  TestServer T;
  ASSERT_TRUE(T.start());

  Request Ping;
  Ping.Kind = Op::Ping;
  Response R = roundTripOnce(T.client(), Ping);
  EXPECT_EQ(R.St, Status::Ok);
  EXPECT_EQ(R.Message, "pong");

  Request Stats;
  Stats.Kind = Op::Stats;
  R = roundTripOnce(T.client(), Stats);
  EXPECT_EQ(R.St, Status::Ok);
  EXPECT_EQ(statValue(R, "workers"), 2);
  EXPECT_EQ(statValue(R, "requests"), 2);
  EXPECT_EQ(statValue(R, "shed"), 0);

  Request Down;
  Down.Kind = Op::Shutdown;
  R = roundTripOnce(T.client(), Down);
  EXPECT_EQ(R.St, Status::Ok);
  T.S->wait();

  // Once drained the socket is gone: connecting is a clean E0706.
  EXPECT_THROW(roundTripOnce(T.client(), Ping), DiagnosticError);
  T.S.reset(); // already drained; skip the destructor's second shutdown
}

TEST(ServiceTest, MalformedAndOversizedFramesAnswerE0702) {
  TestServer T;
  T.Opts.MaxRequestBytes = 2048;
  ASSERT_TRUE(T.start());

  int Fd = rawConnect(T.Opts.SocketPath);
  ASSERT_GE(Fd, 0);
  ASSERT_TRUE(rawSendLine(Fd, "this is not json"));
  std::string Reply = rawRecvLine(Fd);
  ::close(Fd);
  Response R;
  std::string Err;
  ASSERT_TRUE(parseResponse(Reply, R, Err)) << Err;
  EXPECT_EQ(R.St, Status::BadRequest);
  EXPECT_EQ(R.Code, "E0702");
  EXPECT_EQ(R.Exit, 1);

  // A frame past --max-request-bytes is rejected without buffering it.
  Fd = rawConnect(T.Opts.SocketPath);
  ASSERT_GE(Fd, 0);
  std::string Big(4096, 'x');
  ASSERT_TRUE(rawSendLine(Fd, Big));
  Reply = rawRecvLine(Fd);
  ::close(Fd);
  ASSERT_TRUE(parseResponse(Reply, R, Err)) << Err;
  EXPECT_EQ(R.St, Status::BadRequest);
  EXPECT_EQ(R.Code, "E0702");

  ServerStats St = T.S->stats();
  EXPECT_EQ(St.BadRequest, 2);
}

//===----------------------------------------------------------------------===//
// Request isolation: bit-identical to solo runs, at any worker count
//===----------------------------------------------------------------------===//

TEST(ServiceTest, ResponsesBitIdenticalToSoloAcrossWorkerCounts) {
  // A mixed workload: two healthy programs at different sizes and flag
  // sets, one program that fails to parse, and one that trips a runtime
  // limit. Every response must match the solo pipeline byte for byte --
  // stdout, rendered diagnostics and exit code -- no matter how many
  // worker threads the daemon multiplexes them onto.
  std::string Square = exampleSource("square.lift");
  std::string Dot = exampleSource("dot.lift");

  std::vector<Request> Work;
  Work.push_back(execRequestFor(Square, 64));
  Work.back().Exec.PrintIl = true;
  Work.push_back(execRequestFor(Square, 4096));
  Work.back().Exec.Opts.CheckRaces = true;
  Work.push_back(execRequestFor(Dot, 1024));
  Work.push_back(execRequestFor(Dot, 1 << 15));
  Work.back().Exec.Opts.CheckMemory = true;
  Work.push_back(execRequestFor("fun(x: [float]N) => nonsense(x)", 64));
  Work.push_back(execRequestFor(Dot, 1024));
  Work.back().Exec.Opts.MaxSteps = 100; // trips E0510 at run time
  Work.push_back(execRequestFor(Square, 64, /*Run=*/false));

  // Solo baselines through the very same pipeline entry point liftc uses.
  std::vector<ExecOutcome> Solo;
  for (const Request &R : Work)
    Solo.push_back(execRequest(R.Exec));
  ASSERT_EQ(Solo[0].Exit, 0);
  ASSERT_EQ(Solo[4].Exit, 1) << "parse failure baseline";
  ASSERT_EQ(Solo[5].Exit, 1) << "step-limit baseline";

  for (int Workers : {1, 2, 8}) {
    TestServer T(Workers);
    ASSERT_TRUE(T.start());
    std::vector<Response> Got(Work.size());
    std::vector<std::thread> Threads;
    for (size_t I = 0; I < Work.size(); ++I)
      Threads.emplace_back([&, I] {
        Got[I] = roundTripOnce(T.client(), Work[I]);
      });
    for (std::thread &Th : Threads)
      Th.join();

    for (size_t I = 0; I < Work.size(); ++I) {
      std::string What =
          "request " + std::to_string(I) + " at " + std::to_string(Workers) +
          " workers";
      EXPECT_EQ(Got[I].St, Status::Ok) << What;
      EXPECT_EQ(Got[I].Exit, Solo[I].Exit) << What;
      EXPECT_EQ(Got[I].Stdout, Solo[I].Stdout) << What;
      EXPECT_EQ(Got[I].Diagnostics, Solo[I].Diags) << What;
    }
    ServerStats St = T.S->stats();
    EXPECT_EQ(St.Shed, 0);
    EXPECT_EQ(St.ExecInternal, 0);
  }
}

//===----------------------------------------------------------------------===//
// Admission control
//===----------------------------------------------------------------------===//

TEST(ServiceTest, OverloadShedsDeterministicallyWithRetryHint) {
  // One worker, zero queue: once a request occupies the worker, the very
  // next exec is shed with E0701 -- deterministically, not probabilistically.
  TestServer T(/*Workers=*/1, /*QueueDepth=*/0);
  T.Opts.RetryAfterMs = 7;
  ASSERT_TRUE(T.start());

  // Occupy the worker from a raw socket with a deliberately huge run;
  // closing the socket later cancels it, so the test never waits for it.
  std::string Dot = exampleSource("dot.lift");
  Request Long = execRequestFor(Dot, 1 << 23);
  int LongFd = rawConnect(T.Opts.SocketPath);
  ASSERT_GE(LongFd, 0);
  ASSERT_TRUE(rawSendLine(LongFd, encodeRequest(Long)));
  ASSERT_TRUE(waitFor([&] { return T.S->stats().Active == 1; }));

  // Deterministic shed, carrying the daemon's backoff hint.
  Request Small = execRequestFor(exampleSource("square.lift"), 64);
  try {
    roundTripOnce(T.client(), Small);
    FAIL() << "expected E0701";
  } catch (DiagnosticError &E) {
    EXPECT_EQ(E.Diag.Code, DiagCode::ServiceOverloaded);
    EXPECT_EQ(E.Diag.Notes.size(), 1u);
    EXPECT_NE(E.Diag.Notes[0].find("7 ms"), std::string::npos)
        << E.Diag.Notes[0];
  }
  EXPECT_GE(T.S->stats().Shed, 1);

  // Ping and stats are control-plane: never shed.
  Request Ping;
  Ping.Kind = Op::Ping;
  EXPECT_EQ(roundTripOnce(T.client(), Ping).St, Status::Ok);

  // Free the worker by abandoning the long request; the daemon cancels
  // it cooperatively (E0516) and the retry loop then gets through.
  ::close(LongFd);
  ASSERT_TRUE(waitFor([&] { return T.S->stats().Active == 0; }));
  RetryEnv Env("10", "2000");
  DiagnosticEngine Engine(20);
  Response Resp;
  ASSERT_TRUE(roundTrip(T.client(), Small, Resp, Engine));
  EXPECT_EQ(Resp.Exit, 0);
  EXPECT_EQ(T.S->stats().Cancelled, 1);
}

TEST(ServiceTest, ServerCeilingsClampRequestLimits) {
  // The daemon's --max-steps ceiling applies even when the request asks
  // for more (or for no limit at all).
  TestServer T(1, 4);
  T.Opts.MaxSteps = 1000;
  ASSERT_TRUE(T.start());

  Request R = execRequestFor(exampleSource("dot.lift"), 1 << 15);
  R.Exec.Opts.MaxSteps = 0; // "unlimited", says the client
  Response Resp = roundTripOnce(T.client(), R);
  EXPECT_EQ(Resp.St, Status::Ok);
  EXPECT_EQ(Resp.Exit, 1);
  ASSERT_FALSE(Resp.Diagnostics.empty());
  EXPECT_NE(Resp.Diagnostics[0].find("E0510"), std::string::npos)
      << Resp.Diagnostics[0];
}

//===----------------------------------------------------------------------===//
// Cancellation
//===----------------------------------------------------------------------===//

TEST(ServiceTest, DisconnectedClientCancelsItsRequest) {
  TestServer T(1, 4);
  ASSERT_TRUE(T.start());

  Request Long = execRequestFor(exampleSource("dot.lift"), 1 << 23);
  int Fd = rawConnect(T.Opts.SocketPath);
  ASSERT_GE(Fd, 0);
  ASSERT_TRUE(rawSendLine(Fd, encodeRequest(Long)));
  ASSERT_TRUE(waitFor([&] { return T.S->stats().Active == 1; }));
  ::close(Fd);

  // The interpreter honors the cancellation token within one tick
  // interval; the worker frees up long before the run would finish.
  ASSERT_TRUE(waitFor([&] {
    ServerStats St = T.S->stats();
    return St.Active == 0 && St.Cancelled == 1;
  }));

  // The daemon is healthy afterwards: a normal request sails through.
  Response Resp =
      roundTripOnce(T.client(), execRequestFor(exampleSource("square.lift"),
                                               64));
  EXPECT_EQ(Resp.St, Status::Ok);
  EXPECT_EQ(Resp.Exit, 0);
}

//===----------------------------------------------------------------------===//
// Dedupe and single-flight
//===----------------------------------------------------------------------===//

TEST(ServiceTest, IdenticalMissesCollapseToOneCompile) {
  TestServer T(8, 16);
  ASSERT_TRUE(T.start());

  Request R = execRequestFor(exampleSource("square.lift"), 256,
                             /*Run=*/false);
  std::vector<Response> Got(8);
  std::vector<std::thread> Threads;
  for (size_t I = 0; I < Got.size(); ++I)
    Threads.emplace_back([&, I] { Got[I] = roundTripOnce(T.client(), R); });
  for (std::thread &Th : Threads)
    Th.join();

  for (const Response &Resp : Got) {
    EXPECT_EQ(Resp.St, Status::Ok);
    EXPECT_EQ(Resp.Exit, 0);
    EXPECT_EQ(Resp.Stdout, Got[0].Stdout);
  }
  ServerStats St = T.S->stats();
  EXPECT_EQ(St.Compiles, 1) << "single-flight must collapse identical misses";
  EXPECT_EQ(St.DedupeHits, 7);
  int Cached = 0;
  for (const Response &Resp : Got)
    Cached += Resp.Cached ? 1 : 0;
  EXPECT_EQ(Cached, 7);

  // Run requests and run-only knob changes share the compile key, so the
  // cached product keeps serving without a single recompile.
  Request Run = execRequestFor(exampleSource("square.lift"), 256);
  Response RunResp = roundTripOnce(T.client(), Run);
  EXPECT_EQ(RunResp.Exit, 0);
  Run.Exec.Opts.CheckRaces = true;
  RunResp = roundTripOnce(T.client(), Run);
  EXPECT_EQ(RunResp.Exit, 0);
  St = T.S->stats();
  EXPECT_EQ(St.Compiles, 1) << "run-only knobs must not force a recompile";
  EXPECT_EQ(St.DedupeHits, 9);
}

//===----------------------------------------------------------------------===//
// Drain
//===----------------------------------------------------------------------===//

TEST(ServiceTest, DrainFinishesInflightWorkThenExits) {
  TestServer T(1, 4);
  T.Opts.DrainMs = 60000;
  ASSERT_TRUE(T.start());

  Request Mid = execRequestFor(exampleSource("dot.lift"), 1 << 17);
  Response MidResp;
  std::thread Client([&] { MidResp = roundTripOnce(T.client(), Mid); });
  ASSERT_TRUE(waitFor([&] { return T.S->stats().Active == 1; }));

  T.S->requestShutdown();
  // New connections are refused the moment the drain starts.
  EXPECT_TRUE(waitFor([&] { return rawConnect(T.Opts.SocketPath) < 0; }));

  Client.join();
  EXPECT_EQ(MidResp.St, Status::Ok);
  EXPECT_EQ(MidResp.Exit, 0) << "in-flight work must complete during drain";
  T.S->wait();
  T.S.reset();
}

TEST(ServiceTest, DrainDeadlineCancelsStragglers) {
  TestServer T(1, 4);
  T.Opts.DrainMs = 100;
  ASSERT_TRUE(T.start());

  Request Long = execRequestFor(exampleSource("dot.lift"), 1 << 23);
  Response LongResp;
  std::thread Client([&] { LongResp = roundTripOnce(T.client(), Long); });
  ASSERT_TRUE(waitFor([&] { return T.S->stats().Active == 1; }));

  auto Start = std::chrono::steady_clock::now();
  T.S->requestShutdown();
  Client.join();
  T.S->wait();
  auto ElapsedMs = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::steady_clock::now() - Start)
                       .count();
  EXPECT_LT(ElapsedMs, 30000) << "drain must be bounded by --drain-ms";
  EXPECT_EQ(LongResp.St, Status::Ok);
  EXPECT_EQ(LongResp.Exit, 1);
  bool SawCancel = false;
  for (const std::string &D : LongResp.Diagnostics)
    SawCancel = SawCancel || D.find("E0516") != std::string::npos;
  EXPECT_TRUE(SawCancel) << "straggler must answer E0516, got "
                         << (LongResp.Diagnostics.empty()
                                 ? std::string("<none>")
                                 : LongResp.Diagnostics[0]);
  T.S.reset();
}

//===----------------------------------------------------------------------===//
// Fault injection on the service paths
//===----------------------------------------------------------------------===//

class ServiceFaultTest
    : public ::testing::TestWithParam<ocl::fault::Site> {};

TEST_P(ServiceFaultTest, OneShotFaultIsInvisibleBehindRetry) {
  ocl::fault::disarm();
  TestServer T(2, 8);
  ASSERT_TRUE(T.start());
  Request R = execRequestFor(exampleSource("square.lift"), 64);

  RetryEnv Env("8", "2000");
  ocl::fault::arm(GetParam(), 1);
  DiagnosticEngine Engine(20);
  Response Resp;
  bool Ok = roundTrip(T.client(), R, Resp, Engine);
  uint64_t Fired = ocl::fault::occurrences(GetParam());
  ocl::fault::disarm();
  ASSERT_TRUE(Ok) << (Engine.diagnostics().empty()
                          ? std::string("<no diagnostic>")
                          : Engine.diagnostics()[0].render());
  EXPECT_EQ(Resp.St, Status::Ok);
  EXPECT_EQ(Resp.Exit, 0);
  EXPECT_GE(Fired, 1u) << "the fault site must actually have fired";
}

TEST_P(ServiceFaultTest, PersistentFaultFailsCleanlyAndBounded) {
  ocl::fault::disarm();
  TestServer T(2, 8);
  ASSERT_TRUE(T.start());
  Request R = execRequestFor(exampleSource("square.lift"), 64);

  RetryEnv Env("3", "500");
  ocl::fault::armAlways(GetParam());
  DiagnosticEngine Engine(20);
  Response Resp;
  bool Ok = roundTrip(T.client(), R, Resp, Engine);
  ocl::fault::disarm();
  EXPECT_FALSE(Ok) << "a persistent outage must surface, not hang";
  ASSERT_EQ(Engine.diagnostics().size(), 1u);
  const Diagnostic &D = Engine.diagnostics()[0];
  EXPECT_TRUE(D.Code == DiagCode::ServiceOverloaded ||
              D.Code == DiagCode::ServiceIoError ||
              D.Code == DiagCode::ServiceConnectFailed)
      << D.render();
  // The retry policy's exhaustion note names the attempt count.
  ASSERT_FALSE(D.Notes.empty());
  EXPECT_NE(D.Notes.back().find("3 attempts"), std::string::npos)
      << D.Notes.back();

  // The daemon survives the sweep: disarmed, it answers normally.
  Response After = roundTripOnce(T.client(), R);
  EXPECT_EQ(After.St, Status::Ok);
  EXPECT_EQ(After.Exit, 0);
}

INSTANTIATE_TEST_SUITE_P(
    ServiceSites, ServiceFaultTest,
    ::testing::Values(ocl::fault::Site::Accept,
                      ocl::fault::Site::RequestRead,
                      ocl::fault::Site::RequestWrite,
                      ocl::fault::Site::QueueAdmit),
    [](const ::testing::TestParamInfo<ocl::fault::Site> &I) {
      switch (I.param) {
      case ocl::fault::Site::Accept:
        return "Accept";
      case ocl::fault::Site::RequestRead:
        return "RequestRead";
      case ocl::fault::Site::RequestWrite:
        return "RequestWrite";
      default:
        return "QueueAdmit";
      }
    });

//===----------------------------------------------------------------------===//
// Crash-only lifecycle: kill -9, restart, hash-verified artifact reuse
//===----------------------------------------------------------------------===//

pid_t spawnDaemon(const std::string &Socket, const std::string &ArtifactDir) {
  pid_t Pid = ::fork();
  if (Pid == 0) {
    // Quiet the child; the test asserts through the protocol.
    if (!std::freopen("/dev/null", "w", stdout) ||
        !std::freopen("/dev/null", "w", stderr))
      _exit(127);
    ::execl(LIFTD_BIN, LIFTD_BIN, "--socket", Socket.c_str(),
            "--artifact-dir", ArtifactDir.c_str(), "--drain-ms", "2000",
            static_cast<char *>(nullptr));
    _exit(127);
  }
  return Pid;
}

bool waitSocketUp(const std::string &Socket) {
  return waitFor([&] {
    int Fd = rawConnect(Socket);
    if (Fd < 0)
      return false;
    ::close(Fd);
    return true;
  });
}

int64_t daemonStat(const ClientOptions &C, const std::string &Key) {
  Request R;
  R.Kind = Op::Stats;
  return statValue(roundTripOnce(C, R), Key);
}

TEST(ServiceTest, KillNineRecoveryReusesOnlyVerifiedArtifacts) {
  TempDir Dir;
  std::string Socket = Dir.file("liftd.sock");
  std::string Art = Dir.file("artifacts");
  ClientOptions C;
  C.SocketPath = Socket;
  C.TimeoutMs = 60000;
  Request R = execRequestFor(exampleSource("square.lift"), 128,
                             /*Run=*/false);

  // Generation 1: compile once, artifact lands on disk.
  pid_t Pid = spawnDaemon(Socket, Art);
  ASSERT_GT(Pid, 0);
  ASSERT_TRUE(waitSocketUp(Socket));
  Response Resp = roundTripOnce(C, R);
  EXPECT_EQ(Resp.Exit, 0);
  EXPECT_FALSE(Resp.Cached);
  EXPECT_EQ(daemonStat(C, "compiles"), 1);
  ::kill(Pid, SIGKILL);
  ASSERT_EQ(::waitpid(Pid, nullptr, 0), Pid);

  // The murdered daemon left its socket file behind; the restart must
  // reclaim it, verify the artifact's hash sidecar, and answer the same
  // request from disk without recompiling.
  struct stat Sb;
  ASSERT_EQ(::stat(Socket.c_str(), &Sb), 0) << "stale socket expected";
  Pid = spawnDaemon(Socket, Art);
  ASSERT_GT(Pid, 0);
  ASSERT_TRUE(waitSocketUp(Socket));
  Resp = roundTripOnce(C, R);
  EXPECT_EQ(Resp.Exit, 0);
  EXPECT_TRUE(Resp.Cached) << "verified artifact must be reused";
  EXPECT_EQ(daemonStat(C, "disk_hits"), 1);
  EXPECT_EQ(daemonStat(C, "compiles"), 0);
  ::kill(Pid, SIGKILL);
  ASSERT_EQ(::waitpid(Pid, nullptr, 0), Pid);

  // Corrupt the artifact body (sidecar untouched, as a torn write would
  // leave it): the next generation must quarantine it and recompile.
  std::string ArtifactPath;
  if (DIR *D = ::opendir(Art.c_str())) {
    while (dirent *E = ::readdir(D)) {
      std::string Name = E->d_name;
      if (Name.size() > 5 && Name.rfind(".json") == Name.size() - 5)
        ArtifactPath = Art + "/" + Name;
    }
    ::closedir(D);
  }
  ASSERT_FALSE(ArtifactPath.empty());
  {
    std::ofstream Out(ArtifactPath, std::ios::trunc);
    Out << "{\"schema\":\"liftd-v1\",\"torn\":true}";
  }

  Pid = spawnDaemon(Socket, Art);
  ASSERT_GT(Pid, 0);
  ASSERT_TRUE(waitSocketUp(Socket));
  Resp = roundTripOnce(C, R);
  EXPECT_EQ(Resp.Exit, 0);
  EXPECT_FALSE(Resp.Cached) << "corrupt artifact must not be served";
  EXPECT_EQ(daemonStat(C, "compiles"), 1);
  EXPECT_EQ(daemonStat(C, "disk_hits"), 0);

  // The corrupt file was quarantined, not deleted (post-mortem evidence).
  bool SawQuarantine = false;
  if (DIR *D = ::opendir(Art.c_str())) {
    while (dirent *E = ::readdir(D)) {
      std::string Name = E->d_name;
      if (Name.find(".corrupt") != std::string::npos)
        SawQuarantine = true;
    }
    ::closedir(D);
  }
  EXPECT_TRUE(SawQuarantine);

  // And SIGTERM drains gracefully: exit code 0.
  ::kill(Pid, SIGTERM);
  int Status = 0;
  ASSERT_EQ(::waitpid(Pid, &Status, 0), Pid);
  EXPECT_TRUE(WIFEXITED(Status) && WEXITSTATUS(Status) == 0);
}

//===----------------------------------------------------------------------===//
// Cross-process single-flight (satellite: flock on the persistent caches)
//===----------------------------------------------------------------------===//

TEST(ServiceTest, FileLockSerializesForkedWriters) {
  // Two forked children do read-modify-write cycles on a shared counter
  // file under support::FileLock. Without the lock the lost-update race
  // makes the final count fall short; with it the count is exact.
  TempDir Dir;
  std::string Counter = Dir.file("counter");
  std::string Lock = Counter + ".lock";
  {
    std::ofstream Out(Counter);
    Out << "0\n";
  }

  constexpr int Cycles = 200;
  auto Child = [&]() {
    for (int I = 0; I < Cycles; ++I) {
      support::FileLock L = support::FileLock::acquire(Lock);
      if (!L.locked())
        _exit(3);
      long long V = 0;
      {
        std::ifstream In(Counter);
        In >> V;
      }
      std::ofstream Out(Counter, std::ios::trunc);
      Out << (V + 1) << "\n";
      Out.flush();
    }
    _exit(0);
  };

  pid_t A = ::fork();
  if (A == 0)
    Child();
  pid_t B = ::fork();
  if (B == 0)
    Child();
  ASSERT_GT(A, 0);
  ASSERT_GT(B, 0);
  int StA = 0, StB = 0;
  ASSERT_EQ(::waitpid(A, &StA, 0), A);
  ASSERT_EQ(::waitpid(B, &StB, 0), B);
  EXPECT_TRUE(WIFEXITED(StA) && WEXITSTATUS(StA) == 0);
  EXPECT_TRUE(WIFEXITED(StB) && WEXITSTATUS(StB) == 0);

  long long Final = 0;
  std::ifstream In(Counter);
  In >> Final;
  EXPECT_EQ(Final, 2 * Cycles)
      << "flock single-flight lost updates across processes";
}

//===----------------------------------------------------------------------===//
// Retry-flag validation on the drivers (satellite)
//===----------------------------------------------------------------------===//

int runTool(const std::string &Cmd) {
  int St = std::system((Cmd + " >/dev/null 2>&1").c_str());
  return WIFEXITED(St) ? WEXITSTATUS(St) : -1;
}

TEST(ServiceTest, DriverRetryFlagsRejectNonsense) {
  std::string Square = std::string(LIFT_EXAMPLES_DIR) + "/square.lift";
  std::string Liftc = LIFTC_BIN;
  std::string Tune = LIFT_TUNE_BIN;

  // liftc: usage errors exit 1 (diagnostics), never 2 (internal).
  EXPECT_EQ(runTool(Liftc + " " + Square + " --retry-attempts 0"), 1);
  EXPECT_EQ(runTool(Liftc + " " + Square + " --retry-attempts abc"), 1);
  EXPECT_EQ(runTool(Liftc + " " + Square + " --retry-attempts -3"), 1);
  EXPECT_EQ(runTool(Liftc + " " + Square + " --retry-base-us junk"), 1);
  EXPECT_EQ(runTool(Liftc + " " + Square + " --retry-base-us 99999999999"),
            1);
  // Valid values are accepted and the compile still succeeds.
  EXPECT_EQ(runTool(Liftc + " " + Square +
                    " --retry-attempts 3 --retry-base-us 100"),
            0);

  // lift-tune follows its own usage-error convention (exit 2).
  EXPECT_EQ(runTool(Tune + " --retry-attempts 0"), 2);
  EXPECT_EQ(runTool(Tune + " --retry-attempts=abc"), 2);
  EXPECT_EQ(runTool(Tune + " --retry-base-us=-1"), 2);

  // liftc --remote refuses process-local fault flags.
  EXPECT_EQ(runTool(Liftc + " " + Square +
                    " --remote=/nonexistent.sock --count-faults"),
            1);
}

} // namespace
