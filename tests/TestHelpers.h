//===- TestHelpers.h - Shared helpers for lift-cpp tests --------*- C++ -*-===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//

#ifndef LIFT_TESTS_TESTHELPERS_H
#define LIFT_TESTS_TESTHELPERS_H

#include "codegen/Compiler.h"
#include "ir/DSL.h"
#include "ir/Prelude.h"
#include "ocl/Runtime.h"

#include <cmath>
#include <map>
#include <string>
#include <vector>

namespace lift {
namespace test {

/// The three optimization configurations of Figure 8.
enum class OptLevel { None, BarrierCfs, Full };

inline const char *optLevelName(OptLevel L) {
  switch (L) {
  case OptLevel::None:
    return "None";
  case OptLevel::BarrierCfs:
    return "BE+CFS";
  case OptLevel::Full:
    return "BE+CFS+AAS";
  }
  return "?";
}

inline codegen::CompilerOptions
optionsFor(OptLevel L, std::array<int64_t, 3> Global,
           std::array<int64_t, 3> Local) {
  codegen::CompilerOptions O;
  O.GlobalSize = Global;
  O.LocalSize = Local;
  switch (L) {
  case OptLevel::None:
    O.BarrierElimination = false;
    O.ControlFlowSimplification = false;
    O.ArrayAccessSimplification = false;
    break;
  case OptLevel::BarrierCfs:
    O.ArrayAccessSimplification = false;
    break;
  case OptLevel::Full:
    break;
  }
  return O;
}

struct RunResult {
  std::vector<float> Out;
  ocl::CostReport Cost;
  std::string Source;
};

/// Compiles and runs a program whose inputs are float buffers, producing a
/// float output buffer of \p OutCount elements.
inline RunResult runFloatProgram(const ir::LambdaPtr &Prog,
                                 const std::vector<std::vector<float>> &Ins,
                                 size_t OutCount,
                                 const std::map<std::string, int64_t> &Sizes,
                                 const codegen::CompilerOptions &Opts) {
  codegen::CompiledKernel K = codegen::compile(Prog, Opts);
  std::vector<ocl::Buffer> Bufs;
  Bufs.reserve(Ins.size() + 1);
  for (const auto &In : Ins)
    Bufs.push_back(ocl::Buffer::ofFloats(In));
  Bufs.push_back(ocl::Buffer::zeros(OutCount));
  std::vector<ocl::Buffer *> Ptrs;
  for (auto &B : Bufs)
    Ptrs.push_back(&B);
  RunResult R;
  R.Cost = ocl::launch(K, Ptrs, Sizes, ocl::LaunchConfig::fromOptions(Opts));
  R.Out = Bufs.back().toFloats();
  R.Source = K.Source;
  return R;
}

inline double maxAbsError(const std::vector<float> &A,
                          const std::vector<float> &B) {
  double M = 0;
  size_t N = std::min(A.size(), B.size());
  for (size_t I = 0; I != N; ++I)
    M = std::fmax(M, std::fabs(static_cast<double>(A[I]) -
                               static_cast<double>(B[I])));
  if (A.size() != B.size())
    return 1e30;
  return M;
}

/// Deterministic pseudo-random floats in [-1, 1].
inline std::vector<float> randomFloats(size_t N, uint64_t Seed) {
  std::vector<float> R(N);
  uint64_t S = Seed * 6364136223846793005ULL + 1442695040888963407ULL;
  for (size_t I = 0; I != N; ++I) {
    S ^= S << 13;
    S ^= S >> 7;
    S ^= S << 17;
    R[I] = static_cast<float>(static_cast<int64_t>(S % 2000) - 1000) / 1000.f;
  }
  return R;
}

} // namespace test
} // namespace lift

#endif // LIFT_TESTS_TESTHELPERS_H
