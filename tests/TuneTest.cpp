//===- TuneTest.cpp - Auto-tuner determinism, cache and safety ------------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pins the contracts of the src/tune/ subsystem: the search result is a
/// pure function of (program, config) — bit-identical across evaluation
/// thread counts and invocations for a fixed --tune-seed; a warm cache
/// answers without executing a single candidate; every accepted candidate
/// passed the verifier and executed bit-identically to the reference; and
/// the returned best lowering is never worse than the default one under
/// the simulated cost model.
///
//===----------------------------------------------------------------------===//

#include "ir/DSL.h"
#include "ir/Prelude.h"
#include "tune/Cache.h"
#include "tune/Tuner.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

using namespace lift;
using namespace lift::ir;
using namespace lift::ir::dsl;

namespace {

/// A deliberately small workload (map(square) over [float]32) so the full
/// exhaustive search stays fast enough for the default test tier.
tune::Workload tinyWorkload() {
  tune::Workload W;
  W.Name = "tune-test-tiny";
  ParamPtr X = param("x", arrayOf(float32(), arith::cst(32)));
  W.Program =
      lambda({X}, pipe(ExprPtr(X), map(prelude::squareFun())));
  std::vector<float> In(32);
  for (size_t I = 0; I != In.size(); ++I)
    In[I] = static_cast<float>(I % 13) * 0.25f - 1.f;
  W.Inputs = {In};
  W.OutCount = 32;
  W.BaseGlobal = {32, 1, 1};
  W.BaseLocal = {8, 1, 1};
  W.OuterN = 32;
  return W;
}

/// Everything that must be invariant between two runs.
void expectSameResult(const tune::TuneResult &A, const tune::TuneResult &B,
                      const std::string &What) {
  EXPECT_EQ(A.DefaultCost, B.DefaultCost) << What;
  ASSERT_EQ(A.HasBest, B.HasBest) << What;
  if (A.HasBest) {
    EXPECT_EQ(A.Best.key(), B.Best.key()) << What;
    EXPECT_EQ(A.BestCost, B.BestCost) << What;
  }
  EXPECT_EQ(A.CandidatesEnumerated, B.CandidatesEnumerated) << What;
  EXPECT_EQ(A.CandidatesEvaluated, B.CandidatesEvaluated) << What;
  ASSERT_EQ(A.Trajectory.size(), B.Trajectory.size()) << What;
  for (size_t I = 0; I != A.Trajectory.size(); ++I) {
    EXPECT_EQ(A.Trajectory[I].D.key(), B.Trajectory[I].D.key()) << What;
    EXPECT_EQ(A.Trajectory[I].Status, B.Trajectory[I].Status) << What;
    EXPECT_EQ(A.Trajectory[I].Cost, B.Trajectory[I].Cost) << What;
  }
}

TEST(TuneTest, ExhaustiveSearchIsDeterministicAcrossThreadCounts) {
  tune::Workload W = tinyWorkload();
  tune::TuneConfig C;
  C.UseCache = false;

  std::vector<tune::TuneResult> Runs;
  for (int Threads : {1, 2, 8}) {
    C.Threads = Threads;
    DiagnosticEngine Engine;
    Expected<tune::TuneResult> R = tune::tuneWorkload(W, C, Engine);
    ASSERT_TRUE(bool(R)) << Engine.render();
    Runs.push_back(std::move(*R));
  }
  expectSameResult(Runs[0], Runs[1], "1 vs 2 evaluation threads");
  expectSameResult(Runs[0], Runs[2], "1 vs 8 evaluation threads");
}

TEST(TuneTest, SampledSearchIsDeterministicAndBounded) {
  tune::Workload W = tinyWorkload();
  tune::TuneConfig C;
  C.UseCache = false;
  C.Seed = 42;
  C.ExhaustiveThreshold = 4; // force the sampling + greedy path
  C.MaxEvaluations = 8;
  C.BeamWidth = 2;

  std::vector<tune::TuneResult> Runs;
  for (int Threads : {1, 4}) {
    C.Threads = Threads;
    DiagnosticEngine Engine;
    Expected<tune::TuneResult> R = tune::tuneWorkload(W, C, Engine);
    ASSERT_TRUE(bool(R)) << Engine.render();
    EXPECT_LE(R->CandidatesEvaluated, C.MaxEvaluations + C.BeamWidth);
    EXPECT_LT(R->CandidatesEvaluated, R->CandidatesEnumerated)
        << "sampled search evaluated the whole space";
    EXPECT_TRUE(R->HasBest);
    Runs.push_back(std::move(*R));
  }
  expectSameResult(Runs[0], Runs[1], "sampled search, 1 vs 4 threads");

  // A different seed is allowed to explore differently (same best is
  // fine, the trajectory need not match) — but it must still be
  // self-consistent, i.e. deterministic for that seed.
  C.Seed = 7;
  C.Threads = 1;
  DiagnosticEngine E1, E2;
  Expected<tune::TuneResult> A = tune::tuneWorkload(W, C, E1);
  C.Threads = 4;
  Expected<tune::TuneResult> B = tune::tuneWorkload(W, C, E2);
  ASSERT_TRUE(bool(A) && bool(B));
  expectSameResult(*A, *B, "sampled search seed 7, 1 vs 4 threads");
}

TEST(TuneTest, WarmCacheAnswersWithoutEvaluating) {
  namespace fs = std::filesystem;
  fs::path Dir = fs::temp_directory_path() / "lift-tune-cache-test";
  fs::remove_all(Dir);

  tune::Workload W = tinyWorkload();
  tune::TuneConfig C;
  C.CacheDir = Dir.string();

  DiagnosticEngine E1;
  Expected<tune::TuneResult> Cold = tune::tuneWorkload(W, C, E1);
  ASSERT_TRUE(bool(Cold)) << E1.render();
  EXPECT_FALSE(Cold->CacheHit);
  EXPECT_GT(Cold->CandidatesEvaluated, 0u);
  EXPECT_TRUE(fs::exists(tune::tuneCachePath(W, C)));

  DiagnosticEngine E2;
  Expected<tune::TuneResult> Warm = tune::tuneWorkload(W, C, E2);
  ASSERT_TRUE(bool(Warm)) << E2.render();
  EXPECT_TRUE(Warm->CacheHit);
  EXPECT_EQ(Warm->CandidatesEvaluated, 0u);
  ASSERT_EQ(Warm->HasBest, Cold->HasBest);
  EXPECT_EQ(Warm->Best.key(), Cold->Best.key());
  EXPECT_EQ(Warm->BestCost, Cold->BestCost);
  EXPECT_EQ(Warm->DefaultCost, Cold->DefaultCost);

  // A different search configuration is a different cache key: no false
  // hits.
  tune::TuneConfig C2 = C;
  C2.ChunkPool = {4};
  DiagnosticEngine E3;
  Expected<tune::TuneResult> Other = tune::tuneWorkload(W, C2, E3);
  ASSERT_TRUE(bool(Other)) << E3.render();
  EXPECT_FALSE(Other->CacheHit);

  fs::remove_all(Dir);
}

TEST(TuneTest, BestIsNeverWorseThanDefaultAndAllAcceptedAreSound) {
  tune::Workload W = tinyWorkload();
  tune::TuneConfig C;
  C.UseCache = false;

  DiagnosticEngine Engine;
  Expected<tune::TuneResult> R = tune::tuneWorkload(W, C, Engine);
  ASSERT_TRUE(bool(R)) << Engine.render();
  ASSERT_TRUE(R->HasBest);
  EXPECT_LE(R->BestCost, R->DefaultCost);

  unsigned Ok = 0;
  for (const tune::CandidateOutcome &O : R->Trajectory) {
    // Any mismatch would mean an unsound candidate slipped past the
    // verifier *and* executed: the tuner must have rejected it instead.
    EXPECT_NE(O.Status, tune::CandidateStatus::RejectedMismatch)
        << O.D.key() << ": " << O.Detail;
    if (O.Status == tune::CandidateStatus::Ok) {
      ++Ok;
      EXPECT_GT(O.Cost, 0.0) << O.D.key();
    }
  }
  EXPECT_GE(Ok, 2u) << "search space degenerated to a single candidate";

  // The default derivation itself must be in the space and accepted —
  // that is what anchors the "never worse than default" guarantee.
  std::string DefaultKey = tune::defaultDerivation(W).key();
  bool SawDefault = false;
  for (const tune::CandidateOutcome &O : R->Trajectory)
    if (O.D.key() == DefaultKey) {
      SawDefault = true;
      EXPECT_EQ(O.Status, tune::CandidateStatus::Ok) << O.Detail;
    }
  EXPECT_TRUE(SawDefault);
}

TEST(TuneTest, CachedBestWrgChunkReportsTheCheapestWorkGroupCandidate) {
  namespace fs = std::filesystem;
  fs::path Dir = fs::temp_directory_path() / "lift-tune-wrg-test";
  fs::remove_all(Dir);

  tune::Workload W = tinyWorkload();
  tune::TuneConfig C;
  C.CacheDir = Dir.string();

  // Cold cache: no answer, callers fall back to their constant.
  EXPECT_FALSE(tune::cachedBestWrgChunk(W, C).has_value());

  DiagnosticEngine Engine;
  Expected<tune::TuneResult> R = tune::tuneWorkload(W, C, Engine);
  ASSERT_TRUE(bool(R)) << Engine.render();

  double CheapestWrg = 0;
  int64_t WantChunk = 0;
  for (const tune::CandidateOutcome &O : R->Trajectory)
    if (O.Status == tune::CandidateStatus::Ok &&
        O.D.Strategy == tune::MapStrategy::WrgLcl &&
        (CheapestWrg == 0 || O.Cost < CheapestWrg)) {
      CheapestWrg = O.Cost;
      WantChunk = O.D.Chunk;
    }
  std::optional<int64_t> Got = tune::cachedBestWrgChunk(W, C);
  if (CheapestWrg == 0) {
    EXPECT_FALSE(Got.has_value());
  } else {
    ASSERT_TRUE(Got.has_value());
    EXPECT_EQ(*Got, WantChunk);
  }

  fs::remove_all(Dir);
}

} // namespace
