//===- TypesTest.cpp - Tests for the Lift type system ------------------------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//

#include "ir/DSL.h"
#include "ir/Prelude.h"
#include "ir/TypeInference.h"
#include "support/Diagnostics.h"
#include "arith/Bounds.h"
#include "support/Casting.h"

#include <gtest/gtest.h>

using namespace lift;
using namespace lift::ir;
using namespace lift::ir::dsl;

namespace {

class TypesTest : public ::testing::Test {
protected:
  std::shared_ptr<const arith::VarNode> N = arith::sizeVar("N");
  std::shared_ptr<const arith::VarNode> M = arith::sizeVar("M");
};

TEST_F(TypesTest, Factories) {
  EXPECT_TRUE(typeEquals(float32(), float32()));
  EXPECT_FALSE(typeEquals(float32(), int32()));
  EXPECT_TRUE(typeEquals(vectorOf(ScalarKind::Float, 4),
                         vectorOf(ScalarKind::Float, 4)));
  EXPECT_FALSE(typeEquals(vectorOf(ScalarKind::Float, 4),
                          vectorOf(ScalarKind::Float, 2)));
  EXPECT_TRUE(typeEquals(tupleOf({float32(), int32()}),
                         tupleOf({float32(), int32()})));
  EXPECT_FALSE(typeEquals(tupleOf({float32(), int32()}),
                          tupleOf({int32(), float32()})));
}

TEST_F(TypesTest, ArrayEqualityUsesProvableLengthEquality) {
  TypePtr A = arrayOf(float32(), arith::add(N, N));
  TypePtr B = arrayOf(float32(), arith::mul(arith::cst(2), N));
  EXPECT_TRUE(typeEquals(A, B));
  EXPECT_FALSE(typeEquals(A, arrayOf(float32(), N)));
}

TEST_F(TypesTest, Printing) {
  EXPECT_EQ(typeToString(float32()), "float");
  EXPECT_EQ(typeToString(vectorOf(ScalarKind::Float, 4)), "float4");
  EXPECT_EQ(typeToString(arrayOf(float32(), N)), "[float]N");
  EXPECT_EQ(typeToString(array2D(float32(), N, M)), "[[float]M]N");
  EXPECT_EQ(typeToString(tupleOf({float32(), int32()})), "(float, int)");
}

TEST_F(TypesTest, SizeInBytes) {
  EXPECT_TRUE(arith::isConstant(sizeInBytes(float32()), 4));
  EXPECT_TRUE(
      arith::isConstant(sizeInBytes(vectorOf(ScalarKind::Float, 4)), 16));
  EXPECT_TRUE(
      arith::isConstant(sizeInBytes(tupleOf({float32(), int32()})), 8));
  // [float]N -> 4N bytes.
  EXPECT_TRUE(arith::provablyEqual(sizeInBytes(arrayOf(float32(), N)),
                                   arith::mul(arith::cst(4), N)));
}

TEST_F(TypesTest, ElementCountAndBase) {
  TypePtr T = array2D(float32(), N, M);
  EXPECT_TRUE(arith::provablyEqual(elementCount(T), arith::mul(N, M)));
  EXPECT_TRUE(typeEquals(baseElementType(T), float32()));
}

//===----------------------------------------------------------------------===//
// Type inference per pattern
//===----------------------------------------------------------------------===//

class InferenceTest : public TypesTest {};

TEST_F(InferenceTest, MapPreservesLength) {
  ParamPtr X = param("x", arrayOf(float32(), N));
  LambdaPtr P = lambda({X}, pipe(ExprPtr(X), mapGlb(prelude::squareFun())));
  TypePtr R = inferProgramTypes(P);
  EXPECT_TRUE(typeEquals(R, arrayOf(float32(), N)));
}

TEST_F(InferenceTest, SplitJoin) {
  ParamPtr X = param("x", arrayOf(float32(), N));
  LambdaPtr P = lambda({X}, pipe(ExprPtr(X), split(8)));
  TypePtr R = inferProgramTypes(P);
  EXPECT_TRUE(typeEquals(
      R, arrayOf(arrayOf(float32(), arith::cst(8)),
                 arith::intDiv(N, arith::cst(8)))));

  // split/join round-trips exactly for provably divisible lengths.
  ParamPtr Y = param("y", arrayOf(float32(), arith::cst(64)));
  LambdaPtr P2 = lambda({Y}, pipe(ExprPtr(Y), split(8), join()));
  EXPECT_TRUE(typeEquals(inferProgramTypes(P2),
                         arrayOf(float32(), arith::cst(64))));
}

TEST_F(InferenceTest, ZipProducesTuples) {
  ParamPtr X = param("x", arrayOf(float32(), N));
  ParamPtr Y = param("y", arrayOf(int32(), N));
  LambdaPtr P = lambda({X, Y}, call(zip(), {X, Y}));
  TypePtr R = inferProgramTypes(P);
  EXPECT_TRUE(typeEquals(R, arrayOf(tupleOf({float32(), int32()}), N)));
}

TEST_F(InferenceTest, ReduceYieldsSingletonArray) {
  ParamPtr X = param("x", arrayOf(float32(), N));
  LambdaPtr P = lambda({X}, call(reduceSeq(prelude::addFun()),
                                 {litFloat(0.0f), X}));
  TypePtr R = inferProgramTypes(P);
  EXPECT_TRUE(typeEquals(R, arrayOf(float32(), arith::cst(1))));
}

TEST_F(InferenceTest, IterateAppliesLengthChange) {
  ParamPtr X = param("x", arrayOf(float32(), arith::cst(64)));
  // Each iteration halves: split(2) -> map(reduce) -> join.
  LambdaPtr Halve = fun([&](ExprPtr A) {
    return pipe(A, split(2), mapSeq(fun([&](ExprPtr Two) {
                  return call(reduceSeq(prelude::addFun()),
                              {litFloat(0.0f), Two});
                })),
                join());
  });
  LambdaPtr P = lambda({X}, pipe(ExprPtr(X), iterate(6, Halve)));
  TypePtr R = inferProgramTypes(P);
  EXPECT_TRUE(typeEquals(R, arrayOf(float32(), arith::cst(1))));
}

TEST_F(InferenceTest, SlideWindows) {
  ParamPtr X = param("x", arrayOf(float32(), N));
  LambdaPtr P = lambda({X}, pipe(ExprPtr(X), slide(3, 1)));
  TypePtr R = inferProgramTypes(P);
  const auto *Arr = dyn_cast<ArrayType>(R.get());
  ASSERT_NE(Arr, nullptr);
  // (N - 3) / 1 + 1 = N - 2 windows of 3.
  EXPECT_TRUE(arith::provablyEqual(Arr->getSize(),
                                   arith::sub(N, arith::cst(2))));
  EXPECT_TRUE(typeEquals(Arr->getElementType(),
                         arrayOf(float32(), arith::cst(3))));
}

TEST_F(InferenceTest, TransposeSwapsDims) {
  ParamPtr X = param("x", array2D(float32(), N, M));
  LambdaPtr P = lambda({X}, pipe(ExprPtr(X), transpose()));
  EXPECT_TRUE(typeEquals(inferProgramTypes(P), array2D(float32(), M, N)));
}

TEST_F(InferenceTest, AsVectorAsScalar) {
  ParamPtr X = param("x", arrayOf(float32(), N));
  LambdaPtr P = lambda({X}, pipe(ExprPtr(X), asVector(4)));
  TypePtr R = inferProgramTypes(P);
  EXPECT_TRUE(typeEquals(R, arrayOf(vectorOf(ScalarKind::Float, 4),
                                    arith::intDiv(N, arith::cst(4)))));

  // Round trip restores the length when it is provably divisible.
  ParamPtr Y = param("y", arrayOf(float32(), arith::cst(64)));
  LambdaPtr P2 = lambda({Y}, pipe(ExprPtr(Y), asVector(4), asScalar()));
  EXPECT_TRUE(typeEquals(inferProgramTypes(P2),
                         arrayOf(float32(), arith::cst(64))));
}

TEST_F(InferenceTest, GatherIndicesTakesIndexLength) {
  ParamPtr I = param("i", arrayOf(int32(), M));
  ParamPtr X = param("x", arrayOf(float32(), N));
  LambdaPtr P = lambda({I, X}, call(gatherIndices(), {I, X}));
  EXPECT_TRUE(typeEquals(inferProgramTypes(P), arrayOf(float32(), M)));
}

TEST_F(InferenceTest, GetProjectsTupleComponent) {
  ParamPtr X = param("x", arrayOf(float32(), N));
  ParamPtr Y = param("y", arrayOf(int32(), N));
  LambdaPtr P = lambda(
      {X, Y}, pipe(call(zip(), {X, Y}),
                   mapSeq(fun([&](ExprPtr T) { return call(get(1), {T}); }))));
  EXPECT_TRUE(typeEquals(inferProgramTypes(P), arrayOf(int32(), N)));
}


/// Expects \p Fn to raise a structured diagnostic whose message contains
/// \p Substr and whose code is \p Code. Type errors are recoverable
/// throws, not aborts (see support/Diagnostics.h).
template <typename Fn>
static void expectTypeDiag(Fn &&F, lift::DiagCode Code,
                           const std::string &Substr) {
  try {
    F();
    FAIL() << "expected a diagnostic containing '" << Substr << "'";
  } catch (const lift::DiagnosticError &E) {
    EXPECT_EQ(E.Diag.Code, Code) << E.Diag.render();
    EXPECT_NE(E.Diag.Message.find(Substr), std::string::npos)
        << E.Diag.render();
  }
}

TEST_F(InferenceTest, UserFunChecksParameterTypes) {
  ParamPtr X = param("x", arrayOf(int32(), N)); // wrong: sq wants float
  LambdaPtr P = lambda({X}, pipe(ExprPtr(X), mapSeq(prelude::squareFun())));
  expectTypeDiag([&] { inferProgramTypes(P); }, lift::DiagCode::TypeMismatch,
                 "parameter 0 expects float");
}

TEST_F(InferenceTest, ZipRequiresEqualLengths) {
  ParamPtr X = param("x", arrayOf(float32(), N));
  ParamPtr Y = param("y", arrayOf(float32(), M));
  LambdaPtr P = lambda({X, Y}, call(zip(), {X, Y}));
  expectTypeDiag([&] { inferProgramTypes(P); },
                 lift::DiagCode::TypeUnequalLengths, "equal array lengths");
}

TEST_F(InferenceTest, MapRequiresArray) {
  ParamPtr X = param("x", float32());
  LambdaPtr P = lambda({X}, pipe(ExprPtr(X), mapSeq(prelude::squareFun())));
  expectTypeDiag([&] { inferProgramTypes(P); },
                 lift::DiagCode::TypeExpectsArray, "expects an array");
}

TEST_F(InferenceTest, ReduceOperatorMustPreserveAccumulator) {
  ParamPtr X = param("x", arrayOf(float32(), N));
  // Operator returning an int instead of the float accumulator.
  FunDeclPtr Bad = userFun("bad", {"a", "b"}, {float32(), float32()},
                           int32(), "return 0;");
  LambdaPtr P = lambda({X}, call(reduceSeq(Bad), {litFloat(0.0f), X}));
  expectTypeDiag([&] { inferProgramTypes(P); }, lift::DiagCode::TypeMismatch,
                 "accumulator type");
}

} // namespace
