//===- UmbrellaTest.cpp - lift/Lift.h smoke test -------------------------------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compiles against only the umbrella header and runs the README's
/// end-to-end snippet, guaranteeing the public API surface stays
/// self-contained.
///
//===----------------------------------------------------------------------===//

#include "lift/Lift.h"

#include <gtest/gtest.h>

namespace {

TEST(UmbrellaTest, ReadmeSnippet) {
  using namespace lift;
  using namespace lift::ir;
  using namespace lift::ir::dsl;

  auto N = arith::sizeVar("N");
  ParamPtr X = param("x", arrayOf(float32(), N));
  FunDeclPtr Square = userFun("sq", {"x"}, {float32()}, float32(),
                              "return x * x;");
  LambdaPtr Prog = lambda({X}, pipe(ExprPtr(X), mapGlb(Square)));

  codegen::CompilerOptions Opts;
  Opts.GlobalSize = {1024, 1, 1};
  Opts.LocalSize = {64, 1, 1};
  codegen::CompiledKernel K = codegen::compile(Prog, Opts);
  EXPECT_FALSE(K.Source.empty());

  std::vector<float> Data(1024);
  for (size_t I = 0; I != Data.size(); ++I)
    Data[I] = static_cast<float>(I % 13) - 6.f;
  ocl::Buffer In = ocl::Buffer::ofFloats(Data);
  ocl::Buffer Out = ocl::Buffer::zeros(1024);
  ocl::CostReport Cost = ocl::launch(K, {&In, &Out}, {{"N", 1024}},
                                     ocl::LaunchConfig::fromOptions(Opts));
  EXPECT_GT(Cost.cost(), 0.0);

  auto R = Out.toFloats();
  for (size_t I = 0; I != R.size(); ++I)
    ASSERT_FLOAT_EQ(R[I], Data[I] * Data[I]);
}

} // namespace
