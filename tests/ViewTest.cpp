//===- ViewTest.cpp - Tests for view construction and consumption -------------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests the array-stack / tuple-stack view consumption algorithm of
/// Figure 5, including the worked dot product example from the paper.
///
//===----------------------------------------------------------------------===//

#include "arith/Printer.h"
#include "view/View.h"

#include <gtest/gtest.h>

using namespace lift;
using namespace lift::arith;
using namespace lift::view;

namespace {

class ViewTest : public ::testing::Test {
protected:
  StoragePtr storage(const std::string &Name) {
    auto S = std::make_shared<Storage>();
    S->Id = NextId++;
    S->Var = std::make_shared<c::CVar>(Name, c::floatTy());
    S->ElemType = c::floatTy();
    S->NumElements = cst(1024);
    return S;
  }

  View memory(const StoragePtr &S, std::vector<Expr> Dims) {
    return std::make_shared<MemoryView>(S, std::move(Dims));
  }

  unsigned NextId = 1;
};

TEST_F(ViewTest, Figure5DotProductAccess) {
  // The worked example of Figure 5: zip(x, y), split 128, access by
  // wg_id, split 2, access by l_id, access by i, project component 0.
  auto X = storage("x");
  auto Y = storage("y");
  auto WgId = var("wg_id", cst(0), cst(63));
  auto LId = var("l_id", cst(0), cst(63));
  auto I = var("i", cst(0), cst(1));

  View Zip = std::make_shared<ZipView>(std::vector<View>{
      memory(X, {cst(8192)}), memory(Y, {cst(8192)})});
  View V = std::make_shared<SplitView>(cst(128), Zip);
  V = std::make_shared<ArrayAccessView>(Expr(WgId), V);
  V = std::make_shared<SplitView>(cst(2), V);
  V = std::make_shared<ArrayAccessView>(Expr(LId), V);
  V = std::make_shared<ArrayAccessView>(Expr(I), V);
  V = std::make_shared<TupleAccessView>(0, V);

  Access A = consumeView(V);
  EXPECT_EQ(A.Store->Id, X->Id);
  // x[(2 * l_id) + (128 * wg_id) + i]
  EXPECT_EQ(toString(A.Index), "i + 2 * l_id + 128 * wg_id");

  // Component 1 accesses y at the same index.
  View V1 = std::make_shared<TupleAccessView>(
      1, std::make_shared<ArrayAccessView>(
             Expr(I), std::make_shared<ArrayAccessView>(
                          Expr(LId), std::make_shared<SplitView>(
                                         cst(2),
                                         std::make_shared<ArrayAccessView>(
                                             Expr(WgId),
                                             std::make_shared<SplitView>(
                                                 cst(128), Zip))))));
  Access A1 = consumeView(V1);
  EXPECT_EQ(A1.Store->Id, Y->Id);
  EXPECT_EQ(toString(A1.Index), "i + 2 * l_id + 128 * wg_id");
}

TEST_F(ViewTest, JoinDelinearizes) {
  auto X = storage("x");
  auto K = var("k", cst(0), cst(63));
  // join of [[f]8]8 accessed at k reads x[k] (same flat layout).
  View V = std::make_shared<JoinView>(cst(8), memory(X, {cst(8), cst(8)}));
  V = std::make_shared<ArrayAccessView>(Expr(K), V);
  Access A = consumeView(V);
  EXPECT_EQ(toString(A.Index), "k");
}

TEST_F(ViewTest, GatherRemapsOuterIndex) {
  auto X = storage("x");
  auto I = var("i", cst(0), cst(9));
  View V = memory(X, {cst(10)});
  V = std::make_shared<GatherView>(
      [](const Expr &Idx) { return sub(cst(9), Idx); }, V);
  V = std::make_shared<ArrayAccessView>(Expr(I), V);
  Access A = consumeView(V);
  EXPECT_EQ(toString(A.Index), "9 + (-1) * i");
}

TEST_F(ViewTest, SlideWindowsOverlap) {
  auto X = storage("x");
  auto W = var("w", cst(0), cst(13));
  auto J = var("j", cst(0), cst(2));
  View V = std::make_shared<SlideView>(cst(1), memory(X, {cst(16)}));
  V = std::make_shared<ArrayAccessView>(Expr(W), V);
  V = std::make_shared<ArrayAccessView>(Expr(J), V);
  Access A = consumeView(V);
  EXPECT_EQ(toString(A.Index), "w + j");
}

TEST_F(ViewTest, TransposeSwapsIndices) {
  auto X = storage("x");
  auto I = var("i", cst(0), cst(7));
  auto J = var("j", cst(0), cst(3));
  // x: [[f]8]4 (4 rows, 8 cols); transpose view accessed [i][j] reads
  // x[j][i] = flat j*8 + i.
  View V = std::make_shared<TransposeView>(memory(X, {cst(4), cst(8)}));
  V = std::make_shared<ArrayAccessView>(Expr(I), V);
  V = std::make_shared<ArrayAccessView>(Expr(J), V);
  Access A = consumeView(V);
  EXPECT_EQ(toString(A.Index), "i + 8 * j");
}

TEST_F(ViewTest, MemoryLinearizesMultipleDims) {
  auto X = storage("x");
  auto I = var("i");
  auto J = var("j");
  auto K = var("k");
  View V = memory(X, {cst(4), cst(8), cst(2)});
  V = std::make_shared<ArrayAccessView>(Expr(I), V);
  V = std::make_shared<ArrayAccessView>(Expr(J), V);
  V = std::make_shared<ArrayAccessView>(Expr(K), V);
  Access A = consumeView(V);
  // ((i * 8) + j) * 2 + k
  EXPECT_EQ(toString(A.Index), "k + 2 * j + 16 * i");
}

TEST_F(ViewTest, ScalarStorageIgnoresIndices) {
  auto S = storage("acc");
  S->NumElements = nullptr; // scalar register
  View V = std::make_shared<ArrayAccessView>(
      cst(0), memory(S, std::vector<Expr>{}));
  Access A = consumeView(V);
  EXPECT_EQ(A.Index, nullptr);
  EXPECT_EQ(A.Store->Id, S->Id);
}

TEST_F(ViewTest, StructComponentsSurviveToMemory) {
  auto S = storage("pairs");
  View V = memory(S, {cst(16)});
  auto I = var("i");
  V = std::make_shared<ArrayAccessView>(Expr(I), V);
  V = std::make_shared<TupleAccessView>(1, V);
  Access A = consumeView(V);
  ASSERT_EQ(A.Components.size(), 1u);
  EXPECT_EQ(A.Components[0], 1u);
}

TEST_F(ViewTest, MapPureViewTransformsInnerIndices) {
  // map(transpose) over [[ [f]2 ]3 ]4 accessed [o][i][j] reads the
  // underlying [o][j][i].
  auto X = storage("x");
  auto O = var("o");
  auto I = var("i");
  auto J = var("j");
  View Hole = std::make_shared<HoleView>();
  View Inner = std::make_shared<TransposeView>(Hole);
  View V = std::make_shared<MapPureView>(
      Inner, memory(X, {cst(4), cst(3), cst(2)}));
  V = std::make_shared<ArrayAccessView>(Expr(O), V);
  V = std::make_shared<ArrayAccessView>(Expr(I), V);
  V = std::make_shared<ArrayAccessView>(Expr(J), V);
  Access A = consumeView(V);
  // o*6 + j*2 + i
  EXPECT_EQ(toString(A.Index), "i + 2 * j + 6 * o");
}

TEST_F(ViewTest, GatherIndicesProducesLookup) {
  auto Data = storage("data");
  auto Table = storage("idx");
  Table->ElemType = c::intTy();
  auto I = var("i");
  View IdxView = memory(Table, {cst(16)});
  View V = std::make_shared<GatherIndicesView>(IdxView, Table,
                                               memory(Data, {cst(64)}));
  V = std::make_shared<ArrayAccessView>(Expr(I), V);
  Access A = consumeView(V);
  EXPECT_EQ(A.Store->Id, Data->Id);
  EXPECT_EQ(toString(A.Index), "idx[i]");
}

TEST_F(ViewTest, UnsimplifiedConsumptionKeepsRawIndices) {
  SimplifyGuard Guard(false);
  auto X = storage("x");
  auto K = var("k", cst(0), cst(63));
  View V = std::make_shared<JoinView>(cst(8), memory(X, {cst(8), cst(8)}));
  V = std::make_shared<ArrayAccessView>(Expr(K), V);
  Access A = consumeView(V);
  // Raw: (k / 8) * 8 + k % 8 — no rule (4) recomposition.
  EXPECT_GT(countDivMod(A.Index), 0u);
}

} // namespace
