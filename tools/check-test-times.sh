#!/usr/bin/env bash
#===- tools/check-test-times.sh - Flag tests nearing their timeout --------===#
#
# Part of the lift-cpp project. MIT licensed.
#
# Scans a ctest log for per-test wall-clock overruns. A test that *hits*
# its timeout already fails the run; this catches the ones sneaking up on
# it — a fuzz tier that quietly got 10x slower keeps passing until the
# day it flakes. Fails when any test exceeded the budget (default 120 s,
# half the 240 s ctest timeout shared by the check-* tiers — fuzz/race,
# rules, resilience, and service all flow through the same log) or when
# ctest recorded a ***Timeout at all.
#
# Usage: tools/check-test-times.sh <ctest-log> [budget-seconds]
#
#===----------------------------------------------------------------------===#
set -euo pipefail

LOG="${1:?usage: check-test-times.sh <ctest-log> [budget-seconds]}"
BUDGET="${2:-120}"

if [[ ! -r "$LOG" ]]; then
  echo "check-test-times.sh: cannot read '$LOG'" >&2
  exit 2
fi

STATUS=0

if grep -q '\*\*\*Timeout' "$LOG"; then
  echo "check-test-times.sh: tests hit their ctest timeout:" >&2
  grep '\*\*\*Timeout' "$LOG" >&2
  STATUS=1
fi

# ctest result lines end in "...... Passed   1.23 sec" (or Failed etc.).
SLOW=$(awk -v budget="$BUDGET" '
  /(Passed|Failed|\*\*\*[A-Za-z]+) +[0-9.]+ sec *$/ {
    secs = $(NF - 1)
    if (secs + 0 > budget + 0)
      print secs "s  " $0
  }' "$LOG")

if [[ -n "$SLOW" ]]; then
  echo "check-test-times.sh: tests exceeded the ${BUDGET}s budget (ctest timeout is close):" >&2
  echo "$SLOW" >&2
  STATUS=1
fi

if [[ "$STATUS" == 0 ]]; then
  echo "check-test-times.sh: all tests within the ${BUDGET}s budget."
fi
exit "$STATUS"
