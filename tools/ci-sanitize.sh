#!/usr/bin/env bash
#===- tools/ci-sanitize.sh - Sanitized dynamic-checking tier --------------===#
#
# Part of the lift-cpp project. MIT licensed.
#
# Builds the tree under -fsanitize=address,undefined and runs the
# dynamic-checking test tier: race/divergence detection, differential
# arithmetic fuzzing, guarded-memory tests, and the crash-resilience
# fuzzer (>12k mutated IL inputs + >1k random well-typed programs; see
# docs/DIAGNOSTICS.md). Any abort, sanitizer finding, or missing
# diagnostic fails the run.
#
# Usage: tools/ci-sanitize.sh [build-dir]   (default: build-asan)
#
#===----------------------------------------------------------------------===#
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-asan}"

cmake -B "$BUILD_DIR" -S . -DLIFT_SANITIZE=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j "$(nproc)"

# halt_on_error so the first sanitizer finding fails the test that hit it.
export ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1:abort_on_error=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}"

ctest --test-dir "$BUILD_DIR" -L check --output-on-failure -j "$(nproc)"
