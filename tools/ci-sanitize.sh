#!/usr/bin/env bash
#===- tools/ci-sanitize.sh - Sanitized dynamic-checking tier --------------===#
#
# Part of the lift-cpp project. MIT licensed.
#
# Builds the tree under a sanitizer and runs the dynamic-checking test
# tier: race/divergence detection, differential arithmetic fuzzing,
# guarded-memory tests, the parallel-runtime determinism suite, the
# crash-resilience fuzzer (>12k mutated IL inputs + >1k random well-typed
# programs; see docs/DIAGNOSTICS.md), and the resilience tier (mid-exec
# fault sweeps, retry recovery, the graceful-degradation matrix; the
# `check` label filter below regex-matches all check-* tier labels, so
# check-resilience runs sanitized too). Any abort, sanitizer finding, or
# missing diagnostic fails the run.
#
# Usage: tools/ci-sanitize.sh [address|thread] [build-dir]
#   address (default): -fsanitize=address,undefined, build dir build-asan
#   thread:            -fsanitize=thread, build dir build-tsan — validates
#                      the worker pool of the simulated runtime; set
#                      LIFT_THREADS to force a pool width (CI uses 4).
#
#===----------------------------------------------------------------------===#
set -euo pipefail

cd "$(dirname "$0")/.."

SANITIZER="${1:-address}"
case "$SANITIZER" in
  address) DEFAULT_DIR=build-asan ;;
  thread) DEFAULT_DIR=build-tsan ;;
  *)
    echo "ci-sanitize.sh: unknown sanitizer '$SANITIZER' (want address or thread)" >&2
    exit 2
    ;;
esac
BUILD_DIR="${2:-$DEFAULT_DIR}"

cmake -B "$BUILD_DIR" -S . -DLIFT_SANITIZE="$SANITIZER" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j "$(nproc)"

# halt_on_error so the first sanitizer finding fails the test that hit it.
export ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1:abort_on_error=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}"
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1:abort_on_error=1}"

# Execution-fuzz bounds (docs/RELIABILITY.md): every launch any test makes
# inherits a step budget and a wall-clock deadline, so a fuzzed program
# that loops forever becomes an E0510/E0511 diagnostic instead of a hung
# job. Tests that set explicit limits are unaffected.
export LIFT_MAX_STEPS="${LIFT_MAX_STEPS:-50000000}"
export LIFT_TIMEOUT_MS="${LIFT_TIMEOUT_MS:-30000}"

CTEST_LOG="$BUILD_DIR/ctest-check.log"
ctest --test-dir "$BUILD_DIR" -L check --output-on-failure -j "$(nproc)" \
  | tee "$CTEST_LOG"

# Fail on tests sneaking up on their ctest timeout (see the script).
tools/check-test-times.sh "$CTEST_LOG"
