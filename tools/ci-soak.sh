#!/usr/bin/env bash
#===- tools/ci-soak.sh - Scheduled fault-injection & tuning soak tier -----===#
#
# Part of the lift-cpp project. MIT licensed.
#
# The scheduled (nightly / manually dispatched) soak job. Three stages,
# all bounded so the whole run stays well under an hour:
#
#   1. In-process seeded fault soak: runs the FaultSoak gtest with a much
#      wider seed sweep than the per-commit tier (LIFT_SOAK_SEEDS,
#      default 96). Every seeded run must either validate or fail as a
#      clean Expected<> with an E0513 diagnostic.
#   2. Out-of-process LIFT_FAULT_SEED sweep: drives the liftc CLI over
#      the example programs with probabilistic injection armed from the
#      environment (src/ocl/FaultInject.cpp). liftc's exit-code contract
#      is the oracle: 0 = ran, 1 = clean diagnostics; anything else
#      (internal error, signal) fails the soak.
#   3. Auto-tuner smoke: a bounded lift-tune search on two benchmarks
#      from a cold cache, then again warm — the warm run must answer
#      every workload from the cache (no "miss" in the report).
#   4. Native-backend fault sweep: the same LIFT_FAULT_SEED oracle as
#      stage 2, but with --backend=native so the probabilistic injection
#      also hits the toolchain sites (compile / dlopen / dlsym) and the
#      native launch path. A cold per-seed cache directory keeps the
#      compile site reachable on every seed. Skipped when no system C++
#      compiler is installed.
#   5. Native-objective tuner smoke: a bounded lift-tune search scored
#      by measured fast-mode wall-clock (--objective=native) instead of
#      cost units, under the same ExecLimits as everything else. The
#      run must produce a best lowering (the default derivation is
#      always in the space) and the native-check pass must hold the
#      exact-mode output bit-identical. Skipped without a toolchain.
#   6. Chaos stage: deterministic mid-execution cancellation. For each
#      mid-exec site (6 = barrier, 7 = group dispatch, 8 = step chunk)
#      a --count-faults run discovers how many injection opportunities
#      each example program has, then the first, middle, and last
#      occurrence are tripped with --inject-faults n,k. Barrier and
#      dispatch counts are thread-count-invariant so those trips must
#      surface as a clean exit 1 carrying E0515; step-chunk checkpoints
#      are per-worker, so a parallel run may legitimately finish before
#      the n-th tick (exit 0) — but a crash always fails the soak.
#   7. liftd under seeded service faults: a real daemon per seed with
#      probabilistic injection over the service sites while remote
#      clients hold the exit-code contract; the daemon must drain clean.
#   8. Pipeline graphs under seeded faults: the k-means convergence loop
#      through liftc --graph (docs/PIPELINES.md), every seed bounded by
#      the exported ExecLimits, the exit-code contract as the oracle,
#      alternating the reuse and naive allocators.
#
# Usage: tools/ci-soak.sh [build-dir]   (default build-soak)
#
#===----------------------------------------------------------------------===#
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build-soak}"
SOAK_SEEDS="${LIFT_SOAK_SEEDS:-96}"
SWEEP_SEEDS="${LIFT_SOAK_SWEEP:-32}"

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j "$(nproc)"

# Every launch inherits a step budget and deadline (docs/RELIABILITY.md),
# so injected-fault pathologies surface as diagnostics, not hung jobs.
export LIFT_MAX_STEPS="${LIFT_MAX_STEPS:-50000000}"
export LIFT_TIMEOUT_MS="${LIFT_TIMEOUT_MS:-30000}"

echo "== Stage 1: in-process seeded fault soak ($SOAK_SEEDS seeds) =="
LIFT_SOAK_SEEDS="$SOAK_SEEDS" \
  "$BUILD_DIR/tests/lift_check_tests" --gtest_filter='FaultSoak.*'

echo "== Stage 2: LIFT_FAULT_SEED sweep over the liftc CLI ($SWEEP_SEEDS seeds) =="
for SEED in $(seq 1 "$SWEEP_SEEDS"); do
  for PROG in examples/il/dot.lift examples/il/square.lift; do
    STATUS=0
    LIFT_FAULT_SEED="$SEED" "$BUILD_DIR/tools/liftc" "$PROG" --run \
      --check-memory >/dev/null 2>&1 || STATUS=$?
    # 0 = ran to completion, 1 = rejected with diagnostics (the injected
    # fault surfaced cleanly). 2 is liftc's internal-error code and
    # >= 128 a signal: both mean a fault escaped the Expected<> paths.
    if [ "$STATUS" -ne 0 ] && [ "$STATUS" -ne 1 ]; then
      echo "soak: liftc $PROG crashed under LIFT_FAULT_SEED=$SEED" \
           "(exit $STATUS)" >&2
      exit 1
    fi
  done
done
echo "all $SWEEP_SEEDS seeds exited cleanly"

echo "== Stage 3: bounded auto-tuner smoke (cold, then warm cache) =="
TUNE_CACHE="$BUILD_DIR/soak-tune-cache"
rm -rf "$TUNE_CACHE"
"$BUILD_DIR/tools/lift-tune" nn convolution --max-evals 12 \
  --cache-dir "$TUNE_CACHE"
WARM_LOG="$BUILD_DIR/soak-tune-warm.log"
"$BUILD_DIR/tools/lift-tune" nn convolution --max-evals 12 \
  --cache-dir "$TUNE_CACHE" | tee "$WARM_LOG"
if grep -q "miss" "$WARM_LOG"; then
  echo "soak: warm lift-tune run re-evaluated instead of hitting the cache" >&2
  exit 1
fi

echo "== Stage 4: LIFT_FAULT_SEED sweep over the native backend ($SWEEP_SEEDS seeds) =="
if command -v c++ >/dev/null 2>&1 || command -v g++ >/dev/null 2>&1 || \
   command -v clang++ >/dev/null 2>&1 || [ -n "${LIFT_NATIVE_CXX:-}" ]; then
  NATIVE_CACHE="$BUILD_DIR/soak-native-cache"
  for SEED in $(seq 1 "$SWEEP_SEEDS"); do
    # Cold cache each seed so the injected compile fault stays reachable.
    rm -rf "$NATIVE_CACHE"
    for PROG in examples/il/dot.lift examples/il/square.lift; do
      STATUS=0
      LIFT_FAULT_SEED="$SEED" LIFT_NATIVE_CACHE_DIR="$NATIVE_CACHE" \
        "$BUILD_DIR/tools/liftc" "$PROG" --run --backend=native \
        >/dev/null 2>&1 || STATUS=$?
      if [ "$STATUS" -ne 0 ] && [ "$STATUS" -ne 1 ]; then
        echo "soak: liftc --backend=native $PROG crashed under" \
             "LIFT_FAULT_SEED=$SEED (exit $STATUS)" >&2
        exit 1
      fi
    done
  done
  rm -rf "$NATIVE_CACHE"
  echo "all $SWEEP_SEEDS native seeds exited cleanly"
else
  echo "no system C++ compiler; skipping the native sweep"
fi

echo "== Stage 5: bounded lift-tune search on the native wall-clock objective =="
if command -v c++ >/dev/null 2>&1 || command -v g++ >/dev/null 2>&1 || \
   command -v clang++ >/dev/null 2>&1 || [ -n "${LIFT_NATIVE_CXX:-}" ]; then
  # Candidate wall-clock scoring, still gated on simulator bit-identity
  # per candidate (docs/TUNING.md). Bounded evaluation budget, the
  # launch-wide ExecLimits exported above, a throwaway tune cache (time
  # scores are machine-specific and must not leak into committed runs),
  # and --native-check so the winner's exact-mode output is re-verified
  # bit-identical. lift-tune exits nonzero if any workload finds no
  # lowering at least as good as the default under the objective.
  NATIVE_TUNE_CACHE="$BUILD_DIR/soak-native-tune-cache"
  rm -rf "$NATIVE_TUNE_CACHE"
  LIFT_NATIVE_CACHE_DIR="$BUILD_DIR/soak-native-tune-artifacts" \
    "$BUILD_DIR/tools/lift-tune" nn convolution --objective=native \
    --native-repeats 3 --max-evals 12 --cache-dir "$NATIVE_TUNE_CACHE" \
    --native-check
  rm -rf "$NATIVE_TUNE_CACHE" "$BUILD_DIR/soak-native-tune-artifacts"
else
  echo "no system C++ compiler; skipping the native-objective tuner smoke"
fi

echo "== Stage 6: chaos stage — mid-execution cancellation at first/middle/last =="
for PROG in examples/il/dot.lift examples/il/square.lift; do
  for SITE in 6 7 8; do
    # Counting run: '// fault-count K N <site>' per site, nothing fails.
    TOTAL=$("$BUILD_DIR/tools/liftc" "$PROG" --run --count-faults \
              2>/dev/null |
            awk -v s="$SITE" '$2 == "fault-count" && $3 == s { print $4 }')
    TOTAL="${TOTAL:-0}"
    if [ "$TOTAL" -eq 0 ]; then
      echo "chaos: site $SITE never fires in $PROG; skipping"
      continue
    fi
    MID=$(( (TOTAL + 1) / 2 ))
    for NTH in 1 "$MID" "$TOTAL"; do
      STATUS=0
      ERR=$("$BUILD_DIR/tools/liftc" "$PROG" --run \
              --inject-faults "$NTH,$SITE" 2>&1 >/dev/null) || STATUS=$?
      if [ "$STATUS" -eq 1 ]; then
        # Cancelled cleanly: the diagnostic must be the mid-exec code.
        if ! printf '%s' "$ERR" | grep -q 'E0515'; then
          echo "chaos: $PROG site $SITE occurrence $NTH/$TOTAL failed" \
               "without an E0515 diagnostic" >&2
          printf '%s\n' "$ERR" >&2
          exit 1
        fi
      elif [ "$STATUS" -eq 0 ]; then
        # Only a per-worker step-chunk countdown may outrun the trip.
        if [ "$SITE" -ne 8 ]; then
          echo "chaos: $PROG site $SITE occurrence $NTH/$TOTAL did not" \
               "cancel the launch" >&2
          exit 1
        fi
      else
        echo "chaos: liftc $PROG crashed at site $SITE occurrence" \
             "$NTH/$TOTAL (exit $STATUS)" >&2
        exit 1
      fi
    done
    echo "chaos: $PROG site $SITE swept occurrences 1/$MID/$TOTAL of $TOTAL"
  done
done

echo "== Stage 7: liftd under seeded service faults, clients holding the exit-code contract =="
# A real liftd process per seed with probabilistic injection armed from
# the environment: the accept / request-read / request-write / queue-admit
# sites (and every runtime site the requests reach) fire at random while
# remote liftc clients run the example programs through the daemon. The
# oracle is the same as stage 2 plus the daemon's own lifecycle: clients
# may exit 0 (ran) or 1 (clean diagnostics after the bounded retry),
# never 2 or a signal; the daemon must survive every seed and drain to
# exit 0 on SIGTERM.
STORM_DIR=$(mktemp -d)
for SEED in $(seq 1 8); do
  SOCK="$STORM_DIR/liftd-$SEED.sock"
  DLOG="$STORM_DIR/liftd-$SEED.log"
  LIFT_FAULT_SEED="$SEED" "$BUILD_DIR/tools/liftd" --socket "$SOCK" \
    --max-inflight 2 --queue-depth 2 --drain-ms 5000 >"$DLOG" 2>&1 &
  DPID=$!
  for _ in $(seq 1 100); do
    grep -q "listening" "$DLOG" 2>/dev/null && break
    sleep 0.1
  done
  for PROG in examples/il/dot.lift examples/il/square.lift; do
    STATUS=0
    "$BUILD_DIR/tools/liftc" "$PROG" --run --remote="$SOCK" \
      --retry-attempts 12 --retry-base-us 2000 >/dev/null 2>&1 || STATUS=$?
    if [ "$STATUS" -ne 0 ] && [ "$STATUS" -ne 1 ]; then
      echo "soak: remote liftc $PROG broke the exit-code contract under" \
           "LIFT_FAULT_SEED=$SEED (exit $STATUS)" >&2
      kill -KILL "$DPID" 2>/dev/null || true
      exit 1
    fi
  done
  kill -TERM "$DPID"
  DSTATUS=0
  wait "$DPID" || DSTATUS=$?
  if [ "$DSTATUS" -ne 0 ]; then
    echo "soak: liftd did not drain cleanly under LIFT_FAULT_SEED=$SEED" \
         "(exit $DSTATUS)" >&2
    cat "$DLOG" >&2
    exit 1
  fi
done
rm -rf "$STORM_DIR"
echo "all 8 daemon seeds drained cleanly"

echo "== Stage 8: pipeline graphs under seeded fault injection ($SWEEP_SEEDS seeds) =="
# The k-means convergence loop (examples/graph/kmeans_loop.liftg,
# docs/PIPELINES.md) through liftc --graph with probabilistic injection
# armed from the environment: every runtime site a graph run reaches —
# including the graph-level sites 15 (stage dispatch) and 16 (buffer
# reuse) — fires at random across the ~34 stage launches of the loop.
# Bounded ExecLimits are inherited from the exports above, so an
# injected pathology surfaces as a diagnostic, never a hung soak. The
# oracle is liftc's exit-code contract: 0 = the graph ran (possibly with
# the E0812 not-converged warning), 1 = it unwound with clean E08xx
# diagnostics naming the failed stage; 2 or a signal means a fault
# escaped the Expected<> paths. Alternating reuse on/off keeps both
# allocator paths under fire.
for SEED in $(seq 1 "$SWEEP_SEEDS"); do
  REUSE_FLAG=""
  if [ $((SEED % 2)) -eq 0 ]; then
    REUSE_FLAG="--no-reuse-buffers"
  fi
  STATUS=0
  LIFT_FAULT_SEED="$SEED" "$BUILD_DIR/tools/liftc" \
    --graph=examples/graph/kmeans_loop.liftg $REUSE_FLAG \
    >/dev/null 2>&1 || STATUS=$?
  if [ "$STATUS" -ne 0 ] && [ "$STATUS" -ne 1 ]; then
    echo "soak: liftc --graph kmeans_loop crashed under" \
         "LIFT_FAULT_SEED=$SEED (exit $STATUS)" >&2
    exit 1
  fi
done
echo "all $SWEEP_SEEDS graph seeds exited cleanly"

echo "soak passed"
