//===- lift-client.cpp - liftd control and exec client --------------------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
//
// lift-client: thin command-line client for the liftd daemon
// (docs/SERVICE.md).
//
//   lift-client --socket SOCK ping                liveness probe
//   lift-client --socket SOCK stats               dump daemon counters
//   lift-client --socket SOCK shutdown            request a graceful drain
//   lift-client --socket SOCK exec FILE [flags]   compile/run FILE remotely;
//                                                 flags mirror liftc
//                                                 (--run, --print-il,
//                                                  --global, --size, ...)
//
// Transient failures (shed requests, daemon I/O errors) are retried with
// the support::Retry policy; --retry-attempts / --retry-base-us override
// the LIFT_RETRY_* environment knobs.
//
//===----------------------------------------------------------------------===//

#include "service/Client.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

using namespace lift;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: lift-client --socket SOCK [--timeout-ms N]\n"
      "                   [--retry-attempts N] [--retry-base-us N]\n"
      "                   ping | stats | shutdown | exec FILE [flags]\n"
      "  exec flags (mirroring liftc): --run --print-il --dump-native\n"
      "    --backend=sim|native --native-mode=exact|fast\n"
      "    --global N[,N[,N]] --local N[,N[,N]] --size NAME=VALUE\n"
      "    --no-aas --no-cfs --no-be --verify-each --max-errors N\n"
      "    --check-races --check-memory --perturb-schedule "
      "--schedule-seed N\n"
      "    --threads N --max-steps N --timeout-ms N --max-memory N\n");
}

bool parseDims(const char *S, std::array<int64_t, 3> &Out) {
  Out = {1, 1, 1};
  int I = 0;
  const char *P = S;
  while (*P && I < 3) {
    char *End = nullptr;
    long long V = std::strtoll(P, &End, 10);
    if (End == P || V <= 0)
      return false;
    Out[static_cast<size_t>(I++)] = V;
    P = (*End == ',') ? End + 1 : End;
    if (*End && *End != ',')
      return false;
  }
  return I > 0;
}

bool parseCount(const char *S, unsigned long long &Out) {
  if (!S || !*S || *S == '-')
    return false;
  char *End = nullptr;
  Out = std::strtoull(S, &End, 10);
  return End != S && *End == '\0';
}

int fail(const DiagnosticEngine &Engine) {
  for (const Diagnostic &D : Engine.diagnostics())
    std::fprintf(stderr, "lift-client: %s\n", D.render().c_str());
  return 1;
}

} // namespace

int main(int argc, char **argv) {
  service::ClientOptions CO;
  service::Request Req;
  Req.Kind = service::Op::Ping;
  bool HaveOp = false;
  std::string File;

  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    if (A == "--socket" && I + 1 < argc) {
      CO.SocketPath = argv[++I];
    } else if (A == "--timeout-ms" && I + 1 < argc && !HaveOp) {
      CO.TimeoutMs = std::strtoll(argv[++I], nullptr, 10);
    } else if (A == "--retry-attempts" && I + 1 < argc) {
      unsigned long long V = 0;
      if (!parseCount(argv[++I], V) || V == 0 || V > 1000000) {
        std::fprintf(stderr, "lift-client: --retry-attempts needs a count "
                             "in [1, 1000000]\n");
        return 1;
      }
      ::setenv("LIFT_RETRY_ATTEMPTS", std::to_string(V).c_str(), 1);
    } else if (A == "--retry-base-us" && I + 1 < argc) {
      unsigned long long V = 0;
      if (!parseCount(argv[++I], V) || V > 60000000) {
        std::fprintf(stderr, "lift-client: --retry-base-us needs "
                             "microseconds in [0, 60000000]\n");
        return 1;
      }
      ::setenv("LIFT_RETRY_BASE_US", std::to_string(V).c_str(), 1);
    } else if (!HaveOp && A == "ping") {
      Req.Kind = service::Op::Ping;
      HaveOp = true;
    } else if (!HaveOp && A == "stats") {
      Req.Kind = service::Op::Stats;
      HaveOp = true;
    } else if (!HaveOp && A == "shutdown") {
      Req.Kind = service::Op::Shutdown;
      HaveOp = true;
    } else if (!HaveOp && A == "exec" && I + 1 < argc) {
      Req.Kind = service::Op::Exec;
      File = argv[++I];
      HaveOp = true;
    } else if (HaveOp && Req.Kind == service::Op::Exec) {
      // liftc-style exec flags.
      service::ExecRequest &E = Req.Exec;
      if (A == "--run") {
        E.Run = true;
      } else if (A == "--print-il") {
        E.PrintIl = true;
      } else if (A == "--dump-native") {
        E.DumpNative = true;
      } else if (A == "--backend=sim") {
        E.NativeBackend = false;
      } else if (A == "--backend=native") {
        E.NativeBackend = true;
      } else if (A == "--native-mode=exact") {
        E.NMode = native::NativeMode::Exact;
      } else if (A == "--native-mode=fast") {
        E.NMode = native::NativeMode::Fast;
      } else if (A == "--no-aas") {
        E.Opts.ArrayAccessSimplification = false;
      } else if (A == "--no-cfs") {
        E.Opts.ControlFlowSimplification = false;
      } else if (A == "--no-be") {
        E.Opts.BarrierElimination = false;
      } else if (A == "--verify-each") {
        E.Opts.VerifyEach = true;
      } else if (A == "--check-races") {
        E.Opts.CheckRaces = true;
      } else if (A == "--check-memory") {
        E.Opts.CheckMemory = true;
      } else if (A == "--perturb-schedule") {
        E.Opts.PerturbSchedule = true;
      } else if (A == "--schedule-seed" && I + 1 < argc) {
        E.Opts.ScheduleSeed = std::strtoull(argv[++I], nullptr, 10);
      } else if (A == "--threads" && I + 1 < argc) {
        E.Opts.Threads = static_cast<int>(std::strtol(argv[++I], nullptr, 10));
      } else if (A == "--max-steps" && I + 1 < argc) {
        E.Opts.MaxSteps = std::strtoull(argv[++I], nullptr, 10);
      } else if (A == "--timeout-ms" && I + 1 < argc) {
        E.Opts.TimeoutMs = std::strtoll(argv[++I], nullptr, 10);
      } else if (A == "--max-memory" && I + 1 < argc) {
        E.Opts.MaxMemoryBytes = std::strtoull(argv[++I], nullptr, 10);
      } else if (A == "--max-errors" && I + 1 < argc) {
        E.MaxErrors =
            static_cast<unsigned>(std::strtoul(argv[++I], nullptr, 10));
      } else if (A == "--global" && I + 1 < argc) {
        if (!parseDims(argv[++I], E.Opts.GlobalSize)) {
          usage();
          return 1;
        }
      } else if (A == "--local" && I + 1 < argc) {
        if (!parseDims(argv[++I], E.Opts.LocalSize)) {
          usage();
          return 1;
        }
      } else if (A == "--size" && I + 1 < argc) {
        std::string KV = argv[++I];
        size_t Eq = KV.find('=');
        if (Eq == std::string::npos) {
          usage();
          return 1;
        }
        E.Sizes[KV.substr(0, Eq)] =
            std::strtoll(KV.c_str() + Eq + 1, nullptr, 10);
      } else {
        usage();
        return 1;
      }
    } else {
      usage();
      return 1;
    }
  }
  if (CO.SocketPath.empty() || !HaveOp) {
    usage();
    return 1;
  }

  if (Req.Kind == service::Op::Exec) {
    std::ifstream In(File);
    if (!In) {
      std::fprintf(stderr, "lift-client: cannot open %s\n", File.c_str());
      return 1;
    }
    std::stringstream SS;
    SS << In.rdbuf();
    Req.Exec.Source = SS.str();
  }

  DiagnosticEngine Engine(20);
  service::Response Resp;
  if (!service::roundTrip(CO, Req, Resp, Engine))
    return fail(Engine);

  switch (Req.Kind) {
  case service::Op::Ping:
    std::printf("%s\n", Resp.Message.empty() ? "pong" : Resp.Message.c_str());
    return 0;
  case service::Op::Stats:
    for (const auto &KV : Resp.Stats)
      std::printf("%s %lld\n", KV.first.c_str(),
                  static_cast<long long>(KV.second));
    return 0;
  case service::Op::Shutdown:
    std::printf("%s\n",
                Resp.Message.empty() ? "draining" : Resp.Message.c_str());
    return 0;
  case service::Op::Exec:
    std::fwrite(Resp.Stdout.data(), 1, Resp.Stdout.size(), stdout);
    for (const std::string &D : Resp.Diagnostics)
      std::fprintf(stderr, "liftc: %s\n", D.c_str());
    if (Resp.St == service::Status::BadRequest)
      std::fprintf(stderr, "lift-client: error[%s]: daemon rejected the "
                           "request: %s\n",
                   Resp.Code.empty() ? "E0702" : Resp.Code.c_str(),
                   Resp.Message.c_str());
    return Resp.Exit;
  }
  return 1;
}
