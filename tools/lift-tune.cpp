//===- lift-tune.cpp - Auto-tuning driver for the lowering space ----------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
//
// Searches the rewrite-derivation space (src/tune/) for the cheapest
// lowering of each named workload under the simulated cost model, and
// reports the result against the default `lowerProgram` lowering. Results
// are cached under --cache-dir (default .lift-tune/), so a repeated
// invocation with the same configuration executes no candidates.
//
//===----------------------------------------------------------------------===//

#include "native/Native.h"
#include "tune/Cache.h"
#include "tune/Tuner.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

using namespace lift;

namespace {

int usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s [workload...] [options]\n"
      "\n"
      "Tunes the lowering of the named workloads (default: all twelve).\n"
      "Run with --list to see the workload names.\n"
      "\n"
      "options:\n"
      "  --list                 list workloads and exit\n"
      "  --all                  tune every workload (the default)\n"
      "  --tune-seed N          sampling seed above the exhaustive "
      "threshold (default 1)\n"
      "  --threads N            candidate evaluations in flight "
      "(0 = auto)\n"
      "  --max-evals N          evaluation budget above the threshold\n"
      "  --exhaustive-threshold N  evaluate spaces up to N exhaustively\n"
      "  --cache-dir DIR        tuning cache directory (default "
      ".lift-tune)\n"
      "  --no-cache             ignore and do not write the cache\n"
      "  --json PATH            write the results as JSON\n"
      "  --max-steps N          per-candidate interpreter step budget\n"
      "  --timeout-ms N         per-candidate wall-clock deadline\n"
      "  --max-memory N         per-candidate allocation cap (bytes)\n"
      "  --objective O          candidate score: 'cost' (simulated cost\n"
      "                         model, default) or 'native' (median\n"
      "                         wall-clock of fast-mode native launches;\n"
      "                         needs a system compiler)\n"
      "  --native-repeats N     timed launches per candidate under\n"
      "                         --objective=native (default 3)\n"
      "  --native-check         re-run each best lowering on the native\n"
      "                         C++/OpenMP backend and require bit-identical\n"
      "                         output (needs a system compiler)\n"
      "  --retry-attempts N     attempts for transient host failures\n"
      "                         (N >= 1; sets LIFT_RETRY_ATTEMPTS)\n"
      "  --retry-base-us N      retry backoff base in microseconds\n"
      "                         (N >= 0; sets LIFT_RETRY_BASE_US)\n",
      Argv0);
  return 2;
}

bool parseInt(const char *S, int64_t &Out) {
  char *End = nullptr;
  long long V = std::strtoll(S, &End, 10);
  if (End == S || *End)
    return false;
  Out = V;
  return true;
}

std::string jsonEscape(const std::string &S) {
  std::string R = "\"";
  for (char C : S) {
    if (C == '"' || C == '\\')
      R += '\\';
    R += C;
  }
  R += '"';
  return R;
}

std::string resultJson(const std::vector<tune::TuneResult> &Results,
                       tune::TuneObjective Objective) {
  std::string J = "{\n  \"objective\": ";
  J += jsonEscape(tune::tuneObjectiveName(Objective));
  J += ",\n  \"results\": [";
  for (size_t I = 0; I != Results.size(); ++I) {
    const tune::TuneResult &R = Results[I];
    std::string E = "{";
    E += "\"workload\": " + jsonEscape(R.Workload);
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "%.17g", R.DefaultCost);
    E += std::string(", \"default_cost\": ") + Buf;
    std::snprintf(Buf, sizeof(Buf), "%.17g", R.HasBest ? R.BestCost : 0.0);
    E += std::string(", \"best_cost\": ") + Buf;
    E += ", \"best\": " +
         jsonEscape(R.HasBest ? R.Best.key() : std::string("none"));
    E += ", \"best_trace\": " +
         jsonEscape(R.HasBest ? R.Best.trace() : std::string(""));
    E += ", \"candidates_enumerated\": " +
         std::to_string(R.CandidatesEnumerated);
    E += ", \"candidates_evaluated\": " +
         std::to_string(R.CandidatesEvaluated);
    E += std::string(", \"cache_hit\": ") +
         (R.CacheHit ? "true" : "false");
    E += "}";
    J += (I ? ",\n    " : "\n    ") + E;
  }
  J += "\n  ]\n}\n";
  return J;
}

/// Re-runs the best lowering of \p W on the native C++/OpenMP backend and
/// compares bit-for-bit against the simulator's output for the same
/// kernel. Returns false (after printing why) on any divergence.
bool nativeCheck(const tune::Workload &W, const tune::TuneResult &R) {
  if (!R.HasBest) {
    std::fprintf(stderr, "error: '%s' has no best lowering to native-check\n",
                 W.Name.c_str());
    return false;
  }
  DiagnosticEngine Engine;
  Expected<ir::LambdaPtr> Lowered =
      tune::applyDerivation(W.Program, R.Best, Engine);
  codegen::CompilerOptions Opts;
  Opts.GlobalSize = R.Best.Global;
  Opts.LocalSize = R.Best.Local;
  Opts.KernelName = "TUNE_" + W.Name;
  Expected<codegen::CompiledKernel> K =
      Lowered ? codegen::compileChecked(*Lowered, Opts, Engine)
              : Expected<codegen::CompiledKernel>();
  if (!K) {
    std::fprintf(stderr, "%s", Engine.render().c_str());
    std::fprintf(stderr, "error: rebuilding the best lowering of '%s' "
                         "failed\n",
                 W.Name.c_str());
    return false;
  }

  auto makeBuffers = [&](std::vector<ocl::Buffer> &Buffers,
                         std::vector<ocl::Buffer *> &Bound) {
    for (const std::vector<float> &In : W.Inputs)
      Buffers.push_back(ocl::Buffer::ofFloats(In));
    Buffers.push_back(ocl::Buffer::zeros(W.OutCount));
    for (ocl::Buffer &B : Buffers)
      Bound.push_back(&B);
  };
  ocl::LaunchConfig Cfg;
  Cfg.Global = R.Best.Global;
  Cfg.Local = R.Best.Local;

  std::vector<ocl::Buffer> SimBufs;
  std::vector<ocl::Buffer *> SimBound;
  makeBuffers(SimBufs, SimBound);
  Expected<ocl::LaunchResult> Sim =
      ocl::launchChecked(*K, SimBound, W.Sizes, Cfg, Engine);

  std::vector<ocl::Buffer> NatBufs;
  std::vector<ocl::Buffer *> NatBound;
  makeBuffers(NatBufs, NatBound);
  Expected<native::NativeLaunchResult> Nat =
      Sim ? native::launchNativeChecked(*K, NatBound, W.Sizes, Cfg, Engine)
          : Expected<native::NativeLaunchResult>();
  if (!Sim || !Nat) {
    std::fprintf(stderr, "%s", Engine.render().c_str());
    std::fprintf(stderr, "error: native check of '%s' failed to execute\n",
                 W.Name.c_str());
    return false;
  }

  std::vector<float> SimOut = SimBufs.back().toFlatFloats();
  std::vector<float> NatOut = NatBufs.back().toFlatFloats();
  if (SimOut.size() != NatOut.size() ||
      (SimOut.size() && std::memcmp(SimOut.data(), NatOut.data(),
                                    SimOut.size() * sizeof(float)) != 0)) {
    std::fprintf(stderr,
                 "error: '%s' native output differs from the simulator\n",
                 W.Name.c_str());
    return false;
  }
  std::printf("  %-16s native: ok wall-ms=%.3f cache=%s\n", "", Nat->WallMs,
              Nat->CacheHit ? "hit" : "miss");
  return true;
}

} // namespace

int main(int argc, char **argv) {
  tune::TuneConfig Config;
  std::vector<std::string> Names;
  std::string JsonPath;
  bool All = false, List = false, NativeCheck = false;

  // Accept both "--opt value" and "--opt=value" spellings.
  std::vector<std::string> Args;
  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    size_t Eq;
    if (A.size() > 2 && A[0] == '-' && A[1] == '-' &&
        (Eq = A.find('=')) != std::string::npos) {
      Args.push_back(A.substr(0, Eq));
      Args.push_back(A.substr(Eq + 1));
    } else {
      Args.push_back(std::move(A));
    }
  }

  for (size_t I = 0; I < Args.size(); ++I) {
    const std::string &A = Args[I];
    auto intArg = [&](int64_t &Out) {
      if (I + 1 >= Args.size() || !parseInt(Args[++I].c_str(), Out)) {
        std::fprintf(stderr, "error: %s needs an integer argument\n",
                     A.c_str());
        std::exit(2);
      }
    };
    int64_t V = 0;
    if (A == "--list")
      List = true;
    else if (A == "--all")
      All = true;
    else if (A == "--tune-seed") {
      intArg(V);
      Config.Seed = static_cast<uint64_t>(V);
    } else if (A == "--threads") {
      intArg(V);
      Config.Threads = static_cast<int>(V);
    } else if (A == "--max-evals") {
      intArg(V);
      Config.MaxEvaluations = static_cast<unsigned>(V);
    } else if (A == "--exhaustive-threshold") {
      intArg(V);
      Config.ExhaustiveThreshold = static_cast<unsigned>(V);
    } else if (A == "--cache-dir") {
      if (I + 1 >= Args.size())
        return usage(argv[0]);
      Config.CacheDir = Args[++I];
    } else if (A == "--no-cache")
      Config.UseCache = false;
    else if (A == "--native-check")
      NativeCheck = true;
    else if (A == "--json") {
      if (I + 1 >= Args.size())
        return usage(argv[0]);
      JsonPath = Args[++I];
    } else if (A == "--max-steps") {
      intArg(V);
      Config.CandidateLimits.MaxSteps = static_cast<uint64_t>(V);
    } else if (A == "--timeout-ms") {
      intArg(V);
      Config.CandidateLimits.TimeoutMs = V;
    } else if (A == "--max-memory") {
      intArg(V);
      Config.CandidateLimits.MaxMemoryBytes = static_cast<uint64_t>(V);
    } else if (A == "--objective") {
      if (I + 1 >= Args.size())
        return usage(argv[0]);
      std::string O = Args[++I];
      if (O == "cost")
        Config.Objective = tune::TuneObjective::Cost;
      else if (O == "native")
        Config.Objective = tune::TuneObjective::Native;
      else {
        std::fprintf(stderr,
                     "error: --objective must be 'cost' or 'native'\n");
        return 2;
      }
    } else if (A == "--native-repeats") {
      intArg(V);
      Config.NativeRepeats = static_cast<unsigned>(V);
    } else if (A == "--retry-attempts") {
      intArg(V);
      if (V < 1 || V > 1000000) {
        std::fprintf(stderr,
                     "error: --retry-attempts needs a count in "
                     "[1, 1000000]\n");
        return 2;
      }
      ::setenv("LIFT_RETRY_ATTEMPTS", std::to_string(V).c_str(), 1);
    } else if (A == "--retry-base-us") {
      intArg(V);
      if (V < 0 || V > 60000000) {
        std::fprintf(stderr,
                     "error: --retry-base-us needs microseconds in "
                     "[0, 60000000]\n");
        return 2;
      }
      ::setenv("LIFT_RETRY_BASE_US", std::to_string(V).c_str(), 1);
    } else if (!A.empty() && A[0] == '-') {
      std::fprintf(stderr, "error: unknown option '%s'\n", A.c_str());
      return usage(argv[0]);
    } else
      Names.push_back(A);
  }

  std::vector<tune::Workload> Set = tune::allWorkloads();
  Set.push_back(tune::loweringCompareWorkload());

  if (List) {
    for (const tune::Workload &W : Set)
      std::printf("%-18s outer=%-5lld base global=%lld local=%lld\n",
                  W.Name.c_str(), static_cast<long long>(W.OuterN),
                  static_cast<long long>(W.BaseGlobal[0]),
                  static_cast<long long>(W.BaseLocal[0]));
    return 0;
  }

  std::vector<const tune::Workload *> Selected;
  if (Names.empty() || All) {
    // Default: the twelve benchmark workloads (lowering-compare only by
    // explicit request).
    for (size_t I = 0; I + 1 < Set.size(); ++I)
      Selected.push_back(&Set[I]);
  }
  for (const std::string &N : Names) {
    const tune::Workload *W = tune::findWorkload(Set, N);
    if (!W) {
      std::fprintf(stderr, "error: unknown workload '%s' (try --list)\n",
                   N.c_str());
      return 2;
    }
    Selected.push_back(W);
  }

  const bool NativeObj = Config.Objective == tune::TuneObjective::Native;
  if (NativeObj)
    std::printf("objective: native wall-clock (median of %u fast-mode "
                "launches; costs are milliseconds)\n",
                std::max(1u, Config.NativeRepeats));
  std::printf("%-18s %14s %14s %8s %11s %6s\n", "workload", "default cost",
              "best cost", "speedup", "evaluated", "cache");
  std::vector<tune::TuneResult> Results;
  bool Ok = true;
  for (const tune::Workload *W : Selected) {
    DiagnosticEngine Engine;
    Expected<tune::TuneResult> R = tune::tuneWorkload(*W, Config, Engine);
    if (!R) {
      std::fprintf(stderr, "%s", Engine.render().c_str());
      std::fprintf(stderr, "error: tuning '%s' failed\n", W->Name.c_str());
      Ok = false;
      continue;
    }
    if (!R->HasBest || R->BestCost > R->DefaultCost) {
      std::fprintf(stderr,
                   "error: '%s' found no lowering at least as good as the "
                   "default\n",
                   W->Name.c_str());
      Ok = false;
    }
    std::printf(NativeObj ? "%-18s %14.3f %14.3f %7.3fx %5u/%-5u %6s\n"
                          : "%-18s %14.0f %14.0f %7.3fx %5u/%-5u %6s\n",
                R->Workload.c_str(), R->DefaultCost,
                R->HasBest ? R->BestCost : 0.0,
                R->HasBest && R->BestCost > 0 ? R->DefaultCost / R->BestCost
                                              : 0.0,
                R->CandidatesEvaluated, R->CandidatesEnumerated,
                R->CacheHit ? "hit" : "miss");
    if (R->HasBest)
      std::printf("  %-16s best: %s\n", "", R->Best.trace().c_str());
    if (NativeCheck && !nativeCheck(*W, *R))
      Ok = false;
    Results.push_back(std::move(*R));
  }

  if (!JsonPath.empty()) {
    std::ofstream Out(JsonPath, std::ios::trunc);
    if (!Out) {
      std::fprintf(stderr, "error: cannot write '%s'\n", JsonPath.c_str());
      return 1;
    }
    Out << resultJson(Results, Config.Objective);
  }

  return Ok ? 0 : 1;
}
