//===- liftc.cpp - Command-line Lift compiler driver ---------------------------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
//
// liftc: compiles a Lift IL source file to OpenCL and optionally executes
// it on the simulated device.
//
//   liftc prog.lift                          print the generated kernel
//   liftc prog.lift --print-il               also echo the parsed IL
//   liftc prog.lift --global 1024 --local 64 NDRange (1D shorthand)
//   liftc prog.lift --size N=4096            bind a size variable
//   liftc prog.lift --no-aas|--no-cfs|--no-be  toggle optimizations
//   liftc prog.lift --run                    execute with random inputs,
//                                            report cost and a checksum
//   liftc prog.lift --run --check-races      detect data races and barrier
//                                            divergence while executing
//   liftc prog.lift --run --check-races --perturb-schedule [--schedule-seed N]
//                                            also permute work-item order
//
//===----------------------------------------------------------------------===//

#include "frontend/ILParser.h"
#include "ir/Printer.h"
#include "lift/Lift.h"
#include "support/Error.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace lift;

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: liftc <file.lift> [--print-il] [--run]\n"
      "             [--global N[,N[,N]]] [--local N[,N[,N]]]\n"
      "             [--size NAME=VALUE]... [--no-aas] [--no-cfs] "
      "[--no-be]\n"
      "             [--check-races] [--perturb-schedule] "
      "[--schedule-seed N]\n");
}

bool parseDims(const char *S, std::array<int64_t, 3> &Out) {
  Out = {1, 1, 1};
  int I = 0;
  const char *P = S;
  while (*P && I < 3) {
    char *End = nullptr;
    long long V = std::strtoll(P, &End, 10);
    if (End == P || V <= 0)
      return false;
    Out[static_cast<size_t>(I++)] = V;
    P = (*End == ',') ? End + 1 : End;
    if (*End && *End != ',')
      return false;
  }
  return I > 0;
}

/// Deterministic input data for --run.
std::vector<float> randomFloats(size_t N, uint64_t Seed) {
  std::vector<float> R(N);
  uint64_t S = Seed * 6364136223846793005ULL + 1442695040888963407ULL;
  for (size_t I = 0; I != N; ++I) {
    S ^= S << 13;
    S ^= S >> 7;
    S ^= S << 17;
    R[I] = static_cast<float>(static_cast<int64_t>(S % 2000) - 1000) / 1000.f;
  }
  return R;
}

} // namespace

int main(int argc, char **argv) {
  if (argc < 2) {
    usage();
    return 2;
  }

  std::string File;
  bool PrintIl = false, Run = false;
  codegen::CompilerOptions Opts;
  std::map<std::string, int64_t> Sizes;

  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    if (A == "--print-il") {
      PrintIl = true;
    } else if (A == "--run") {
      Run = true;
    } else if (A == "--no-aas") {
      Opts.ArrayAccessSimplification = false;
    } else if (A == "--no-cfs") {
      Opts.ControlFlowSimplification = false;
    } else if (A == "--no-be") {
      Opts.BarrierElimination = false;
    } else if (A == "--check-races") {
      Opts.CheckRaces = true;
    } else if (A == "--perturb-schedule") {
      Opts.PerturbSchedule = true;
    } else if (A == "--schedule-seed" && I + 1 < argc) {
      Opts.ScheduleSeed = std::strtoull(argv[++I], nullptr, 10);
    } else if (A == "--global" && I + 1 < argc) {
      if (!parseDims(argv[++I], Opts.GlobalSize)) {
        usage();
        return 2;
      }
    } else if (A == "--local" && I + 1 < argc) {
      if (!parseDims(argv[++I], Opts.LocalSize)) {
        usage();
        return 2;
      }
    } else if (A == "--size" && I + 1 < argc) {
      std::string KV = argv[++I];
      size_t Eq = KV.find('=');
      if (Eq == std::string::npos) {
        usage();
        return 2;
      }
      Sizes[KV.substr(0, Eq)] = std::strtoll(KV.c_str() + Eq + 1, nullptr,
                                             10);
    } else if (!A.empty() && A[0] != '-') {
      File = A;
    } else {
      usage();
      return 2;
    }
  }
  if (File.empty()) {
    usage();
    return 2;
  }

  std::ifstream In(File);
  if (!In) {
    std::fprintf(stderr, "liftc: cannot open %s\n", File.c_str());
    return 1;
  }
  std::stringstream SS;
  SS << In.rdbuf();

  frontend::ParsedProgram P = frontend::parseIL(SS.str());
  if (PrintIl)
    std::printf("// parsed IL\n%s\n", ir::printProgram(P.Program).c_str());

  Opts.KernelName = "liftc_kernel";
  codegen::CompiledKernel K = codegen::compile(P.Program, Opts);
  std::printf("%s", K.Source.c_str());

  if (!Run)
    return 0;

  // Bind size variables; default unbound ones to 1024.
  arith::EvalContext SizeCtx;
  std::map<unsigned, int64_t> SizeEnv;
  for (const auto &[Name, Var] : P.SizeVars) {
    auto It = Sizes.find(Name);
    int64_t V = It != Sizes.end() ? It->second : 1024;
    Sizes[Name] = V;
    SizeEnv[Var->getId()] = V;
  }
  SizeCtx.VarValue = [&](const arith::VarNode &V) -> int64_t {
    auto It = SizeEnv.find(V.getId());
    if (It == SizeEnv.end())
      fatalError("liftc: unbound size variable " + V.getName());
    return It->second;
  };

  // Materialize buffers: random floats for inputs, zeros for the output.
  std::vector<ocl::Buffer> Buffers;
  std::vector<ocl::Buffer *> Args;
  uint64_t Seed = 1;
  for (const codegen::KernelParamInfo &Param : K.Params) {
    if (Param.IsSizeParam || !Param.Store || !Param.Store->NumElements)
      continue;
    int64_t Count = arith::evaluate(Param.Store->NumElements, SizeCtx);
    if (Param.IsOutput)
      Buffers.push_back(ocl::Buffer::zeros(static_cast<size_t>(Count)));
    else
      Buffers.push_back(ocl::Buffer::ofFloats(
          randomFloats(static_cast<size_t>(Count), Seed++)));
  }
  for (ocl::Buffer &B : Buffers)
    Args.push_back(&B);

  ocl::LaunchConfig Cfg = ocl::LaunchConfig::fromOptions(Opts);
  ocl::RaceReport Races;
  ocl::CostReport Cost = Opts.CheckRaces
                             ? ocl::launch(K, Args, Sizes, Cfg, Races)
                             : ocl::launch(K, Args, Sizes, Cfg);

  double Checksum = 0;
  for (float V : Buffers.back().toFlatFloats())
    Checksum += V;
  std::printf("\n// run: cost=%.0f global=%llu local=%llu barriers=%llu "
              "divmod=%llu checksum=%.6g\n",
              Cost.cost(),
              static_cast<unsigned long long>(Cost.GlobalAccesses),
              static_cast<unsigned long long>(Cost.LocalAccesses),
              static_cast<unsigned long long>(Cost.Barriers),
              static_cast<unsigned long long>(Cost.DivModOps), Checksum);

  if (Opts.CheckRaces) {
    std::printf("// race check: %s\n", Races.summary().c_str());
    for (const ocl::RaceFinding &F : Races.Findings)
      std::fprintf(stderr, "liftc: %s: %s\n", ocl::RaceFinding::kindName(F.K),
                   F.Detail.c_str());
    if (!Races.clean())
      return 3;
  }
  return 0;
}
