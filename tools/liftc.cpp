//===- liftc.cpp - Command-line Lift compiler driver ---------------------------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
//
// liftc: compiles a Lift IL source file to OpenCL and optionally executes
// it on the simulated device.
//
//   liftc prog.lift                          print the generated kernel
//   liftc prog.lift --print-il               also echo the parsed IL
//   liftc prog.lift --global 1024 --local 64 NDRange (1D shorthand)
//   liftc prog.lift --size N=4096            bind a size variable
//   liftc prog.lift --no-aas|--no-cfs|--no-be  toggle optimizations
//   liftc prog.lift --verify-each            run the IR verifier after
//                                            parsing and each pipeline stage
//   liftc prog.lift --max-errors N           report up to N errors (default 20)
//   liftc prog.lift --run                    execute with random inputs,
//                                            report cost and a checksum
//   liftc prog.lift --run --check-races      detect data races and barrier
//                                            divergence while executing
//   liftc prog.lift --run --check-memory     bounds- and initialization-check
//                                            every element access
//   liftc prog.lift --run --check-races --perturb-schedule [--schedule-seed N]
//                                            also permute work-item order
//   liftc prog.lift --run --backend=native   execute on the native C++/OpenMP
//                                            backend (src/native) instead of
//                                            the simulator
//   liftc prog.lift --dump-native            print the generated native C++
//                                            translation unit
//
// Exit codes: 0 = success; 1 = the input was rejected (diagnostics were
// printed, including usage errors and race/memory findings); 2 = internal
// error (a compiler bug, not an input problem).
//
//===----------------------------------------------------------------------===//

#include "frontend/ILParser.h"
#include "ir/Printer.h"
#include "lift/Lift.h"
#include "native/Native.h"
#include "native/NativePrinter.h"
#include "ocl/FaultInject.h"
#include "passes/Verify.h"
#include "support/Diagnostics.h"

#include <cstdio>
#include <cstring>
#include <exception>
#include <fstream>
#include <sstream>

using namespace lift;

namespace {

enum ExitCode { ExitOk = 0, ExitDiagnostics = 1, ExitInternal = 2 };

void usage() {
  std::fprintf(
      stderr,
      "usage: liftc <file.lift> [--print-il] [--run]\n"
      "             [--global N[,N[,N]]] [--local N[,N[,N]]]\n"
      "             [--size NAME=VALUE]... [--no-aas] [--no-cfs] "
      "[--no-be]\n"
      "             [--verify-each] [--max-errors N]\n"
      "             [--check-races] [--check-memory] [--perturb-schedule] "
      "[--schedule-seed N]\n"
      "             [--threads N]   (0 = auto: LIFT_THREADS, else hardware "
      "concurrency; 1 = serial)\n"
      "             [--max-steps N]   cancel the launch after N interpreter "
      "steps (E0510)\n"
      "             [--timeout-ms N]  cancel the launch after N ms of wall "
      "clock (E0511)\n"
      "             [--max-memory N]  cap simulated device allocation at N "
      "bytes (E0512)\n"
      "             [--backend=sim|native] execution backend for --run "
      "(default sim)\n"
      "             [--native-mode=exact|fast] numeric model for the native "
      "backend\n"
      "                               (exact: bit-identical to the simulator; "
      "fast: typed\n"
      "                                scalars, -O3 -march=native; default "
      "exact)\n"
      "             [--dump-native]   print the generated native C++ "
      "translation unit\n"
      "             [--inject-faults N,K] fail the N-th occurrence of fault "
      "site K\n"
      "                               (N = 0 fails every occurrence: a "
      "persistent outage\n"
      "                                that exhausts the retry policy)\n"
      "                               (0 = allocation, 1 = pool start, 2 = "
      "buffer map,\n"
      "                                3 = native compile, 4 = native dlopen, "
      "5 = native dlsym,\n"
      "                                6 = barrier, 7 = group dispatch, 8 = "
      "step chunk,\n"
      "                                9 = cache read, 10 = cache write)\n"
      "             [--count-faults]  run in fault-counting mode: nothing "
      "fails, and a\n"
      "                               '// fault-count K N <site>' line per "
      "site reports how\n"
      "                               many injection opportunities the run "
      "had (the sweep\n"
      "                               bound for --inject-faults; overrides "
      "--inject-faults)\n");
}

bool parseDims(const char *S, std::array<int64_t, 3> &Out) {
  Out = {1, 1, 1};
  int I = 0;
  const char *P = S;
  while (*P && I < 3) {
    char *End = nullptr;
    long long V = std::strtoll(P, &End, 10);
    if (End == P || V <= 0)
      return false;
    Out[static_cast<size_t>(I++)] = V;
    P = (*End == ',') ? End + 1 : End;
    if (*End && *End != ',')
      return false;
  }
  return I > 0;
}

/// Deterministic input data for --run.
std::vector<float> randomFloats(size_t N, uint64_t Seed) {
  std::vector<float> R(N);
  uint64_t S = Seed * 6364136223846793005ULL + 1442695040888963407ULL;
  for (size_t I = 0; I != N; ++I) {
    S ^= S << 13;
    S ^= S >> 7;
    S ^= S << 17;
    R[I] = static_cast<float>(static_cast<int64_t>(S % 2000) - 1000) / 1000.f;
  }
  return R;
}

/// Prints every recorded diagnostic to stderr.
void flushDiagnostics(const DiagnosticEngine &Engine) {
  for (const Diagnostic &D : Engine.diagnostics())
    std::fprintf(stderr, "liftc: %s\n", D.render().c_str());
}

/// Prints the per-site occurrence tallies of a --count-faults run. The
/// count precedes the site name because names contain spaces and the soak
/// tier parses these lines with awk.
void printFaultCounts() {
  for (unsigned S = 0; S != ocl::fault::NumSites; ++S) {
    auto Id = static_cast<ocl::fault::Site>(S);
    std::printf("// fault-count %u %llu %s\n", S,
                static_cast<unsigned long long>(ocl::fault::occurrences(Id)),
                ocl::fault::siteName(Id));
  }
}

int run(int argc, char **argv) {
  if (argc < 2) {
    usage();
    return ExitDiagnostics;
  }

  std::string File;
  bool PrintIl = false, Run = false, DumpNative = false, NativeBackend = false;
  bool CountFaults = false;
  native::NativeMode NMode = native::NativeMode::Exact;
  codegen::CompilerOptions Opts;
  std::map<std::string, int64_t> Sizes;
  unsigned MaxErrors = 20;

  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    if (A == "--print-il") {
      PrintIl = true;
    } else if (A == "--run") {
      Run = true;
    } else if (A == "--dump-native") {
      DumpNative = true;
    } else if (A == "--backend=sim") {
      NativeBackend = false;
    } else if (A == "--backend=native") {
      NativeBackend = true;
    } else if (A == "--native-mode=exact") {
      NMode = native::NativeMode::Exact;
    } else if (A == "--native-mode=fast") {
      NMode = native::NativeMode::Fast;
    } else if (A == "--no-aas") {
      Opts.ArrayAccessSimplification = false;
    } else if (A == "--no-cfs") {
      Opts.ControlFlowSimplification = false;
    } else if (A == "--no-be") {
      Opts.BarrierElimination = false;
    } else if (A == "--verify-each") {
      Opts.VerifyEach = true;
    } else if (A == "--check-races") {
      Opts.CheckRaces = true;
    } else if (A == "--check-memory") {
      Opts.CheckMemory = true;
    } else if (A == "--perturb-schedule") {
      Opts.PerturbSchedule = true;
    } else if (A == "--schedule-seed" && I + 1 < argc) {
      Opts.ScheduleSeed = std::strtoull(argv[++I], nullptr, 10);
    } else if (A == "--threads" && I + 1 < argc) {
      Opts.Threads = static_cast<int>(std::strtol(argv[++I], nullptr, 10));
      if (Opts.Threads < 0) {
        std::fprintf(stderr, "liftc: --threads needs a count >= 0\n");
        return ExitDiagnostics;
      }
    } else if (A == "--max-steps" && I + 1 < argc) {
      Opts.MaxSteps = std::strtoull(argv[++I], nullptr, 10);
    } else if (A == "--timeout-ms" && I + 1 < argc) {
      Opts.TimeoutMs = std::strtoll(argv[++I], nullptr, 10);
      if (Opts.TimeoutMs < 0) {
        std::fprintf(stderr, "liftc: --timeout-ms needs a count >= 0\n");
        return ExitDiagnostics;
      }
    } else if (A == "--max-memory" && I + 1 < argc) {
      Opts.MaxMemoryBytes = std::strtoull(argv[++I], nullptr, 10);
    } else if (A == "--inject-faults" && I + 1 < argc) {
      char *End = nullptr;
      unsigned long long Nth = std::strtoull(argv[++I], &End, 10);
      unsigned long long SiteId =
          *End == ',' ? std::strtoull(End + 1, nullptr, 10) : ~0ull;
      if (End == argv[I] || SiteId >= ocl::fault::NumSites) {
        std::fprintf(stderr,
                     "liftc: --inject-faults needs N,K with N >= 0 and "
                     "K in [0,%u)\n",
                     ocl::fault::NumSites);
        return ExitDiagnostics;
      }
      if (Nth == 0)
        ocl::fault::armAlways(static_cast<ocl::fault::Site>(SiteId));
      else
        ocl::fault::arm(static_cast<ocl::fault::Site>(SiteId), Nth);
    } else if (A == "--count-faults") {
      CountFaults = true;
    } else if (A == "--max-errors" && I + 1 < argc) {
      MaxErrors = static_cast<unsigned>(std::strtoul(argv[++I], nullptr, 10));
      if (MaxErrors == 0) {
        std::fprintf(stderr, "liftc: --max-errors needs a positive count\n");
        return ExitDiagnostics;
      }
    } else if (A == "--global" && I + 1 < argc) {
      if (!parseDims(argv[++I], Opts.GlobalSize)) {
        usage();
        return ExitDiagnostics;
      }
    } else if (A == "--local" && I + 1 < argc) {
      if (!parseDims(argv[++I], Opts.LocalSize)) {
        usage();
        return ExitDiagnostics;
      }
    } else if (A == "--size" && I + 1 < argc) {
      std::string KV = argv[++I];
      size_t Eq = KV.find('=');
      if (Eq == std::string::npos) {
        usage();
        return ExitDiagnostics;
      }
      Sizes[KV.substr(0, Eq)] = std::strtoll(KV.c_str() + Eq + 1, nullptr,
                                             10);
    } else if (!A.empty() && A[0] != '-') {
      File = A;
    } else {
      usage();
      return ExitDiagnostics;
    }
  }
  if (File.empty()) {
    usage();
    return ExitDiagnostics;
  }

  if (CountFaults)
    ocl::fault::countOnly();

  std::ifstream In(File);
  if (!In) {
    std::fprintf(stderr, "liftc: cannot open %s\n", File.c_str());
    return ExitDiagnostics;
  }
  std::stringstream SS;
  SS << In.rdbuf();

  DiagnosticEngine Engine(MaxErrors);

  // Parsing recovers across top-level declarations, so several errors are
  // reported in one invocation (up to --max-errors).
  Expected<frontend::ParsedProgram> P = frontend::parseILChecked(SS.str(),
                                                                 Engine);
  if (!P) {
    flushDiagnostics(Engine);
    return ExitDiagnostics;
  }
  if (PrintIl)
    std::printf("// parsed IL\n%s\n", ir::printProgram(P->Program).c_str());

  if (Opts.VerifyEach &&
      !passes::verifyChecked(P->Program, Engine, "after parsing")) {
    flushDiagnostics(Engine);
    return ExitDiagnostics;
  }

  Opts.KernelName = "liftc_kernel";
  Expected<codegen::CompiledKernel> K =
      codegen::compileChecked(P->Program, Opts, Engine);
  if (!K) {
    flushDiagnostics(Engine);
    return ExitDiagnostics;
  }
  std::printf("%s", K->Source.c_str());

  if (DumpNative) {
    // The native translation unit is a plain-C++ lowering of the same
    // kernel AST; unsupported constructs raise E0607 like a launch would.
    std::printf("\n// native C++ translation unit\n%s",
                native::printNativeModule(*K, NMode).c_str());
  }

  if (!Run)
    return ExitOk;

  // Bind size variables; default unbound ones to 1024.
  arith::EvalContext SizeCtx;
  std::map<unsigned, int64_t> SizeEnv;
  for (const auto &[Name, Var] : P->SizeVars) {
    auto It = Sizes.find(Name);
    int64_t V = It != Sizes.end() ? It->second : 1024;
    Sizes[Name] = V;
    SizeEnv[Var->getId()] = V;
  }
  SizeCtx.VarValue = [&](const arith::VarNode &V) -> int64_t {
    auto It = SizeEnv.find(V.getId());
    if (It == SizeEnv.end())
      throwDiag(DiagCode::HostUnboundSize, DiagLocation(),
                "liftc: unbound size variable " + V.getName());
    return It->second;
  };

  // Materialize buffers: random floats for inputs, zeros for the output.
  std::vector<ocl::Buffer> Buffers;
  std::vector<ocl::Buffer *> Args;
  uint64_t Seed = 1;
  for (const codegen::KernelParamInfo &Param : K->Params) {
    if (Param.IsSizeParam || !Param.Store || !Param.Store->NumElements)
      continue;
    int64_t Count = arith::evaluate(Param.Store->NumElements, SizeCtx);
    if (Param.IsOutput)
      Buffers.push_back(ocl::Buffer::zeros(static_cast<size_t>(Count)));
    else
      Buffers.push_back(ocl::Buffer::ofFloats(
          randomFloats(static_cast<size_t>(Count), Seed++)));
  }
  for (ocl::Buffer &B : Buffers)
    Args.push_back(&B);

  ocl::LaunchConfig Cfg = ocl::LaunchConfig::fromOptions(Opts);

  if (NativeBackend) {
    if (Opts.CheckRaces || Opts.CheckMemory || Opts.PerturbSchedule)
      std::fprintf(stderr, "liftc: note: race/memory checking and schedule "
                           "perturbation are simulator-only; the native "
                           "backend ignores them\n");
    // The native attempt records into its own engine: on failure it is
    // demoted to an E0610 warning and the run degrades to the simulator
    // below instead of failing.
    DiagnosticEngine NativeEngine(MaxErrors);
    Expected<native::NativeLaunchResult> NR =
        native::launchNativeChecked(*K, Args, Sizes, Cfg, NativeEngine, NMode);
    if (NR) {
      double Checksum = 0;
      for (float V : Buffers.back().toFlatFloats())
        Checksum += V;
      std::printf("\n// run[native]: wall-ms=%.3f compile-ms=%.0f cache=%s "
                  "threads=%lld checksum=%.6g\n",
                  NR->WallMs, NR->CompileMs, NR->CacheHit ? "hit" : "miss",
                  static_cast<long long>(NR->Threads), Checksum);
      if (CountFaults)
        printFaultCounts();
      flushDiagnostics(NativeEngine);
      return NativeEngine.hasErrors() ? ExitDiagnostics : ExitOk;
    }
    std::string Detail = "no diagnostic";
    for (const Diagnostic &D : NativeEngine.diagnostics())
      if (D.Severity == DiagSeverity::Error) {
        Detail = diagCodeId(D.Code) + ": " + D.Message;
        break;
      }
    Engine.warning(DiagCode::NativeFallback, DiagLocation(),
                   "native backend unavailable (" + Detail +
                       "); degrading to the simulator");
    // A failed native attempt never read results back (contents are
    // intact) but may have poisoned the buffers; the simulator rerun
    // starts from a clean launch.
    for (ocl::Buffer &B : Buffers)
      B.Poisoned = false;
  }

  Expected<ocl::LaunchResult> R =
      ocl::launchChecked(*K, Args, Sizes, Cfg, Engine);
  if (!R) {
    flushDiagnostics(Engine);
    return ExitDiagnostics;
  }

  double Checksum = 0;
  for (float V : Buffers.back().toFlatFloats())
    Checksum += V;
  std::printf("\n// run: cost=%.0f global=%llu local=%llu barriers=%llu "
              "divmod=%llu checksum=%.6g\n",
              R->Cost.cost(),
              static_cast<unsigned long long>(R->Cost.GlobalAccesses),
              static_cast<unsigned long long>(R->Cost.LocalAccesses),
              static_cast<unsigned long long>(R->Cost.Barriers),
              static_cast<unsigned long long>(R->Cost.DivModOps), Checksum);

  if (Opts.CheckRaces)
    std::printf("// race check: %s\n", R->Races.summary().c_str());
  if (Opts.CheckMemory)
    std::printf("// memory check: %s\n", R->Guards.summary().c_str());
  if (CountFaults)
    printFaultCounts();
  // Successful runs can still carry warnings (e.g. E0509 serial
  // fallback) — surface them without failing the run.
  flushDiagnostics(Engine);
  if (Engine.hasErrors())
    return ExitDiagnostics;
  return ExitOk;
}

} // namespace

int main(int argc, char **argv) {
  try {
    return run(argc, argv);
  } catch (DiagnosticError &E) {
    // A recoverable diagnostic that escaped a checked boundary: still an
    // input problem, not a crash.
    std::fprintf(stderr, "liftc: %s\n", E.Diag.render().c_str());
    return ExitDiagnostics;
  } catch (const std::exception &E) {
    std::fprintf(stderr, "liftc: internal error: %s\n", E.what());
    return ExitInternal;
  }
}
