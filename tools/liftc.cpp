//===- liftc.cpp - Command-line Lift compiler driver ---------------------------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
//
// liftc: compiles a Lift IL source file to OpenCL and optionally executes
// it on the simulated device.
//
//   liftc prog.lift                          print the generated kernel
//   liftc prog.lift --print-il               also echo the parsed IL
//   liftc prog.lift --global 1024 --local 64 NDRange (1D shorthand)
//   liftc prog.lift --size N=4096            bind a size variable
//   liftc prog.lift --no-aas|--no-cfs|--no-be  toggle optimizations
//   liftc prog.lift --verify-each            run the IR verifier after
//                                            parsing and each pipeline stage
//   liftc prog.lift --max-errors N           report up to N errors (default 20)
//   liftc prog.lift --run                    execute with random inputs,
//                                            report cost and a checksum
//   liftc prog.lift --run --check-races      detect data races and barrier
//                                            divergence while executing
//   liftc prog.lift --run --check-memory     bounds- and initialization-check
//                                            every element access
//   liftc prog.lift --run --check-races --perturb-schedule [--schedule-seed N]
//                                            also permute work-item order
//   liftc prog.lift --run --backend=native   execute on the native C++/OpenMP
//                                            backend (src/native) instead of
//                                            the simulator
//   liftc prog.lift --dump-native            print the generated native C++
//                                            translation unit
//   liftc prog.lift --remote=SOCK ...        send the request to a liftd
//                                            daemon (docs/SERVICE.md) and
//                                            relay its response
//   liftc --graph=pipe.liftg                 run a multi-kernel pipeline
//                                            graph (docs/PIPELINES.md):
//                                            stages scheduled in dependency
//                                            order with buffer reuse,
//                                            graph-wide limits, and iterate-
//                                            until-convergence nodes
//
// The pipeline itself lives in src/service/Exec so the liftd daemon and
// this driver produce bit-identical output; this file only parses flags,
// reads the file, and prints the outcome.
//
// Exit codes: 0 = success; 1 = the input was rejected (diagnostics were
// printed, including usage errors and race/memory findings); 2 = internal
// error (a compiler bug, not an input problem).
//
//===----------------------------------------------------------------------===//

#include "graph/GraphExec.h"
#include "ocl/FaultInject.h"
#include "service/Client.h"
#include "service/Exec.h"
#include "support/Diagnostics.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <sstream>

using namespace lift;

namespace {

enum ExitCode { ExitOk = 0, ExitDiagnostics = 1, ExitInternal = 2 };

void usage() {
  std::fprintf(
      stderr,
      "usage: liftc <file.lift> [--print-il] [--run]\n"
      "             [--global N[,N[,N]]] [--local N[,N[,N]]]\n"
      "             [--size NAME=VALUE]... [--no-aas] [--no-cfs] "
      "[--no-be]\n"
      "             [--verify-each] [--max-errors N]\n"
      "             [--check-races] [--check-memory] [--perturb-schedule] "
      "[--schedule-seed N]\n"
      "             [--threads N]   (0 = auto: LIFT_THREADS, else hardware "
      "concurrency; 1 = serial)\n"
      "             [--max-steps N]   cancel the launch after N interpreter "
      "steps (E0510)\n"
      "             [--timeout-ms N]  cancel the launch after N ms of wall "
      "clock (E0511)\n"
      "             [--max-memory N]  cap simulated device allocation at N "
      "bytes (E0512)\n"
      "             [--backend=sim|native] execution backend for --run "
      "(default sim)\n"
      "             [--native-mode=exact|fast] numeric model for the native "
      "backend\n"
      "                               (exact: bit-identical to the simulator; "
      "fast: typed\n"
      "                                scalars, -O3 -march=native; default "
      "exact)\n"
      "             [--dump-native]   print the generated native C++ "
      "translation unit\n"
      "             [--remote=SOCK]   send the request to the liftd daemon "
      "listening on\n"
      "                               the Unix socket SOCK instead of "
      "compiling locally\n"
      "                               (incompatible with --inject-faults / "
      "--count-faults:\n"
      "                                fault arming is process-local)\n"
      "             [--retry-attempts N]  attempts for transient failures "
      "(N >= 1;\n"
      "                               sets LIFT_RETRY_ATTEMPTS for this "
      "run)\n"
      "             [--retry-base-us N]   retry backoff base in "
      "microseconds (N >= 0;\n"
      "                               sets LIFT_RETRY_BASE_US for this "
      "run)\n"
      "             [--inject-faults N,K] fail the N-th occurrence of fault "
      "site K\n"
      "                               (N = 0 fails every occurrence: a "
      "persistent outage\n"
      "                                that exhausts the retry policy)\n"
      "                               (0 = allocation, 1 = pool start, 2 = "
      "buffer map,\n"
      "                                3 = native compile, 4 = native dlopen, "
      "5 = native dlsym,\n"
      "                                6 = barrier, 7 = group dispatch, 8 = "
      "step chunk,\n"
      "                                9 = cache read, 10 = cache write, 11 = "
      "accept,\n"
      "                                12 = request read, 13 = request write, "
      "14 = queue admit,\n"
      "                                15 = graph stage dispatch, 16 = graph "
      "buffer reuse)\n"
      "             [--count-faults]  run in fault-counting mode: nothing "
      "fails, and a\n"
      "                               '// fault-count K N <site>' line per "
      "site reports how\n"
      "                               many injection opportunities the run "
      "had (the sweep\n"
      "                               bound for --inject-faults; overrides "
      "--inject-faults)\n"
      "             [--graph=FILE]    run a .liftg pipeline graph "
      "(docs/PIPELINES.md);\n"
      "                               honours --backend/--native-mode, "
      "--threads,\n"
      "                               --check-races/--check-memory, the "
      "limit flags and\n"
      "                               fault injection; incompatible with "
      "--remote,\n"
      "                               --print-il and --dump-native\n"
      "             [--no-reuse-buffers]  graph mode: naive baseline, all "
      "buffers\n"
      "                               allocated up front and held (the bench "
      "comparison)\n"
      "             [--graph-jobs N]  graph mode: dispatch up to N "
      "independent stages\n"
      "                               concurrently (default 1 = exact fault/"
      "budget order)\n"
      "             [--input-seed N]  graph mode: base seed for random input "
      "buffers\n");
}

bool parseDims(const char *S, std::array<int64_t, 3> &Out) {
  Out = {1, 1, 1};
  int I = 0;
  const char *P = S;
  while (*P && I < 3) {
    char *End = nullptr;
    long long V = std::strtoll(P, &End, 10);
    if (End == P || V <= 0)
      return false;
    Out[static_cast<size_t>(I++)] = V;
    P = (*End == ',') ? End + 1 : End;
    if (*End && *End != ',')
      return false;
  }
  return I > 0;
}

/// Strictly numeric argument for the retry flags: rejects empty strings,
/// trailing junk and negative values.
bool parseCount(const char *S, unsigned long long &Out) {
  if (!S || !*S || *S == '-')
    return false;
  char *End = nullptr;
  Out = std::strtoull(S, &End, 10);
  return End != S && *End == '\0';
}

/// Prints every recorded diagnostic to stderr.
void flushDiagnostics(const DiagnosticEngine &Engine) {
  for (const Diagnostic &D : Engine.diagnostics())
    std::fprintf(stderr, "liftc: %s\n", D.render().c_str());
}

void printFaultCounts() {
  for (unsigned S = 0; S != ocl::fault::NumSites; ++S) {
    auto Id = static_cast<ocl::fault::Site>(S);
    std::printf("// fault-count %u %llu %s\n", S,
                static_cast<unsigned long long>(ocl::fault::occurrences(Id)),
                ocl::fault::siteName(Id));
  }
}

/// Graph mode: parse + validate + run a .liftg pipeline and print a
/// stage-by-stage report. Same exit-code contract as single-kernel runs.
int runGraphFile(const std::string &Source, const graph::GraphRunOptions &GO,
                 bool CountFaults, unsigned MaxErrors) {
  DiagnosticEngine Engine(MaxErrors);
  Expected<graph::Graph> G = graph::parseGraphChecked(Source, Engine);
  if (!G) {
    flushDiagnostics(Engine);
    return ExitDiagnostics;
  }
  Expected<graph::ValidatedGraph> VG = graph::validateGraph(*G, Engine);
  if (!VG) {
    flushDiagnostics(Engine);
    return ExitDiagnostics;
  }

  Expected<graph::GraphRunResult> R = graph::runGraph(*VG, GO, Engine);
  if (!R) {
    if (CountFaults)
      printFaultCounts();
    flushDiagnostics(Engine);
    return ExitDiagnostics;
  }

  std::printf("// graph '%s': %zu nodes, backend %s\n", VG->G.Name.c_str(),
              VG->Nodes.size(),
              GO.NativeBackend
                  ? (GO.NMode == native::NativeMode::Exact ? "native/exact"
                                                           : "native/fast")
                  : "sim");
  for (const graph::StageRunInfo &S : R->Stages) {
    if (S.Trip)
      std::printf("// %s trip %llu: cost=%.0f steps=%llu\n", S.Path.c_str(),
                  static_cast<unsigned long long>(S.Trip), S.Cost,
                  static_cast<unsigned long long>(S.StepsUsed));
    else if (GO.NativeBackend)
      std::printf("// %s: wall-ms=%.3f\n", S.Path.c_str(), S.NativeWallMs);
    else
      std::printf("// %s: cost=%.0f steps=%llu\n", S.Path.c_str(), S.Cost,
                  static_cast<unsigned long long>(S.StepsUsed));
  }
  for (const graph::IterateRunInfo &It : R->Iterates)
    std::printf("// iterate '%s': %s in %llu trips (residual %.6g)\n",
                It.Name.c_str(),
                It.Converged ? "converged" : "did not converge",
                static_cast<unsigned long long>(It.Trips), It.Residual);
  for (const auto &[Name, Data] : R->Outputs) {
    double Checksum = 0;
    for (float V : Data)
      Checksum += V;
    std::printf("// output %s: n=%zu checksum=%.6g\n", Name.c_str(),
                Data.size(), Checksum);
  }
  std::printf("// graph: stages-run=%llu cost=%.0f peak-host-bytes=%llu "
              "recycled=%llu freed=%llu\n",
              static_cast<unsigned long long>(R->StagesRun), R->TotalCost,
              static_cast<unsigned long long>(R->PeakHostBytes),
              static_cast<unsigned long long>(R->BuffersRecycled),
              static_cast<unsigned long long>(R->BuffersFreed));
  if (CountFaults)
    printFaultCounts();
  flushDiagnostics(Engine);
  return Engine.hasErrors() ? ExitDiagnostics : ExitOk;
}

int run(int argc, char **argv) {
  if (argc < 2) {
    usage();
    return ExitDiagnostics;
  }

  std::string File;
  std::string Remote;
  std::string GraphFile;
  bool FaultFlagsUsed = false;
  bool NoReuseBuffers = false;
  unsigned GraphJobs = 1;
  bool GraphKeepGoing = false;
  uint64_t InputSeed = 1;
  service::ExecRequest Req;

  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    if (A == "--print-il") {
      Req.PrintIl = true;
    } else if (A == "--run") {
      Req.Run = true;
    } else if (A == "--dump-native") {
      Req.DumpNative = true;
    } else if (A == "--backend=sim") {
      Req.NativeBackend = false;
    } else if (A == "--backend=native") {
      Req.NativeBackend = true;
    } else if (A == "--native-mode=exact") {
      Req.NMode = native::NativeMode::Exact;
    } else if (A == "--native-mode=fast") {
      Req.NMode = native::NativeMode::Fast;
    } else if (A == "--no-aas") {
      Req.Opts.ArrayAccessSimplification = false;
    } else if (A == "--no-cfs") {
      Req.Opts.ControlFlowSimplification = false;
    } else if (A == "--no-be") {
      Req.Opts.BarrierElimination = false;
    } else if (A == "--verify-each") {
      Req.Opts.VerifyEach = true;
    } else if (A == "--check-races") {
      Req.Opts.CheckRaces = true;
    } else if (A == "--check-memory") {
      Req.Opts.CheckMemory = true;
    } else if (A == "--perturb-schedule") {
      Req.Opts.PerturbSchedule = true;
    } else if (A == "--schedule-seed" && I + 1 < argc) {
      Req.Opts.ScheduleSeed = std::strtoull(argv[++I], nullptr, 10);
    } else if (A == "--threads" && I + 1 < argc) {
      Req.Opts.Threads =
          static_cast<int>(std::strtol(argv[++I], nullptr, 10));
      if (Req.Opts.Threads < 0) {
        std::fprintf(stderr, "liftc: --threads needs a count >= 0\n");
        return ExitDiagnostics;
      }
    } else if (A == "--max-steps" && I + 1 < argc) {
      Req.Opts.MaxSteps = std::strtoull(argv[++I], nullptr, 10);
    } else if (A == "--timeout-ms" && I + 1 < argc) {
      Req.Opts.TimeoutMs = std::strtoll(argv[++I], nullptr, 10);
      if (Req.Opts.TimeoutMs < 0) {
        std::fprintf(stderr, "liftc: --timeout-ms needs a count >= 0\n");
        return ExitDiagnostics;
      }
    } else if (A == "--max-memory" && I + 1 < argc) {
      Req.Opts.MaxMemoryBytes = std::strtoull(argv[++I], nullptr, 10);
    } else if (A.rfind("--graph=", 0) == 0) {
      GraphFile = A.substr(std::strlen("--graph="));
      if (GraphFile.empty()) {
        std::fprintf(stderr, "liftc: --graph needs a .liftg file path\n");
        return ExitDiagnostics;
      }
    } else if (A == "--graph" && I + 1 < argc) {
      GraphFile = argv[++I];
    } else if (A == "--no-reuse-buffers") {
      NoReuseBuffers = true;
    } else if (A == "--keep-going") {
      GraphKeepGoing = true;
    } else if (A == "--graph-jobs" && I + 1 < argc) {
      unsigned long long V = 0;
      if (!parseCount(argv[++I], V) || V == 0 || V > 64) {
        std::fprintf(stderr, "liftc: --graph-jobs needs a count in "
                             "[1, 64]\n");
        return ExitDiagnostics;
      }
      GraphJobs = static_cast<unsigned>(V);
    } else if (A == "--input-seed" && I + 1 < argc) {
      unsigned long long V = 0;
      if (!parseCount(argv[++I], V)) {
        std::fprintf(stderr, "liftc: --input-seed needs a count >= 0\n");
        return ExitDiagnostics;
      }
      InputSeed = V;
    } else if (A.rfind("--remote=", 0) == 0) {
      Remote = A.substr(std::strlen("--remote="));
      if (Remote.empty()) {
        std::fprintf(stderr, "liftc: --remote needs a socket path\n");
        return ExitDiagnostics;
      }
    } else if (A == "--remote" && I + 1 < argc) {
      Remote = argv[++I];
    } else if (A == "--retry-attempts" && I + 1 < argc) {
      unsigned long long V = 0;
      if (!parseCount(argv[++I], V) || V == 0 || V > 1000000) {
        std::fprintf(stderr, "liftc: --retry-attempts needs a count in "
                             "[1, 1000000]\n");
        return ExitDiagnostics;
      }
      ::setenv("LIFT_RETRY_ATTEMPTS", std::to_string(V).c_str(), 1);
    } else if (A == "--retry-base-us" && I + 1 < argc) {
      unsigned long long V = 0;
      if (!parseCount(argv[++I], V) || V > 60000000) {
        std::fprintf(stderr, "liftc: --retry-base-us needs microseconds "
                             "in [0, 60000000]\n");
        return ExitDiagnostics;
      }
      ::setenv("LIFT_RETRY_BASE_US", std::to_string(V).c_str(), 1);
    } else if (A == "--inject-faults" && I + 1 < argc) {
      char *End = nullptr;
      unsigned long long Nth = std::strtoull(argv[++I], &End, 10);
      unsigned long long SiteId =
          *End == ',' ? std::strtoull(End + 1, nullptr, 10) : ~0ull;
      if (End == argv[I] || SiteId >= ocl::fault::NumSites) {
        std::fprintf(stderr,
                     "liftc: --inject-faults needs N,K with N >= 0 and "
                     "K in [0,%u)\n",
                     ocl::fault::NumSites);
        return ExitDiagnostics;
      }
      FaultFlagsUsed = true;
      if (Nth == 0)
        ocl::fault::armAlways(static_cast<ocl::fault::Site>(SiteId));
      else
        ocl::fault::arm(static_cast<ocl::fault::Site>(SiteId), Nth);
    } else if (A == "--count-faults") {
      FaultFlagsUsed = true;
      Req.CountFaults = true;
    } else if (A == "--max-errors" && I + 1 < argc) {
      Req.MaxErrors =
          static_cast<unsigned>(std::strtoul(argv[++I], nullptr, 10));
      if (Req.MaxErrors == 0) {
        std::fprintf(stderr, "liftc: --max-errors needs a positive count\n");
        return ExitDiagnostics;
      }
    } else if (A == "--global" && I + 1 < argc) {
      if (!parseDims(argv[++I], Req.Opts.GlobalSize)) {
        usage();
        return ExitDiagnostics;
      }
    } else if (A == "--local" && I + 1 < argc) {
      if (!parseDims(argv[++I], Req.Opts.LocalSize)) {
        usage();
        return ExitDiagnostics;
      }
    } else if (A == "--size" && I + 1 < argc) {
      std::string KV = argv[++I];
      size_t Eq = KV.find('=');
      if (Eq == std::string::npos) {
        usage();
        return ExitDiagnostics;
      }
      Req.Sizes[KV.substr(0, Eq)] = std::strtoll(KV.c_str() + Eq + 1,
                                                 nullptr, 10);
    } else if (!A.empty() && A[0] != '-') {
      File = A;
    } else {
      usage();
      return ExitDiagnostics;
    }
  }
  if (File.empty() && GraphFile.empty()) {
    usage();
    return ExitDiagnostics;
  }
  if (!GraphFile.empty()) {
    if (!Remote.empty() || Req.PrintIl || Req.DumpNative || !File.empty()) {
      std::fprintf(stderr,
                   "liftc: --graph cannot be combined with --remote, "
                   "--print-il, --dump-native or a .lift input file\n");
      return ExitDiagnostics;
    }
    if (Req.CountFaults)
      ocl::fault::countOnly();
    std::ifstream GIn(GraphFile);
    if (!GIn) {
      std::fprintf(stderr, "liftc: cannot open %s\n", GraphFile.c_str());
      return ExitDiagnostics;
    }
    std::stringstream GS;
    GS << GIn.rdbuf();
    graph::GraphRunOptions GO;
    GO.NativeBackend = Req.NativeBackend;
    GO.NMode = Req.NMode;
    GO.CheckRaces = Req.Opts.CheckRaces;
    GO.CheckMemory = Req.Opts.CheckMemory;
    GO.Threads = Req.Opts.Threads;
    GO.Limits.MaxSteps = Req.Opts.MaxSteps;
    GO.Limits.TimeoutMs = Req.Opts.TimeoutMs;
    GO.Limits.MaxMemoryBytes = Req.Opts.MaxMemoryBytes;
    GO.ReuseBuffers = !NoReuseBuffers;
    GO.MaxConcurrentStages = GraphJobs;
    GO.KeepGoing = GraphKeepGoing;
    GO.InputSeed = InputSeed;
    return runGraphFile(GS.str(), GO, Req.CountFaults, Req.MaxErrors);
  }
  if (!Remote.empty() && FaultFlagsUsed) {
    std::fprintf(stderr,
                 "liftc: --remote cannot be combined with --inject-faults "
                 "or --count-faults; fault arming is process-local (arm "
                 "the daemon via LIFT_FAULT_SEED instead)\n");
    return ExitDiagnostics;
  }

  if (Req.CountFaults)
    ocl::fault::countOnly();

  std::ifstream In(File);
  if (!In) {
    std::fprintf(stderr, "liftc: cannot open %s\n", File.c_str());
    return ExitDiagnostics;
  }
  std::stringstream SS;
  SS << In.rdbuf();
  Req.Source = SS.str();

  if (!Remote.empty()) {
    // Remote mode: the daemon runs the identical pipeline; this side
    // only relays its stdout/diagnostics/exit-code triple.
    service::Request WireReq;
    WireReq.Kind = service::Op::Exec;
    WireReq.Exec = Req;
    service::ClientOptions CO;
    CO.SocketPath = Remote;
    DiagnosticEngine Engine(Req.MaxErrors);
    service::Response Resp;
    if (!service::roundTrip(CO, WireReq, Resp, Engine)) {
      flushDiagnostics(Engine);
      return ExitDiagnostics;
    }
    std::fwrite(Resp.Stdout.data(), 1, Resp.Stdout.size(), stdout);
    for (const std::string &D : Resp.Diagnostics)
      std::fprintf(stderr, "liftc: %s\n", D.c_str());
    if (Resp.St == service::Status::BadRequest)
      std::fprintf(stderr, "liftc: error[%s]: daemon rejected the "
                           "request: %s\n",
                   Resp.Code.empty() ? "E0702" : Resp.Code.c_str(),
                   Resp.Message.c_str());
    return Resp.Exit;
  }

  service::ExecOutcome Out = service::execRequest(Req);
  std::fwrite(Out.Stdout.data(), 1, Out.Stdout.size(), stdout);
  for (const std::string &D : Out.Diags)
    std::fprintf(stderr, "liftc: %s\n", D.c_str());
  return Out.Exit;
}

} // namespace

int main(int argc, char **argv) {
  try {
    return run(argc, argv);
  } catch (DiagnosticError &E) {
    // A recoverable diagnostic that escaped a checked boundary: still an
    // input problem, not a crash.
    std::fprintf(stderr, "liftc: %s\n", E.Diag.render().c_str());
    return ExitDiagnostics;
  } catch (const std::exception &E) {
    std::fprintf(stderr, "liftc: internal error: %s\n", E.what());
    return ExitInternal;
  }
}
