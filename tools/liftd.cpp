//===- liftd.cpp - Lift compile-and-run daemon ----------------------------===//
//
// Part of the lift-cpp project. MIT licensed.
//
//===----------------------------------------------------------------------===//
//
// liftd: a persistent daemon that accepts compile/run requests over a
// Unix-domain socket (newline-delimited JSON, docs/SERVICE.md). Clients
// are tools/lift-client and `liftc --remote=SOCK`.
//
// The daemon is crash-only: state worth keeping lives in the
// content-addressed artifact directory (--artifact-dir), verified by hash
// sidecar on load, so `kill -9` loses nothing but in-flight requests.
// SIGTERM/SIGINT drain gracefully within --drain-ms.
//
//===----------------------------------------------------------------------===//

#include "service/Server.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace lift;

namespace {

service::Server *GServer = nullptr;

void onSignal(int) {
  if (GServer)
    GServer->signalShutdown(); // async-signal-safe: atomic store + pipe write
}

void usage() {
  std::fprintf(
      stderr,
      "usage: liftd --socket PATH [options]\n"
      "  --socket PATH            Unix socket to listen on (required)\n"
      "  --max-inflight N         worker threads / concurrent requests "
      "(default 2)\n"
      "  --queue-depth N          extra requests queued beyond the workers "
      "before\n"
      "                           admission control sheds (E0701; default "
      "16)\n"
      "  --max-steps N            ceiling on per-request --max-steps "
      "(0 = none)\n"
      "  --timeout-ms N           ceiling on per-request --timeout-ms "
      "(0 = none)\n"
      "  --max-memory N           ceiling on per-request --max-memory "
      "(0 = none)\n"
      "  --max-threads N          ceiling on per-request --threads "
      "(default 1)\n"
      "  --max-request-memory N   cap on host buffer bytes one request may\n"
      "                           materialize (default 268435456; 0 = "
      "none)\n"
      "  --artifact-dir DIR       content-addressed compile cache surviving "
      "restarts\n"
      "                           (hash-verified on load; empty = in-memory "
      "only)\n"
      "  --io-timeout-ms N        drop clients idle mid-request after N ms "
      "(default 5000)\n"
      "  --drain-ms N             SIGTERM drain deadline before in-flight "
      "work is\n"
      "                           cancelled (default 2000)\n"
      "  --retry-after-ms N       backoff hint attached to shed replies "
      "(default 50)\n");
}

bool intArg(int argc, char **argv, int &I, long long &Out) {
  if (I + 1 >= argc)
    return false;
  char *End = nullptr;
  Out = std::strtoll(argv[++I], &End, 10);
  return End != argv[I] && *End == '\0';
}

} // namespace

int main(int argc, char **argv) {
  service::ServerOptions Opts;
  for (int I = 1; I < argc; ++I) {
    std::string A = argv[I];
    long long V = 0;
    if (A == "--socket" && I + 1 < argc) {
      Opts.SocketPath = argv[++I];
    } else if (A == "--artifact-dir" && I + 1 < argc) {
      Opts.ArtifactDir = argv[++I];
    } else if (A == "--max-inflight") {
      if (!intArg(argc, argv, I, V) || V < 1 || V > 256) {
        std::fprintf(stderr, "liftd: --max-inflight needs a count in "
                             "[1, 256]\n");
        return 1;
      }
      Opts.Workers = static_cast<int>(V);
    } else if (A == "--queue-depth") {
      if (!intArg(argc, argv, I, V) || V < 0 || V > 65536) {
        std::fprintf(stderr, "liftd: --queue-depth needs a count in "
                             "[0, 65536]\n");
        return 1;
      }
      Opts.QueueDepth = static_cast<int>(V);
    } else if (A == "--max-steps") {
      if (!intArg(argc, argv, I, V) || V < 0) {
        std::fprintf(stderr, "liftd: --max-steps needs a count >= 0\n");
        return 1;
      }
      Opts.MaxSteps = static_cast<uint64_t>(V);
    } else if (A == "--timeout-ms") {
      if (!intArg(argc, argv, I, V) || V < 0) {
        std::fprintf(stderr, "liftd: --timeout-ms needs a count >= 0\n");
        return 1;
      }
      Opts.TimeoutMs = V;
    } else if (A == "--max-memory") {
      if (!intArg(argc, argv, I, V) || V < 0) {
        std::fprintf(stderr, "liftd: --max-memory needs bytes >= 0\n");
        return 1;
      }
      Opts.MaxMemoryBytes = static_cast<uint64_t>(V);
    } else if (A == "--max-threads") {
      if (!intArg(argc, argv, I, V) || V < 0 || V > 4096) {
        std::fprintf(stderr, "liftd: --max-threads needs a count in "
                             "[0, 4096]\n");
        return 1;
      }
      Opts.MaxThreads = static_cast<int>(V);
    } else if (A == "--max-request-memory") {
      if (!intArg(argc, argv, I, V) || V < 0) {
        std::fprintf(stderr,
                     "liftd: --max-request-memory needs bytes >= 0\n");
        return 1;
      }
      Opts.MaxHostBufferBytes = static_cast<uint64_t>(V);
    } else if (A == "--io-timeout-ms") {
      if (!intArg(argc, argv, I, V) || V < 1) {
        std::fprintf(stderr, "liftd: --io-timeout-ms needs a count >= 1\n");
        return 1;
      }
      Opts.IoTimeoutMs = V;
    } else if (A == "--drain-ms") {
      if (!intArg(argc, argv, I, V) || V < 0) {
        std::fprintf(stderr, "liftd: --drain-ms needs a count >= 0\n");
        return 1;
      }
      Opts.DrainMs = V;
    } else if (A == "--retry-after-ms") {
      if (!intArg(argc, argv, I, V) || V < 0) {
        std::fprintf(stderr, "liftd: --retry-after-ms needs a count >= 0\n");
        return 1;
      }
      Opts.RetryAfterMs = V;
    } else {
      usage();
      return 1;
    }
  }
  if (Opts.SocketPath.empty()) {
    usage();
    return 1;
  }

  service::Server S(Opts);
  std::string Err;
  if (!S.start(Err)) {
    std::fprintf(stderr, "liftd: %s\n", Err.c_str());
    return 1;
  }

  GServer = &S;
  struct sigaction SA;
  std::memset(&SA, 0, sizeof(SA));
  SA.sa_handler = onSignal;
  ::sigaction(SIGTERM, &SA, nullptr);
  ::sigaction(SIGINT, &SA, nullptr);
  ::signal(SIGPIPE, SIG_IGN);

  // Test-sync marker: readers wait for this line before connecting.
  std::printf("liftd: listening on %s\n", Opts.SocketPath.c_str());
  std::fflush(stdout);

  S.wait();
  std::printf("liftd: drained, exiting\n");
  return 0;
}
